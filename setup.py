"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` to build a
PEP 660 editable wheel; offline machines without it can fall back to
``pip install -e . --no-use-pep517 --no-build-isolation`` which runs this
file through ``setup.py develop`` instead.
"""

from setuptools import setup

setup()
