"""Common prefetcher machinery: the temporal-prefetcher interface and the
small on-chip prefetch buffer every design streams into.

The simulation engine talks to a temporal prefetcher through two calls:

* :meth:`TemporalPrefetcher.consume` — a demand read reached the
  prefetcher; if the block was prefetched (arrived or in flight) the
  prefetcher hands back its arrival time and keeps streaming.
* :meth:`TemporalPrefetcher.on_demand_miss` — the block was not
  prefetched; the prefetcher records the miss and may trigger a lookup.

Prefetchers issue their own DRAM traffic (prefetch fills and, for STMS,
meta-data accesses) through the shared channel at low priority and account
for every byte in the shared :class:`~repro.memory.traffic.TrafficMeter`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, NamedTuple

from repro.memory.dram import DramChannel, Priority
from repro.memory.traffic import TrafficCategory, TrafficMeter

#: Engine-supplied predicate: True when a block is already on chip, in
#: which case issuing a prefetch for it would be pure waste.  Real designs
#: implement this as a cache probe on the prefetch path.
ResidencyFilter = Callable[[int], bool]


class PrefetchedBlock(NamedTuple):
    """A prefetch-buffer hit returned to the engine for timing.

    A NamedTuple: one is created per issued prefetch, which puts
    construction cost on the event hot path.
    """

    block: int
    issued_at: float
    arrival: float
    #: Which stream generation issued this prefetch.  Used to bound the
    #: number of in-flight prefetches *per active stream*: entries left
    #: over from abandoned streams must not throttle the current one.
    stream: int = -1

    def is_arrived(self, now: float) -> bool:
        """True when the data is already in the buffer (fully covered)."""
        return self.arrival <= now


@dataclass(slots=True)
class PrefetcherStats:
    """Counters every temporal prefetcher maintains."""

    #: Prefetches issued to memory.
    issued: int = 0
    #: Prefetched blocks consumed by a demand access.
    useful: int = 0
    #: Prefetched blocks dropped without ever being consumed.
    erroneous: int = 0
    #: Prefetch candidates suppressed because the block was on chip.
    filtered: int = 0
    #: Prefetch candidates dropped because the channel was saturated.
    dropped: int = 0
    #: Index/meta-data lookups performed.
    lookups: int = 0
    #: Lookups that found a stream to follow.
    lookup_hits: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were consumed."""
        resolved = self.useful + self.erroneous
        if resolved == 0:
            return 0.0
        return self.useful / resolved


class PrefetchBuffer:
    """Small fully-associative per-core buffer of prefetched blocks.

    Mirrors the paper's 2 KB per-core prefetch buffer (32 blocks at 64 B):
    prefetched data is held *outside* the caches so erroneous prefetches
    never pollute them.  Replacement is FIFO over unconsumed entries; a
    displaced entry counts as an erroneous prefetch.
    """

    __slots__ = ('capacity', '_entries', '_stream_counts')

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        # block -> entry, FIFO order (oldest first); a plain dict keeps
        # insertion order and is cheaper than an OrderedDict on the
        # per-event take/insert path.
        self._entries: dict[int, PrefetchedBlock] = {}
        self._stream_counts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def outstanding(self, stream: int) -> int:
        """Resident entries issued by stream generation ``stream``."""
        return self._stream_counts.get(stream, 0)

    def _forget(self, entry: PrefetchedBlock) -> None:
        count = self._stream_counts.get(entry.stream, 0) - 1
        if count <= 0:
            self._stream_counts.pop(entry.stream, None)
        else:
            self._stream_counts[entry.stream] = count

    def insert(self, entry: PrefetchedBlock) -> PrefetchedBlock | None:
        """Add a prefetched (possibly still in-flight) block.

        Returns the FIFO-displaced entry when the buffer was full, which
        the caller must account as an erroneous prefetch.  Re-inserting a
        resident block is a no-op (the earlier copy wins).
        """
        if entry.block in self._entries:
            return None
        displaced: PrefetchedBlock | None = None
        if len(self._entries) >= self.capacity:
            displaced = self._entries.pop(next(iter(self._entries)))
            self._forget(displaced)
        self._entries[entry.block] = entry
        self._stream_counts[entry.stream] = (
            self._stream_counts.get(entry.stream, 0) + 1
        )
        return displaced

    def take(self, block: int) -> PrefetchedBlock | None:
        """Remove and return the entry for ``block`` if buffered."""
        entry = self._entries.pop(block, None)
        if entry is not None:
            self._forget(entry)
        return entry

    def drain(self) -> list[PrefetchedBlock]:
        """Remove and return everything (end-of-simulation accounting)."""
        leftovers = list(self._entries.values())
        self._entries.clear()
        self._stream_counts.clear()
        return leftovers


class TemporalPrefetcher(ABC):
    """Base class for the temporal prefetchers under evaluation.

    Subclasses share the prefetch-issue path (:meth:`_issue_prefetch`),
    which applies the residency filter, models the DRAM fill, charges
    traffic at resolution time, and manages per-core prefetch buffers.
    """

    #: Prefetches are dropped once the channel's low-priority backlog
    #: exceeds this many device-access latencies (bounded-queue model).
    BACKLOG_LIMIT_ACCESSES = 8.0

    __slots__ = ('cores', 'dram', 'traffic', 'stats', '_filter', '_filter_sets', '_filter_mask', 'buffers', '_backlog_limit')

    def __init__(
        self,
        cores: int,
        dram: DramChannel,
        traffic: TrafficMeter,
        residency_filter: ResidencyFilter | None = None,
        buffer_blocks: int = 32,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self.dram = dram
        self.traffic = traffic
        traffic.ensure_cores(cores)
        self.stats = PrefetcherStats()
        self._filter = residency_filter
        # When the residency filter is a plain Cache.lookup bound method
        # (the engine's L2 probe), hot paths test set membership
        # directly instead of paying a call per prefetch candidate.
        self._filter_sets = None
        self._filter_mask = 0
        bound = getattr(residency_filter, "__self__", None)
        if (
            bound is not None
            and getattr(residency_filter, "__name__", "") == "lookup"
            and hasattr(bound, "_sets")
            and hasattr(bound, "_set_mask")
        ):
            self._filter_sets = bound._sets
            self._filter_mask = bound._set_mask
        self.buffers = [PrefetchBuffer(buffer_blocks) for _ in range(cores)]
        self._backlog_limit = (
            self.BACKLOG_LIMIT_ACCESSES
            * dram.config.access_latency_cycles
        )

    # ------------------------------------------------------------------
    # Engine-facing interface.
    # ------------------------------------------------------------------

    def consume(
        self, core: int, block: int, now: float
    ) -> PrefetchedBlock | None:
        """A demand read for ``block`` reached the prefetcher.

        Returns buffered-prefetch information when the access is covered;
        subclasses then observe the hit via :meth:`_on_prefetch_hit` to
        keep their stream state advancing.
        """
        entry = self.buffers[core].take(block)
        if entry is None:
            return None
        self.stats.useful += 1
        self.traffic.add_block(TrafficCategory.USEFUL_PREFETCH, core)
        self._on_prefetch_hit(core, block, now)
        return entry

    @abstractmethod
    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        """An uncovered off-chip read miss occurred (trigger event)."""

    def finalize(self, now: float) -> None:
        """Flush internal state at end of simulation.

        Unconsumed prefetch-buffer contents are charged as erroneous so
        traffic accounting always balances against issued prefetches.
        """
        for core, buffer in enumerate(self.buffers):
            for _ in buffer.drain():
                self._charge_erroneous(core)

    # ------------------------------------------------------------------
    # Subclass hooks and shared mechanics.
    # ------------------------------------------------------------------

    @abstractmethod
    def _on_prefetch_hit(self, core: int, block: int, now: float) -> None:
        """Observe a consumed prefetch (record + continue streaming)."""

    def _charge_erroneous(self, core: int = 0) -> None:
        self.stats.erroneous += 1
        self.traffic.add_block(TrafficCategory.ERRONEOUS_PREFETCH, core)

    def _issue_prefetch(
        self, core: int, block: int, now: float, stream: int = -1
    ) -> bool:
        """Issue one prefetch for ``core`` if it passes the filters.

        Returns True when a fill was actually started.  The data fetch is
        a low-priority DRAM read; its traffic is charged when the block is
        consumed (useful) or displaced/drained (erroneous).
        """
        buffer = self.buffers[core]
        stats = self.stats
        entries = buffer._entries
        if block in entries:
            return False
        filter_sets = self._filter_sets
        if filter_sets is not None:
            if block in filter_sets[block & self._filter_mask]:
                stats.filtered += 1
                return False
        elif self._filter is not None and self._filter(block):
            stats.filtered += 1
            return False
        dram = self.dram
        # Inlined dram.low_backlog(now) > self._backlog_limit.
        busy = dram._busy_until_all
        if busy - now > self._backlog_limit:
            stats.dropped += 1
            return False
        # Inlined dram.request(now, Priority.LOW).
        service = dram._transfer_cycles
        start = now if now > busy else busy
        dram._busy_until_all = start + service
        dram_stats = dram.stats
        dram_stats.low_priority_requests += 1
        dram_stats.requests += 1
        dram_stats.busy_cycles += service
        dram_stats.queue_cycles += start - now
        arrival = start + dram._access_latency_cycles + service
        # Inlined PrefetchBuffer.insert (the block is known absent).
        if len(entries) >= buffer.capacity:
            displaced = entries.pop(next(iter(entries)))
            buffer._forget(displaced)
            self._charge_erroneous(core)
        entries[block] = tuple.__new__(
            PrefetchedBlock, (block, now, arrival, stream)
        )
        counts = buffer._stream_counts
        counts[stream] = counts.get(stream, 0) + 1
        stats.issued += 1
        return True
