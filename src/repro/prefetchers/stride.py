"""Stride prefetcher of the base system (paper Table 1).

The paper's baseline includes a stride/stream prefetcher ("32-entry
buffer, max 16 distinct strides") and reports all temporal-streaming
coverage *in excess* of it.  This implementation detects constant-stride
reference patterns per aligned region, confirms a stride after two
consecutive repeats, and then runs ahead by a configurable degree into a
small prefetch buffer.

The stride prefetcher is modeled as on-chip state; its prefetch fills
consume DRAM bandwidth, but because both the baseline and the STMS
configurations include it, its traffic belongs to the *base* system and
is charged as demand-equivalent useful traffic when consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prefetchers.base import PrefetchBuffer, PrefetchedBlock
from repro.memory.dram import DramChannel


@dataclass(slots=True)
class StrideStats:
    """Counters for the stride prefetcher."""

    trained: int = 0
    issued: int = 0
    useful: int = 0
    erroneous: int = 0
    dropped: int = 0


class StridePrefetcher:
    """Region-based stride detector with a per-core prefetch buffer."""

    #: Blocks per tracking region (aligned); 64 blocks = 4 KB pages.
    REGION_BLOCKS = 64

    __slots__ = ('cores', 'dram', 'tracker_entries', 'degree', 'confirm_threshold', 'stats', '_trackers', 'buffers', '_region_blocks', '_region_shift', '_backlog_limit')

    def __init__(
        self,
        cores: int,
        dram: DramChannel,
        tracker_entries: int = 16,
        buffer_blocks: int = 32,
        degree: int = 4,
        confirm_threshold: int = 2,
    ) -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.cores = cores
        self.dram = dram
        self.tracker_entries = tracker_entries
        self.degree = degree
        self.confirm_threshold = confirm_threshold
        self.stats = StrideStats()
        # Tracker entries are ``[last_block, stride, confirmations]``
        # lists — this is the simulator's hottest predictor path, and
        # list indexing beats attribute access.  Plain dicts in
        # insertion-equals-recency order (refreshed by pop/reinsert).
        self._trackers: "list[dict[int, list]]" = [
            {} for _ in range(cores)
        ]
        self.buffers = [PrefetchBuffer(buffer_blocks) for _ in range(cores)]
        self._region_blocks = self.REGION_BLOCKS
        #: Region extraction as a shift (REGION_BLOCKS is a power of two).
        self._region_shift = self.REGION_BLOCKS.bit_length() - 1
        self._backlog_limit = (
            self.BACKLOG_LIMIT_ACCESSES
            * dram.config.access_latency_cycles
        )

    def probe(self, core: int, block: int) -> bool:
        """True when ``block`` was stride-prefetched (consumes the entry)."""
        entry = self.buffers[core].take(block)
        if entry is not None:
            self.stats.useful += 1
            return True
        return False

    def train(self, core: int, block: int, now: float) -> None:
        """Observe an L2 access; detect and run confirmed strides."""
        tracker = self._trackers[core]
        region = block >> self._region_shift
        entry = tracker.get(region)
        if entry is None:
            if len(tracker) >= self.tracker_entries:
                del tracker[next(iter(tracker))]
            tracker[region] = [block, 0, 0]
            self.stats.trained += 1
            return
        # LRU-refresh the region (pop/reinsert keeps dict order = recency).
        del tracker[region]
        tracker[region] = entry
        stride = block - entry[0]
        if stride == 0:
            return
        if stride == entry[1]:
            entry[2] += 1
        else:
            entry[1] = stride
            entry[2] = 1
        entry[0] = block
        if entry[2] >= self.confirm_threshold:
            self._run_ahead(core, block, stride, now)

    #: Stop running ahead once the channel's low-priority backlog exceeds
    #: this many device accesses (bounded prefetch queue).
    BACKLOG_LIMIT_ACCESSES = 4.0

    def _run_ahead(
        self, core: int, block: int, stride: int, now: float
    ) -> None:
        buffer = self.buffers[core]
        resident = buffer._entries
        counts = buffer._stream_counts
        capacity = buffer.capacity
        backlog_limit = self._backlog_limit
        dram = self.dram
        stats = self.stats
        tuple_new = tuple.__new__
        last_target = block
        for i in range(1, self.degree + 1):
            target = block + stride * i
            if target < 0 or target in resident:
                continue
            # Inlined dram.low_backlog(now) > backlog_limit.
            if dram._busy_until_all - now > backlog_limit:
                stats.dropped += 1
                break
            arrival = dram.request_low(now)
            # Inlined PrefetchBuffer.insert (target is known absent).
            if len(resident) >= capacity:
                displaced = resident.pop(next(iter(resident)))
                buffer._forget(displaced)
                stats.erroneous += 1
            resident[target] = tuple_new(
                PrefetchedBlock, (target, now, arrival, -1)
            )
            counts[-1] = counts.get(-1, 0) + 1
            stats.issued += 1
            last_target = target
        self._seed_continuation(core, block, last_target, stride)

    def _seed_continuation(
        self, core: int, block: int, last_target: int, stride: int
    ) -> None:
        """Let a confirmed stream cross tracking-region boundaries.

        Stream buffers follow a reference stream across page boundaries;
        without this, every region crossing re-pays the two-miss training
        cost, which fragments long scans into periodic miss bursts.
        Seeding the next region's tracker with the confirmed stride keeps
        the stream rolling seamlessly.
        """
        region = last_target >> self._region_shift
        if region == block >> self._region_shift:
            return
        tracker = self._trackers[core]
        if region in tracker:
            return
        if len(tracker) >= self.tracker_entries:
            del tracker[next(iter(tracker))]
        tracker[region] = [
            last_target,
            stride,
            self.confirm_threshold - 1,
        ]

    def finalize(self) -> None:
        """Account leftovers as erroneous."""
        for buffer in self.buffers:
            self.stats.erroneous += len(buffer.drain())
