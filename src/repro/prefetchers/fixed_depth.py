"""Fixed-prefetch-depth single-table prefetcher (EBCP / ULMT style).

Prior single-table designs store a temporal stream inside one
set-associative correlation entry, so each lookup can supply at most
``depth`` successor addresses (three to six in published designs).  Long
streams fragment into ``depth``-sized pieces, each fragment boundary
costing an uncovered trigger miss and, when meta-data is off chip, a
fresh lookup round trip.  Figure 6 (right) quantifies the resulting
coverage loss versus prefetch depth; this class reproduces it by bounding
how far :class:`IdealTmsPrefetcher` may follow a stream per lookup.

``lookup_rounds`` models the off-chip lookup latency in memory round
trips (0 = magic on-chip table, 1 = single-table off-chip designs): the
fragment's prefetches cannot be issued until the lookup returns, so
during that window demand misses pass uncovered — the "lost opportunity
proportional to MLP" the paper describes in Section 5.4.
"""

from __future__ import annotations

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.base import ResidencyFilter
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher, _StreamCursor


class FixedDepthPrefetcher(IdealTmsPrefetcher):
    """Ideal TMS restricted to ``depth`` prefetches per lookup."""

    def __init__(
        self,
        cores: int,
        dram: DramChannel,
        traffic: TrafficMeter,
        depth: int,
        residency_filter: ResidencyFilter | None = None,
        buffer_blocks: int = 32,
        lookup_rounds: int = 0,
        charge_lookup_traffic: bool = False,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        if lookup_rounds < 0:
            raise ValueError("lookup_rounds must be non-negative")
        super().__init__(
            cores,
            dram,
            traffic,
            residency_filter,
            buffer_blocks,
            lookahead=depth,
        )
        self.depth = depth
        self.lookup_rounds = lookup_rounds
        self.charge_lookup_traffic = charge_lookup_traffic
        #: History positions at which each core's current fragment ends.
        self._fragment_end: list[int | None] = [None] * cores

    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        self.stats.lookups += 1
        located = self.index.lookup(block)
        self._record(core, block)
        if located is None:
            # Unrelated miss: keep draining the current fragment.
            return
        self.stats.lookup_hits += 1
        if self.charge_lookup_traffic and self.lookup_rounds > 0:
            self.traffic.add_blocks(
                TrafficCategory.LOOKUP_STREAMS, self.lookup_rounds,
                core=core,
            )
        source_core, position = located
        self._next_serial += 1
        self._streams[core] = _StreamCursor(
            source_core, position + 1, self._next_serial
        )
        self._fragment_end[core] = position + 1 + self.depth
        ready = now + self.lookup_rounds * self.dram.config.access_latency_cycles
        self._stream_ahead(core, ready)

    def _stream_ahead(self, core: int, now: float) -> None:
        """Stream, but never past the current fragment boundary."""
        cursor = self._streams[core]
        fragment_end = self._fragment_end[core]
        if cursor is None or fragment_end is None:
            return
        source = self.histories[cursor.source_core]
        buffer = self.buffers[core]
        # Unlike split-table streaming, a single-table design retrieves the
        # whole fixed-size entry at once, so the entire fragment issues
        # immediately (bounded only by buffer capacity).
        budget = self.depth - buffer.outstanding(cursor.serial)
        issued = 0
        while (
            issued < budget
            and cursor.position < len(source)
            and cursor.position < fragment_end
        ):
            block = source[cursor.position]
            cursor.position += 1
            if self._issue_prefetch(core, block, now, stream=cursor.serial):
                issued += 1
        if cursor.position >= fragment_end or cursor.position >= len(source):
            # Fragment exhausted: the next miss must trigger a new lookup.
            self._streams[core] = None
            self._fragment_end[core] = None
