"""Markov (pair-wise correlating) prefetcher [Joseph & Grunwald, ISCA'97].

The simplest address-correlating design from the paper's background
section: a set-associative table maps a miss address to its recently
observed successor misses.  On a miss, all remembered successors are
prefetched — but only *one* miss ahead, which limits memory-level
parallelism and lookahead.  Included as an ablation baseline to contrast
pair-wise correlation with temporal streaming.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficMeter
from repro.prefetchers.base import ResidencyFilter, TemporalPrefetcher


class MarkovPrefetcher(TemporalPrefetcher):
    """Pair-wise successor prediction with an entry-capped on-chip table."""

    def __init__(
        self,
        cores: int,
        dram: DramChannel,
        traffic: TrafficMeter,
        residency_filter: ResidencyFilter | None = None,
        buffer_blocks: int = 32,
        successors_per_entry: int = 2,
        max_entries: int = 16384,
    ) -> None:
        super().__init__(
            cores, dram, traffic, residency_filter, buffer_blocks
        )
        if successors_per_entry <= 0:
            raise ValueError("successors_per_entry must be positive")
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.successors_per_entry = successors_per_entry
        self.max_entries = max_entries
        #: addr -> MRU-ordered list of observed successors.
        self._table: OrderedDict[int, list[int]] = OrderedDict()
        #: Last miss address seen per core (the correlation source).
        self._last_miss: list[int | None] = [None] * cores

    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        self._train(core, block)
        self._predict(core, block, now)

    def _on_prefetch_hit(self, core: int, block: int, now: float) -> None:
        # A consumed prefetch is a miss the table predicted; keep training
        # on it so chains of pairs extend across covered misses.
        self._train(core, block)
        self._predict(core, block, now)

    def _train(self, core: int, block: int) -> None:
        previous = self._last_miss[core]
        self._last_miss[core] = block
        if previous is None or previous == block:
            return
        successors = self._table.get(previous)
        if successors is None:
            if len(self._table) >= self.max_entries:
                self._table.popitem(last=False)
            self._table[previous] = [block]
            return
        self._table.move_to_end(previous)
        if block in successors:
            successors.remove(block)
        successors.insert(0, block)
        del successors[self.successors_per_entry:]

    def _predict(self, core: int, block: int, now: float) -> None:
        self.stats.lookups += 1
        successors = self._table.get(block)
        if not successors:
            return
        self.stats.lookup_hits += 1
        self._table.move_to_end(block)
        for successor in successors:
            self._issue_prefetch(core, successor, now)
