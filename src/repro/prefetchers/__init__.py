"""Prefetcher implementations: the base system's stride prefetcher and the
address-correlating baselines STMS is compared against.

* :mod:`repro.prefetchers.stride` — the stride prefetcher present in the
  paper's base system (all coverage is reported in excess of it).
* :mod:`repro.prefetchers.markov` — pair-wise correlation (Markov)
  prefetcher from the background discussion.
* :mod:`repro.prefetchers.ideal_tms` — idealized temporal memory streaming
  with "magic" on-chip meta-data (zero-latency, unbounded), optionally
  entry-capped for Figure 1 (left).
* :mod:`repro.prefetchers.fixed_depth` — single-table design with a fixed
  prefetch depth (EBCP/ULMT-style), for Figure 6 (right).
* :mod:`repro.prefetchers.traffic_models` — analytic overhead-traffic
  models of ULMT, EBCP, and TSE for Figure 1 (right).
"""

from repro.prefetchers.base import (
    PrefetchedBlock,
    PrefetcherStats,
    TemporalPrefetcher,
)
from repro.prefetchers.fixed_depth import FixedDepthPrefetcher
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.traffic_models import (
    PriorDesign,
    PriorDesignTraffic,
    prior_design_overheads,
)

__all__ = [
    "PrefetchedBlock",
    "PrefetcherStats",
    "TemporalPrefetcher",
    "FixedDepthPrefetcher",
    "IdealTmsPrefetcher",
    "MarkovPrefetcher",
    "StridePrefetcher",
    "PriorDesign",
    "PriorDesignTraffic",
    "prior_design_overheads",
]
