"""Idealized temporal memory streaming (TMS) with magic on-chip meta-data.

This is the paper's Section 5.2 reference design: a history of miss
addresses recorded in a "magic" on-chip buffer with impractically large
capacity and zero-latency, infinite-bandwidth lookup.  It establishes the
*performance potential* that the practical off-chip STMS design then
approaches (Figs. 4 and 9), and — with an entry cap on its index — the
storage-requirement curve of Figure 1 (left).

Only prefetch *data* fills touch DRAM; meta-data reads/writes are free.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficMeter
from repro.prefetchers.base import ResidencyFilter, TemporalPrefetcher


class _MagicIndex:
    """Address -> (core, history position) map, optionally entry-capped.

    With ``max_entries`` set, the index behaves as a global-LRU
    correlation table, which is how Figure 1 (left) measures how many
    correlation entries a given coverage level requires.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.max_entries = max_entries
        self._map: OrderedDict[int, tuple[int, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._map)

    def lookup(self, block: int) -> tuple[int, int] | None:
        """Most recent prior occurrence of ``block``, LRU-refreshed."""
        position = self._map.get(block)
        if position is not None and self.max_entries is not None:
            self._map.move_to_end(block)
        return position

    def update(self, block: int, core: int, position: int) -> None:
        """Point ``block`` at its newest history position."""
        if block in self._map:
            self._map.pop(block)
        elif (
            self.max_entries is not None
            and len(self._map) >= self.max_entries
        ):
            self._map.popitem(last=False)
        self._map[block] = (core, position)


class _StreamCursor:
    """A position within some core's recorded history being followed."""

    __slots__ = ("source_core", "position", "serial")

    def __init__(self, source_core: int, position: int, serial: int) -> None:
        self.source_core = source_core
        self.position = position
        #: Monotonic stream generation, used to count in-flight prefetches
        #: belonging to *this* stream (stale buffer entries don't count).
        self.serial = serial


class IdealTmsPrefetcher(TemporalPrefetcher):
    """TMS with unbounded zero-latency on-chip meta-data.

    Per-core histories record every off-chip miss and prefetched hit; a
    shared index maps an address to its most recent occurrence.  On an
    uncovered miss the prefetcher locates the previous occurrence and
    streams the addresses that followed it, keeping ``lookahead``
    prefetches in flight ahead of consumption.
    """

    def __init__(
        self,
        cores: int,
        dram: DramChannel,
        traffic: TrafficMeter,
        residency_filter: ResidencyFilter | None = None,
        buffer_blocks: int = 32,
        lookahead: int = 12,
        max_index_entries: int | None = None,
    ) -> None:
        super().__init__(
            cores, dram, traffic, residency_filter, buffer_blocks
        )
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.lookahead = lookahead
        self.histories: list[list[int]] = [[] for _ in range(cores)]
        self.index = _MagicIndex(max_index_entries)
        self._streams: list[_StreamCursor | None] = [None] * cores
        self._next_serial = 0

    # ------------------------------------------------------------------
    # Trigger and stream-following logic.
    # ------------------------------------------------------------------

    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        """Uncovered off-chip read: look up a stream, then record."""
        self.stats.lookups += 1
        located = self.index.lookup(block)
        self._record(core, block)
        if located is None:
            # No stream found for this miss: keep following the current
            # one — the miss may be unrelated noise interleaved with it.
            return
        self.stats.lookup_hits += 1
        source_core, position = located
        self._next_serial += 1
        self._streams[core] = _StreamCursor(
            source_core, position + 1, self._next_serial
        )
        self._stream_ahead(core, now)

    def _on_prefetch_hit(self, core: int, block: int, now: float) -> None:
        """Prefetched hits are recorded and keep the stream flowing."""
        self._record(core, block)
        self._stream_ahead(core, now)

    def _record(self, core: int, block: int) -> None:
        history = self.histories[core]
        history.append(block)
        self.index.update(block, core, len(history) - 1)

    def _stream_ahead(self, core: int, now: float) -> None:
        """Issue prefetches until ``lookahead`` are in flight or unread."""
        cursor = self._streams[core]
        if cursor is None:
            return
        source = self.histories[cursor.source_core]
        # Maintain ~lookahead in-flight prefetches for the *current*
        # stream; leftovers from abandoned streams age out of the FIFO
        # buffer instead of throttling this one.
        buffer = self.buffers[core]
        budget = self.lookahead - buffer.outstanding(cursor.serial)
        attempts = 0
        issued = 0
        # Bound the scan so residency-filtered runs cannot spin forever.
        max_attempts = 4 * self.lookahead
        while (
            issued < budget
            and attempts < max_attempts
            and cursor.position < len(source)
        ):
            block = source[cursor.position]
            cursor.position += 1
            attempts += 1
            if self._issue_prefetch(core, block, now, stream=cursor.serial):
                issued += 1
        if cursor.position >= len(source):
            # Caught up with the recording head: stream exhausted.
            self._streams[core] = None
