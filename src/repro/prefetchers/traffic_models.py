"""Analytic overhead-traffic models of prior off-chip-meta-data designs.

Figure 1 (right) of the paper compares the memory-traffic overheads of
three published address-correlating prefetchers that keep meta-data in
main memory — ULMT [Solihin et al.], EBCP [Chou], and TSE [Wenisch et
al.] — "based on their published results".  The paper derives each bar
arithmetically from per-event access counts rather than re-simulating the
designs; this module performs the same arithmetic against the baseline
statistics measured on *our* workloads:

* **Meta-data lookup** — ULMT and TSE look up on every remaining off-chip
  read miss (1 and 3 accesses respectively); EBCP looks up once per miss
  *epoch*, i.e. every MLP misses.
* **Meta-data update** — ULMT and EBCP update after each lookup (3
  accesses); TSE updates on misses and prefetched hits (~1.1 accesses).
* **Erroneous prefetches** — computed from each design's published
  coverage and accuracy.

Overheads are normalized to the baseline's off-chip read count, exactly
like the figure's y-axis ("overhead accesses per baseline read access").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PriorDesign(Enum):
    """The three prior designs of Figure 1 (right)."""

    EBCP = "EBCP"
    ULMT = "ULMT"
    TSE = "TSE"


@dataclass(frozen=True)
class DesignParameters:
    """Published per-event meta-data access counts for one design."""

    #: Memory accesses per meta-data lookup.
    lookup_accesses: float
    #: Lookups per off-chip read miss (1.0) or per miss epoch (1/MLP).
    lookup_per_epoch: bool
    #: Memory accesses per meta-data update.
    update_accesses: float
    #: Updates also triggered by prefetched hits (TSE) or only misses.
    update_on_hits: bool
    #: Published prefetch coverage (fraction of misses eliminated).
    coverage: float
    #: Published prefetch accuracy (useful / issued).
    accuracy: float


#: Parameters taken from the designs' published results as summarized in
#: the paper's Section 3 discussion of Figure 1 (right).
DESIGN_PARAMETERS: dict[PriorDesign, DesignParameters] = {
    # EBCP: one lookup per off-chip miss epoch, 3-access updates.
    PriorDesign.EBCP: DesignParameters(
        lookup_accesses=1.0,
        lookup_per_epoch=True,
        update_accesses=3.0,
        update_on_hits=False,
        coverage=0.55,
        accuracy=0.6,
    ),
    # ULMT: one lookup and a 3-access update on every remaining miss.
    PriorDesign.ULMT: DesignParameters(
        lookup_accesses=1.0,
        lookup_per_epoch=False,
        update_accesses=3.0,
        update_on_hits=False,
        coverage=0.45,
        accuracy=0.55,
    ),
    # TSE: 3-access lookups on misses; ~1.1-access updates on misses and
    # prefetched hits.
    PriorDesign.TSE: DesignParameters(
        lookup_accesses=3.0,
        lookup_per_epoch=False,
        update_accesses=1.1,
        update_on_hits=True,
        coverage=0.5,
        accuracy=0.65,
    ),
}


@dataclass(frozen=True)
class PriorDesignTraffic:
    """Overhead accesses per baseline read access, by source."""

    design: PriorDesign
    erroneous_prefetches: float
    metadata_lookup: float
    metadata_update: float

    @property
    def total(self) -> float:
        return (
            self.erroneous_prefetches
            + self.metadata_lookup
            + self.metadata_update
        )


def model_design(
    design: PriorDesign,
    mlp: float,
    parameters: DesignParameters | None = None,
) -> PriorDesignTraffic:
    """Compute one design's overhead bar from baseline statistics.

    ``mlp`` is the measured memory-level parallelism of the baseline's
    off-chip reads (paper Table 2), which sets EBCP's epoch length.
    All quantities are per baseline off-chip read access.
    """
    if mlp < 1.0:
        raise ValueError(f"mlp must be >= 1.0, got {mlp}")
    p = parameters if parameters is not None else DESIGN_PARAMETERS[design]

    # Per baseline read: `coverage` reads are eliminated, leaving
    # (1 - coverage) remaining misses that trigger lookups.
    remaining = 1.0 - p.coverage
    # Useful prefetches equal covered misses; erroneous traffic follows
    # from accuracy = useful / (useful + erroneous).
    erroneous = (
        p.coverage * (1.0 - p.accuracy) / p.accuracy if p.accuracy > 0 else 0.0
    )

    lookups = remaining / mlp if p.lookup_per_epoch else remaining
    lookup_traffic = lookups * p.lookup_accesses

    update_events = remaining + (p.coverage if p.update_on_hits else 0.0)
    if not p.update_on_hits and not p.lookup_per_epoch:
        # ULMT-style: update follows each lookup.
        update_events = lookups
    elif p.lookup_per_epoch:
        # EBCP-style: update follows each epoch lookup.
        update_events = lookups
    update_traffic = update_events * p.update_accesses

    return PriorDesignTraffic(
        design=design,
        erroneous_prefetches=erroneous,
        metadata_lookup=lookup_traffic,
        metadata_update=update_traffic,
    )


def prior_design_overheads(
    mlp_by_workload: dict[str, float],
) -> dict[PriorDesign, PriorDesignTraffic]:
    """Average each design's overhead bar across the measured workloads.

    Mirrors Figure 1 (right), which presents one averaged bar per design.
    """
    if not mlp_by_workload:
        raise ValueError("mlp_by_workload must not be empty")
    results: dict[PriorDesign, PriorDesignTraffic] = {}
    for design in PriorDesign:
        bars = [
            model_design(design, mlp) for mlp in mlp_by_workload.values()
        ]
        count = len(bars)
        results[design] = PriorDesignTraffic(
            design=design,
            erroneous_prefetches=sum(b.erroneous_prefetches for b in bars)
            / count,
            metadata_lookup=sum(b.metadata_lookup for b in bars) / count,
            metadata_update=sum(b.metadata_update for b in bars) / count,
        )
    return results
