"""Main-memory channel model: latency, bandwidth, and priorities.

The paper's memory system is 45 ns access latency with 28.4 GB/s of peak
bandwidth moving 64-byte transfers, and all prefetcher meta-data traffic is
issued at *low priority* so processor demands are never delayed behind it
(§4.3: "assigning a low priority to predictor memory traffic is essential").

The model is a single-server queue with two priority classes:

* **High** (demand fetches, write-backs) — queues only behind other
  high-priority work, approximating preemption of meta-data transfers.
* **Low** (index lookups/updates, history reads/writes, prefetch fills) —
  queues behind *all* outstanding work.

Each transfer occupies the channel for ``block_bytes / bandwidth`` and the
requester sees ``queue delay + access latency + transfer time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.memory.address import BLOCK_BYTES


class Priority(IntEnum):
    """Memory-request priority class (higher value = more urgent)."""

    LOW = 0
    HIGH = 1


@dataclass(frozen=True)
class DramConfig:
    """Channel parameters (defaults follow the paper's Table 1 at 4 GHz)."""

    #: Core clock frequency used to convert ns to cycles.
    clock_ghz: float = 4.0
    #: Device access latency in nanoseconds.
    access_latency_ns: float = 45.0
    #: Peak sustainable bandwidth in GB/s.
    peak_bandwidth_gbps: float = 28.4

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.access_latency_ns < 0:
            raise ValueError("access_latency_ns must be non-negative")
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError("peak_bandwidth_gbps must be positive")

    @property
    def access_latency_cycles(self) -> float:
        """Device latency in core cycles (45 ns @ 4 GHz = 180 cycles)."""
        return self.access_latency_ns * self.clock_ghz

    @property
    def transfer_cycles(self) -> float:
        """Channel occupancy of one 64-byte transfer in core cycles."""
        ns_per_block = BLOCK_BYTES / self.peak_bandwidth_gbps
        return ns_per_block * self.clock_ghz


@dataclass(slots=True)
class DramStats:
    """Aggregate channel behaviour."""

    requests: int = 0
    high_priority_requests: int = 0
    low_priority_requests: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0


class DramChannel:
    """Single memory channel shared by all cores and the prefetcher."""

    __slots__ = ('config', 'stats', '_transfer_cycles', '_access_latency_cycles', '_busy_until_high', '_busy_until_all')

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config if config is not None else DramConfig()
        self.stats = DramStats()
        # The config is frozen; cache the derived cycle costs so the
        # per-request hot path skips two property computations.
        self._transfer_cycles = self.config.transfer_cycles
        self._access_latency_cycles = self.config.access_latency_cycles
        # Committed channel time for high-priority work only, and for all
        # work.  High priority queues behind the former, low behind the
        # latter; both extend both, so low-priority backlog never delays a
        # later demand request but demand backlog delays everything.
        self._busy_until_high = 0.0
        self._busy_until_all = 0.0

    def request(
        self,
        now: float,
        priority: Priority = Priority.HIGH,
        blocks: int = 1,
    ) -> float:
        """Issue a ``blocks``-transfer request at time ``now``.

        Returns the absolute completion time (when the last byte arrives).
        """
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        service = self._transfer_cycles * blocks

        stats = self.stats
        if priority is Priority.HIGH:
            busy = self._busy_until_high
            start = now if now > busy else busy
            busy = start + service
            self._busy_until_high = busy
            if busy > self._busy_until_all:
                self._busy_until_all = busy
            stats.high_priority_requests += 1
        else:
            busy = self._busy_until_all
            start = now if now > busy else busy
            self._busy_until_all = start + service
            stats.low_priority_requests += 1

        stats.requests += 1
        stats.busy_cycles += service
        stats.queue_cycles += start - now

        return start + self._access_latency_cycles + service

    def request_low(self, now: float) -> float:
        """One-block :meth:`request` at ``Priority.LOW``.

        Branch-free specialization for the metadata paths (bucket
        fetches, history spills/reads), which issue every off-chip
        meta-data access at low priority.
        """
        service = self._transfer_cycles
        busy = self._busy_until_all
        start = now if now > busy else busy
        self._busy_until_all = start + service
        stats = self.stats
        stats.low_priority_requests += 1
        stats.requests += 1
        stats.busy_cycles += service
        stats.queue_cycles += start - now
        return start + self._access_latency_cycles + service

    def latency(
        self,
        now: float,
        priority: Priority = Priority.HIGH,
        blocks: int = 1,
    ) -> float:
        """Convenience: round-trip latency seen by the requester."""
        return self.request(now, priority, blocks) - now

    def peek_completion(
        self,
        now: float,
        priority: Priority = Priority.HIGH,
        blocks: int = 1,
    ) -> float:
        """Completion time a request would see, without issuing it.

        Used to model a demand access *upgrading* an in-flight low-
        priority prefetch for the same block: the data transfer was
        already charged when the prefetch issued, but the requester
        should not wait longer than a fresh demand fetch would take.
        """
        service = self._transfer_cycles * blocks
        start = max(
            now,
            self._busy_until_high
            if priority is Priority.HIGH
            else self._busy_until_all,
        )
        return start + self._access_latency_cycles + service

    def low_backlog(self, now: float) -> float:
        """Cycles of committed work ahead of ``now`` for a LOW request.

        Prefetchers consult this to drop prefetches when the channel is
        saturated — the bounded-queue backpressure real memory systems
        have, and the reason the paper can issue meta-data traffic at low
        priority without strangling demand fetches.
        """
        return max(0.0, self._busy_until_all - now)

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of ``elapsed_cycles`` the channel spent transferring."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        """Clear queues and statistics (between measurement phases)."""
        self.stats = DramStats()
        self._busy_until_high = 0.0
        self._busy_until_all = 0.0
