"""Off-chip traffic accounting by category.

The paper's bandwidth results (Figs. 1 right, 7, 8 left) break overhead
traffic into *record streams*, *update index*, *lookup streams* and
*incorrect prefetches*, normalized against the baseline's useful data
traffic.  :class:`TrafficMeter` tallies bytes per category and produces
exactly those normalizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.memory.address import BLOCK_BYTES


class TrafficCategory(Enum):
    """Every kind of byte that crosses the processor pins."""

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash — but C-level, which matters: every traffic
    # charge in the simulator is a dict access keyed by a category.
    __hash__ = object.__hash__

    #: Demand fetches that miss all caches (the baseline's useful reads).
    DEMAND_READ = "demand_read"
    #: Dirty-block write-backs to main memory.
    WRITEBACK = "writeback"
    #: Unused fills issued by the base system's stride prefetcher.  Present
    #: in both baseline and STMS configurations, so excluded from the
    #: temporal prefetcher's overhead accounting.
    STRIDE_PREFETCH = "stride_prefetch"
    #: Prefetched blocks that were later used by the core.
    USEFUL_PREFETCH = "useful_prefetch"
    #: Prefetched blocks never used before being dropped.
    ERRONEOUS_PREFETCH = "erroneous_prefetch"
    #: History-buffer appends (packed, one write per ~12 misses).
    RECORD_STREAMS = "record_streams"
    #: Index-table maintenance (bucket read + write per applied update).
    UPDATE_INDEX = "update_index"
    #: Index-table bucket reads + history-buffer block reads on lookups.
    LOOKUP_STREAMS = "lookup_streams"

    @property
    def is_overhead(self) -> bool:
        """Overhead = everything beyond demand reads and write-backs."""
        return self not in (
            TrafficCategory.DEMAND_READ,
            TrafficCategory.WRITEBACK,
            TrafficCategory.STRIDE_PREFETCH,
        )

    @property
    def is_metadata(self) -> bool:
        """Meta-data traffic is eligible for low-priority scheduling."""
        return self in (
            TrafficCategory.RECORD_STREAMS,
            TrafficCategory.UPDATE_INDEX,
            TrafficCategory.LOOKUP_STREAMS,
        )


#: Display order used by reports, matching the paper's Figure 7 legend.
OVERHEAD_ORDER = (
    TrafficCategory.RECORD_STREAMS,
    TrafficCategory.UPDATE_INDEX,
    TrafficCategory.LOOKUP_STREAMS,
    TrafficCategory.ERRONEOUS_PREFETCH,
)


@dataclass(frozen=True)
class TrafficBreakdown:
    """Immutable snapshot of normalized overhead traffic.

    Values are overhead bytes per useful data byte, the y-axis of the
    paper's Figure 7.
    """

    record_streams: float
    update_index: float
    lookup_streams: float
    erroneous_prefetch: float

    @property
    def total(self) -> float:
        return (
            self.record_streams
            + self.update_index
            + self.lookup_streams
            + self.erroneous_prefetch
        )


class TrafficMeter:
    """Tallies off-chip bytes by :class:`TrafficCategory`."""

    def __init__(self) -> None:
        self._bytes: dict[TrafficCategory, int] = {
            category: 0 for category in TrafficCategory
        }

    def add_blocks(self, category: TrafficCategory, blocks: int = 1) -> None:
        """Charge ``blocks`` whole 64-byte transfers to ``category``."""
        if blocks < 0:
            raise ValueError(f"blocks must be non-negative, got {blocks}")
        self._bytes[category] += blocks * BLOCK_BYTES

    def add_block(self, category: TrafficCategory) -> None:
        """Charge one 64-byte transfer (validation-free hot path)."""
        self._bytes[category] += BLOCK_BYTES

    def add_bytes(self, category: TrafficCategory, count: int) -> None:
        """Charge raw bytes (for sub-block transfers) to ``category``."""
        if count < 0:
            raise ValueError(f"byte count must be non-negative, got {count}")
        self._bytes[category] += count

    def bytes_for(self, category: TrafficCategory) -> int:
        return self._bytes[category]

    @property
    def useful_bytes(self) -> int:
        """Baseline-equivalent useful data: demand reads, write-backs, and
        prefetches the core actually consumed (those replaced demand reads).
        """
        return (
            self._bytes[TrafficCategory.DEMAND_READ]
            + self._bytes[TrafficCategory.WRITEBACK]
            + self._bytes[TrafficCategory.USEFUL_PREFETCH]
        )

    @property
    def overhead_bytes(self) -> int:
        return sum(
            count
            for category, count in self._bytes.items()
            if category.is_overhead
            and category is not TrafficCategory.USEFUL_PREFETCH
        )

    @property
    def metadata_bytes(self) -> int:
        return sum(
            count
            for category, count in self._bytes.items()
            if category.is_metadata
        )

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def breakdown(self) -> TrafficBreakdown:
        """Overhead bytes per useful byte, per category (Fig. 7 format)."""
        useful = self.useful_bytes
        if useful == 0:
            return TrafficBreakdown(0.0, 0.0, 0.0, 0.0)
        return TrafficBreakdown(
            record_streams=self._bytes[TrafficCategory.RECORD_STREAMS] / useful,
            update_index=self._bytes[TrafficCategory.UPDATE_INDEX] / useful,
            lookup_streams=self._bytes[TrafficCategory.LOOKUP_STREAMS] / useful,
            erroneous_prefetch=(
                self._bytes[TrafficCategory.ERRONEOUS_PREFETCH] / useful
            ),
        )

    def overhead_per_useful_byte(self) -> float:
        """Scalar overhead ratio (Fig. 8 left y-axis)."""
        useful = self.useful_bytes
        if useful == 0:
            return 0.0
        return self.overhead_bytes / useful

    def merge(self, other: TrafficMeter) -> None:
        """Accumulate another meter's counts into this one."""
        for category, count in other._bytes.items():
            self._bytes[category] += count

    def reset(self) -> None:
        for category in self._bytes:
            self._bytes[category] = 0
