"""Off-chip traffic accounting by category.

The paper's bandwidth results (Figs. 1 right, 7, 8 left) break overhead
traffic into *record streams*, *update index*, *lookup streams* and
*incorrect prefetches*, normalized against the baseline's useful data
traffic.  :class:`TrafficMeter` tallies bytes per category and produces
exactly those normalizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.memory.address import BLOCK_BYTES


class TrafficCategory(Enum):
    """Every kind of byte that crosses the processor pins."""

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash — but C-level, which matters: every traffic
    # charge in the simulator is a dict access keyed by a category.
    __hash__ = object.__hash__

    #: Demand fetches that miss all caches (the baseline's useful reads).
    DEMAND_READ = "demand_read"
    #: Dirty-block write-backs to main memory.
    WRITEBACK = "writeback"
    #: Unused fills issued by the base system's stride prefetcher.  Present
    #: in both baseline and STMS configurations, so excluded from the
    #: temporal prefetcher's overhead accounting.
    STRIDE_PREFETCH = "stride_prefetch"
    #: Prefetched blocks that were later used by the core.
    USEFUL_PREFETCH = "useful_prefetch"
    #: Prefetched blocks never used before being dropped.
    ERRONEOUS_PREFETCH = "erroneous_prefetch"
    #: History-buffer appends (packed, one write per ~12 misses).
    RECORD_STREAMS = "record_streams"
    #: Index-table maintenance (bucket read + write per applied update).
    UPDATE_INDEX = "update_index"
    #: Index-table bucket reads + history-buffer block reads on lookups.
    LOOKUP_STREAMS = "lookup_streams"

    @property
    def is_overhead(self) -> bool:
        """Overhead = everything beyond demand reads and write-backs."""
        return self not in (
            TrafficCategory.DEMAND_READ,
            TrafficCategory.WRITEBACK,
            TrafficCategory.STRIDE_PREFETCH,
        )

    @property
    def is_metadata(self) -> bool:
        """Meta-data traffic is eligible for low-priority scheduling."""
        return self in (
            TrafficCategory.RECORD_STREAMS,
            TrafficCategory.UPDATE_INDEX,
            TrafficCategory.LOOKUP_STREAMS,
        )


#: Display order used by reports, matching the paper's Figure 7 legend.
OVERHEAD_ORDER = (
    TrafficCategory.RECORD_STREAMS,
    TrafficCategory.UPDATE_INDEX,
    TrafficCategory.LOOKUP_STREAMS,
    TrafficCategory.ERRONEOUS_PREFETCH,
)


@dataclass(frozen=True)
class TrafficBreakdown:
    """Immutable snapshot of normalized overhead traffic.

    Values are overhead bytes per useful data byte, the y-axis of the
    paper's Figure 7.
    """

    record_streams: float
    update_index: float
    lookup_streams: float
    erroneous_prefetch: float

    @property
    def total(self) -> float:
        return (
            self.record_streams
            + self.update_index
            + self.lookup_streams
            + self.erroneous_prefetch
        )


class TrafficMeter:
    """Tallies off-chip bytes by :class:`TrafficCategory`, per core.

    Every charge names the *requesting core* — the core whose demand
    access, prefetch stream, or meta-data operation caused the bytes to
    cross the pins — so multiprogrammed-mix experiments can attribute
    DRAM traffic (including STMS meta-data) to the workload that caused
    it.  The aggregate ``_bytes`` dict and the per-core ``_core_bytes``
    dicts are charged together at every site; their equality (summing
    cores reproduces the global counters exactly) is an invariant the
    conservation suite enforces.
    """

    def __init__(self, cores: int = 1) -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.cores = cores
        self._bytes: dict[TrafficCategory, int] = {
            category: 0 for category in TrafficCategory
        }
        #: Per-core mirrors of ``_bytes``; index = requesting core.
        self._core_bytes: "list[dict[TrafficCategory, int]]" = [
            {category: 0 for category in TrafficCategory}
            for _ in range(cores)
        ]

    def add_blocks(
        self, category: TrafficCategory, blocks: int = 1, core: int = 0
    ) -> None:
        """Charge ``blocks`` whole 64-byte transfers to ``category``."""
        if blocks < 0:
            raise ValueError(f"blocks must be non-negative, got {blocks}")
        count = blocks * BLOCK_BYTES
        self._bytes[category] += count
        self._core_bytes[core][category] += count

    def add_block(self, category: TrafficCategory, core: int = 0) -> None:
        """Charge one 64-byte transfer (validation-free hot path)."""
        self._bytes[category] += BLOCK_BYTES
        self._core_bytes[core][category] += BLOCK_BYTES

    def add_bytes(
        self, category: TrafficCategory, count: int, core: int = 0
    ) -> None:
        """Charge raw bytes (for sub-block transfers) to ``category``."""
        if count < 0:
            raise ValueError(f"byte count must be non-negative, got {count}")
        self._bytes[category] += count
        self._core_bytes[core][category] += count

    def ensure_cores(self, cores: int) -> None:
        """Grow the per-core tables to cover ``cores`` requesters.

        Components that know their core count (hierarchy, prefetchers,
        history buffers) call this at construction so a meter built with
        the default single slot still attributes correctly when shared
        with multi-core machinery (the engines size theirs up front).
        The backing list object is extended in place, so hot paths that
        hoisted a reference to it observe the growth.
        """
        while len(self._core_bytes) < cores:
            self._core_bytes.append(
                {category: 0 for category in TrafficCategory}
            )
        if cores > self.cores:
            self.cores = cores

    def bytes_for(self, category: TrafficCategory) -> int:
        return self._bytes[category]

    def core_bytes_for(self, core: int, category: TrafficCategory) -> int:
        """Bytes of ``category`` attributed to requesting ``core``."""
        return self._core_bytes[core][category]

    def core_breakdown(self) -> "list[dict[str, int]]":
        """Per-core per-category byte counts (JSON-shaped snapshot)."""
        return [
            {category.value: count for category, count in per_core.items()}
            for per_core in self._core_bytes
        ]

    @property
    def useful_bytes(self) -> int:
        """Baseline-equivalent useful data: demand reads, write-backs, and
        prefetches the core actually consumed (those replaced demand reads).
        """
        return (
            self._bytes[TrafficCategory.DEMAND_READ]
            + self._bytes[TrafficCategory.WRITEBACK]
            + self._bytes[TrafficCategory.USEFUL_PREFETCH]
        )

    @property
    def overhead_bytes(self) -> int:
        return sum(
            count
            for category, count in self._bytes.items()
            if category.is_overhead
            and category is not TrafficCategory.USEFUL_PREFETCH
        )

    @property
    def metadata_bytes(self) -> int:
        return sum(
            count
            for category, count in self._bytes.items()
            if category.is_metadata
        )

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def breakdown(self) -> TrafficBreakdown:
        """Overhead bytes per useful byte, per category (Fig. 7 format)."""
        useful = self.useful_bytes
        if useful == 0:
            return TrafficBreakdown(0.0, 0.0, 0.0, 0.0)
        return TrafficBreakdown(
            record_streams=self._bytes[TrafficCategory.RECORD_STREAMS] / useful,
            update_index=self._bytes[TrafficCategory.UPDATE_INDEX] / useful,
            lookup_streams=self._bytes[TrafficCategory.LOOKUP_STREAMS] / useful,
            erroneous_prefetch=(
                self._bytes[TrafficCategory.ERRONEOUS_PREFETCH] / useful
            ),
        )

    def overhead_per_useful_byte(self) -> float:
        """Scalar overhead ratio (Fig. 8 left y-axis)."""
        useful = self.useful_bytes
        if useful == 0:
            return 0.0
        return self.overhead_bytes / useful

    def merge(self, other: TrafficMeter) -> None:
        """Accumulate another meter's counts into this one.

        Per-core counts merge index-by-index; a wider source meter's
        extra cores fold into this meter's core 0 so the conservation
        invariant (core sums equal the global counters) survives.
        """
        for category, count in other._bytes.items():
            self._bytes[category] += count
        for core, per_core in enumerate(other._core_bytes):
            target = self._core_bytes[core if core < self.cores else 0]
            for category, count in per_core.items():
                target[category] += count

    def reset(self) -> None:
        for category in self._bytes:
            self._bytes[category] = 0
        for per_core in self._core_bytes:
            for category in per_core:
                per_core[category] = 0
