"""Set-associative cache model.

The model is functional (hit/miss and content tracking) with the timing
supplied by the surrounding hierarchy.  It supports write-back /
write-allocate semantics and reports evicted dirty blocks so the hierarchy
can charge write-back traffic.

Capacities are expressed in bytes and divided into 64-byte blocks; lookups
operate on block numbers (see :mod:`repro.memory.address`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.memory.address import BLOCK_BYTES, is_power_of_two


class AccessResult(Enum):
    """Outcome of a cache access."""

    HIT = "hit"
    MISS = "miss"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    Parameters mirror the paper's Table 1 (e.g. the shared L2 is 8 MB,
    16-way).  ``size_bytes`` must be a power-of-two multiple of
    ``ways * BLOCK_BYTES`` so the set count is a power of two.
    ``replacement`` selects the per-set policy (``lru``, ``fifo``, or
    ``random``); the paper's hierarchy uses LRU throughout.
    """

    size_bytes: int
    ways: int
    name: str = "cache"
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError(f"{self.name}: ways must be positive")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(
                f"{self.name}: unknown replacement "
                f"{self.replacement!r} (lru/fifo/random)"
            )
        if self.size_bytes < self.ways * BLOCK_BYTES:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} too small for "
                f"{self.ways} ways of {BLOCK_BYTES}-byte blocks"
            )
        if self.size_bytes % (self.ways * BLOCK_BYTES) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of ways * block size"
            )
        if not is_power_of_two(self.sets):
            raise ValueError(
                f"{self.name}: set count {self.sets} is not a power of two"
            )

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * BLOCK_BYTES)

    @property
    def blocks(self) -> int:
        """Total block capacity."""
        return self.size_bytes // BLOCK_BYTES


@dataclass(slots=True)
class Eviction:
    """A block pushed out of the cache by a fill."""

    block: int
    dirty: bool


@dataclass(slots=True)
class CacheStats:
    """Running counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A single set-associative, write-back, write-allocate cache.

    Each set is a plain dict mapping tag to a dirty bit, kept in LRU
    order (last item = most recent; recency refreshed by pop/reinsert).
    This keeps the hot path — :meth:`access` — allocation-free and O(1)
    amortized, which matters because the simulator pushes every trace
    record through here.
    """

    __slots__ = ('config', 'stats', '_set_mask', '_lru', '_random', '_sets', '_version', '_snapshot', '_snapshot_version', '_rng')

    def __init__(
        self,
        config: CacheConfig,
        rng: "object | None" = None,
    ) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.sets - 1
        self._lru = config.replacement == "lru"
        self._random = config.replacement == "random"
        if self._random:
            import numpy as np

            self._rng = rng if rng is not None else np.random.default_rng(0)
        # sets[i]: dict[tag] = dirty flag.  Iteration order is recency
        # (LRU) or insertion (FIFO), oldest first.
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(config.sets)
        ]
        # Resident-set snapshot for vectorized segment classification.
        # ``_version`` bumps whenever the resident *set* changes (fills
        # and invalidations — hits never change membership).
        self._version = 0
        self._snapshot: "np.ndarray | None" = None
        self._snapshot_version = -1

    def lookup(self, block: int) -> bool:
        """Probe for ``block`` without updating recency or stats."""
        cache_set = self._sets[block & self._set_mask]
        return block in cache_set

    def access(self, block: int, write: bool = False) -> AccessResult:
        """Access ``block``; update recency and the dirty bit on a write.

        Misses do *not* allocate — callers decide whether and when to
        :meth:`fill`, because the fill may race with prefetches or be
        satisfied from a prefetch buffer instead.
        """
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            if self._lru:
                dirty = cache_set.pop(block)
                cache_set[block] = dirty or write
            elif write:
                cache_set[block] = True
            self.stats.hits += 1
            return AccessResult.HIT
        self.stats.misses += 1
        return AccessResult.MISS

    def fill(self, block: int, dirty: bool = False) -> Eviction | None:
        """Insert ``block``, returning the eviction it forced (if any)."""
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            # Refill of a resident block only merges the dirty bit.
            if self._lru:
                was_dirty = cache_set.pop(block)
                cache_set[block] = was_dirty or dirty
            elif dirty:
                cache_set[block] = True
            return None
        evicted: Eviction | None = None
        if len(cache_set) >= self.config.ways:
            evicted = self._evict(cache_set)
        cache_set[block] = dirty
        self.stats.fills += 1
        self._version += 1
        return evicted

    def fill_pair(
        self, block: int, dirty: bool = False
    ) -> "tuple[int, bool] | None":
        """:meth:`fill`, returning the eviction as a plain tuple.

        Allocation-light variant for the simulation hot path (LRU/FIFO
        only): identical state effects and stats, but the victim comes
        back as ``(block, dirty)`` instead of an :class:`Eviction`.
        """
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            if self._lru:
                was_dirty = cache_set.pop(block)
                cache_set[block] = was_dirty or dirty
            elif dirty:
                cache_set[block] = True
            return None
        evicted: "tuple[int, bool] | None" = None
        if len(cache_set) >= self.config.ways:
            if self._random:
                victim = self._evict(cache_set)
                evicted = (victim.block, victim.dirty)
            else:
                victim_block = next(iter(cache_set))
                evicted = (victim_block, cache_set.pop(victim_block))
                stats = self.stats
                stats.evictions += 1
                if evicted[1]:
                    stats.dirty_evictions += 1
        cache_set[block] = dirty
        self.stats.fills += 1
        self._version += 1
        return evicted

    def _evict(self, cache_set: "dict[int, bool]") -> Eviction:
        """Choose and remove a victim per the configured policy."""
        if self._random:
            keys = list(cache_set.keys())
            victim_block = keys[int(self._rng.integers(0, len(keys)))]
            victim_dirty = cache_set.pop(victim_block)
        else:
            # LRU and FIFO both evict the oldest entry; they differ only
            # in whether hits refresh the order (see :meth:`access`).
            victim_block = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_block)
        self.stats.evictions += 1
        if victim_dirty:
            self.stats.dirty_evictions += 1
        return Eviction(block=victim_block, dirty=victim_dirty)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns True if it was resident."""
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            del cache_set[block]
            self.stats.invalidations += 1
            self._version += 1
            return True
        return False

    # -- batched interface (see TagArrayCache for the tag-array twin) --

    def hit_update(self, block: int, write: bool) -> None:
        """State effects of one known hit (no stats; see ``access``)."""
        cache_set = self._sets[block & self._set_mask]
        if self._lru:
            dirty = cache_set.pop(block)
            cache_set[block] = dirty or write
        elif write:
            cache_set[block] = True

    def resident_prefix(self, blocks: "np.ndarray") -> int:
        """Length of the leading run of ``blocks`` that are all resident.

        Membership is tested vectorized against a NumPy snapshot of the
        resident set, rebuilt only when the contents last changed; hits
        never change membership, so one pass classifies the whole run.
        """
        if len(blocks) == 0:
            return 0
        if self._snapshot_version != self._version:
            resident = [b for s in self._sets for b in s]
            self._snapshot = np.array(resident, dtype=np.int64)
            self._snapshot_version = self._version
        misses = np.flatnonzero(~np.isin(blocks, self._snapshot))
        return int(misses[0]) if misses.size else len(blocks)

    def bulk_hit_update(
        self, blocks: "np.ndarray", writes: "np.ndarray"
    ) -> None:
        """Apply a run of known hits in order (no stats; see ``access``)."""
        sets = self._sets
        mask = self._set_mask
        if self._lru:
            for block, write in zip(blocks.tolist(), writes.tolist()):
                cache_set = sets[block & mask]
                dirty = cache_set.pop(block)
                cache_set[block] = dirty or write
        else:
            for block, write in zip(blocks.tolist(), writes.tolist()):
                if write:
                    sets[block & mask][block] = True

    def peek_dirty(self, block: int) -> bool:
        """True when ``block`` is resident and dirty (no recency update)."""
        cache_set = self._sets[block & self._set_mask]
        return cache_set.get(block, False)

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (test/debug helper)."""
        blocks: list[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.keys())
        return blocks

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after cache warm-up)."""
        self.stats = CacheStats()


class TagArrayCache:
    """Set-associative cache over NumPy tag/state arrays.

    Semantically identical to :class:`Cache` for the ``lru`` and ``fifo``
    policies — the equivalence is load-bearing: the batched simulation
    engine (:mod:`repro.sim.batch`) uses this class for the private L1s
    and must produce bit-identical results to the scalar reference
    engine.  Replacement order is tracked with a monotone stamp per way
    (hit/insert refreshes under LRU, insert-only under FIFO), so the
    eviction victim — the minimum stamp — matches the dict insertion
    order of the scalar model.

    On top of the scalar interface it supports *whole-segment
    classification*: :meth:`resident_prefix` answers, vectorized, how
    many upcoming accesses are guaranteed hits (residency is unchanged
    by hits), and :meth:`bulk_hit_update` applies a run of hits in one
    NumPy pass.  ``slots`` maps resident blocks to their flat way index
    for O(1) scalar probes without touching the arrays.
    """

    __slots__ = ('config', 'stats', '_set_mask', '_lru', '_ways', '_tags', '_valid', '_stamp', '_tags_flat', '_valid_flat', '_stamp_flat', '_dirty_flat', '_set_count', '_tick', 'slots')

    def __init__(self, config: CacheConfig) -> None:
        if config.replacement not in ("lru", "fifo"):
            raise ValueError(
                f"{config.name}: TagArrayCache supports lru/fifo only"
            )
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.sets - 1
        self._lru = config.replacement == "lru"
        self._ways = config.ways
        sets, ways = config.sets, config.ways
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._valid = np.zeros((sets, ways), dtype=bool)
        self._stamp = np.zeros((sets, ways), dtype=np.int64)
        # Flat views (shared memory) for O(1) scalar slot updates.
        self._tags_flat = self._tags.reshape(-1)
        self._valid_flat = self._valid.reshape(-1)
        self._stamp_flat = self._stamp.reshape(-1)
        self._dirty_flat = np.zeros(sets * ways, dtype=bool)
        #: Python-side per-set occupancy, so the hot fill path does not
        #: pay a NumPy reduction just to ask "is this set full?".
        self._set_count = [0] * sets
        self._tick = 0
        #: block -> flat way index, for O(1) scalar membership/probing.
        self.slots: dict[int, int] = {}

    # -- scalar interface (mirrors Cache) ------------------------------

    def lookup(self, block: int) -> bool:
        """Probe for ``block`` without updating recency or stats."""
        return block in self.slots

    def access(self, block: int, write: bool = False) -> AccessResult:
        """Access ``block``; update recency and the dirty bit on a write."""
        flat = self.slots.get(block)
        if flat is not None:
            self.hit_update(block, write)
            self.stats.hits += 1
            return AccessResult.HIT
        self.stats.misses += 1
        return AccessResult.MISS

    def hit_update(self, block: int, write: bool) -> None:
        """State effects of one known hit (no stats; see ``access``)."""
        flat = self.slots[block]
        if self._lru:
            self._tick += 1
            self._stamp_flat[flat] = self._tick
        if write:
            self._dirty_flat[flat] = True

    def fill(self, block: int, dirty: bool = False) -> Eviction | None:
        """Insert ``block``, returning the eviction it forced (if any)."""
        flat = self.slots.get(block)
        if flat is not None:
            # Refill of a resident block merges the dirty bit (and, under
            # LRU, refreshes recency — the scalar model reinserts).
            if self._lru:
                self._tick += 1
                self._stamp_flat[flat] = self._tick
            if dirty:
                self._dirty_flat[flat] = True
            return None
        set_idx = block & self._set_mask
        ways = self._ways
        base = set_idx * ways
        stamp_flat = self._stamp_flat
        evicted: Eviction | None = None
        if self._set_count[set_idx] == ways:
            if ways <= 4:
                # Manual min over a handful of ways beats an argmin call.
                victim_flat = base
                best = stamp_flat[base]
                for w in range(1, ways):
                    if stamp_flat[base + w] < best:
                        best = stamp_flat[base + w]
                        victim_flat = base + w
            else:
                victim_flat = base + int(self._stamp[set_idx].argmin())
            victim_block = int(self._tags_flat[victim_flat])
            victim_dirty = bool(self._dirty_flat[victim_flat])
            del self.slots[victim_block]
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.dirty_evictions += 1
            evicted = Eviction(block=victim_block, dirty=victim_dirty)
            flat = victim_flat
        else:
            flat = base + int(self._valid[set_idx].argmin())
            self._set_count[set_idx] += 1
        self._tags_flat[flat] = block
        self._valid_flat[flat] = True
        self._dirty_flat[flat] = dirty
        self._tick += 1
        stamp_flat[flat] = self._tick
        self.slots[block] = flat
        self.stats.fills += 1
        return evicted

    def fill_pair(
        self, block: int, dirty: bool = False
    ) -> "tuple[int, bool] | None":
        """:meth:`fill`, returning the eviction as a plain tuple."""
        evicted = self.fill(block, dirty)
        if evicted is None:
            return None
        return (evicted.block, evicted.dirty)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns True if it was resident."""
        flat = self.slots.pop(block, None)
        if flat is None:
            return False
        self._valid_flat[flat] = False
        self._tags_flat[flat] = -1
        self._dirty_flat[flat] = False
        self._set_count[flat // self._ways] -= 1
        self.stats.invalidations += 1
        return True

    def peek_dirty(self, block: int) -> bool:
        """True when ``block`` is resident and dirty (no recency update)."""
        flat = self.slots.get(block)
        return False if flat is None else bool(self._dirty_flat[flat])

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (test/debug helper)."""
        return list(self.slots)

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return len(self.slots)

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after cache warm-up)."""
        self.stats = CacheStats()

    # -- batched interface ---------------------------------------------

    def resident_prefix(self, blocks: np.ndarray) -> int:
        """Length of the leading run of ``blocks`` that are all resident.

        Residency is unchanged by hits, so membership against the current
        tag array classifies the whole run in one vectorized pass.
        """
        if len(blocks) == 0:
            return 0
        set_idx = blocks & self._set_mask
        hit = (
            (self._tags[set_idx] == blocks[:, None])
            & self._valid[set_idx]
        ).any(axis=1)
        misses = np.flatnonzero(~hit)
        return int(misses[0]) if misses.size else len(blocks)

    def bulk_hit_update(
        self, blocks: np.ndarray, writes: np.ndarray
    ) -> None:
        """Apply a run of known hits: recency stamps and dirty bits.

        Equivalent to calling :meth:`access` once per record in order
        (stats are the caller's concern — the hierarchy batches them).
        Duplicate blocks in the run resolve to the *last* occurrence via
        a max-reduction, matching sequential recency updates.
        """
        n = len(blocks)
        if n == 0:
            return
        set_idx = blocks & self._set_mask
        eq = (self._tags[set_idx] == blocks[:, None]) & self._valid[set_idx]
        way = eq.argmax(axis=1)
        flat = set_idx * self._ways + way
        if self._lru:
            stamps = np.arange(
                self._tick + 1, self._tick + n + 1, dtype=np.int64
            )
            np.maximum.at(self._stamp.reshape(-1), flat, stamps)
            self._tick += n
        written = flat[writes]
        if written.size:
            self._dirty_flat[written] = True


@dataclass(slots=True)
class VictimBuffer:
    """Tiny fully-associative victim store (FIFO), as beside the paper's L1s.

    Holds recently evicted L1 blocks so short-distance conflict misses are
    recovered without an L2 round trip.  Modeled functionally: a bounded
    FIFO of block numbers.
    """

    capacity: int
    _fifo: dict[int, bool] = field(default_factory=dict)
    hits: int = 0

    def insert(self, block: int, dirty: bool) -> Eviction | None:
        """Add an evicted block, possibly displacing the oldest entry."""
        if self.capacity <= 0:
            return Eviction(block=block, dirty=dirty) if dirty else None
        if block in self._fifo:
            self._fifo[block] = self._fifo[block] or dirty
            return None
        displaced: Eviction | None = None
        if len(self._fifo) >= self.capacity:
            old_block = next(iter(self._fifo))
            old_dirty = self._fifo.pop(old_block)
            displaced = Eviction(block=old_block, dirty=old_dirty)
        self._fifo[block] = dirty
        return displaced

    def extract(self, block: int) -> bool:
        """Remove and return True if ``block`` was held (a victim hit)."""
        if block in self._fifo:
            del self._fifo[block]
            self.hits += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._fifo)
