"""Set-associative cache model.

The model is functional (hit/miss and content tracking) with the timing
supplied by the surrounding hierarchy.  It supports write-back /
write-allocate semantics and reports evicted dirty blocks so the hierarchy
can charge write-back traffic.

Capacities are expressed in bytes and divided into 64-byte blocks; lookups
operate on block numbers (see :mod:`repro.memory.address`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum

from repro.memory.address import BLOCK_BYTES, is_power_of_two


class AccessResult(Enum):
    """Outcome of a cache access."""

    HIT = "hit"
    MISS = "miss"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    Parameters mirror the paper's Table 1 (e.g. the shared L2 is 8 MB,
    16-way).  ``size_bytes`` must be a power-of-two multiple of
    ``ways * BLOCK_BYTES`` so the set count is a power of two.
    ``replacement`` selects the per-set policy (``lru``, ``fifo``, or
    ``random``); the paper's hierarchy uses LRU throughout.
    """

    size_bytes: int
    ways: int
    name: str = "cache"
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError(f"{self.name}: ways must be positive")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(
                f"{self.name}: unknown replacement "
                f"{self.replacement!r} (lru/fifo/random)"
            )
        if self.size_bytes < self.ways * BLOCK_BYTES:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} too small for "
                f"{self.ways} ways of {BLOCK_BYTES}-byte blocks"
            )
        if self.size_bytes % (self.ways * BLOCK_BYTES) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of ways * block size"
            )
        if not is_power_of_two(self.sets):
            raise ValueError(
                f"{self.name}: set count {self.sets} is not a power of two"
            )

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * BLOCK_BYTES)

    @property
    def blocks(self) -> int:
        """Total block capacity."""
        return self.size_bytes // BLOCK_BYTES


@dataclass
class Eviction:
    """A block pushed out of the cache by a fill."""

    block: int
    dirty: bool


@dataclass
class CacheStats:
    """Running counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A single set-associative, write-back, write-allocate cache.

    Each set is an :class:`~collections.OrderedDict` mapping tag to a dirty
    bit, kept in LRU order (last item = most recent).  This keeps the hot
    path — :meth:`access` — allocation-free and O(1) amortized, which
    matters because the simulator pushes every trace record through here.
    """

    def __init__(
        self,
        config: CacheConfig,
        rng: "object | None" = None,
    ) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.sets - 1
        self._lru = config.replacement == "lru"
        self._random = config.replacement == "random"
        if self._random:
            import numpy as np

            self._rng = rng if rng is not None else np.random.default_rng(0)
        # sets[i]: OrderedDict[tag] = dirty flag.  Iteration order is
        # recency (LRU) or insertion (FIFO), oldest first.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.sets)
        ]

    def lookup(self, block: int) -> bool:
        """Probe for ``block`` without updating recency or stats."""
        cache_set = self._sets[block & self._set_mask]
        return block in cache_set

    def access(self, block: int, write: bool = False) -> AccessResult:
        """Access ``block``; update recency and the dirty bit on a write.

        Misses do *not* allocate — callers decide whether and when to
        :meth:`fill`, because the fill may race with prefetches or be
        satisfied from a prefetch buffer instead.
        """
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            if self._lru:
                dirty = cache_set.pop(block)
                cache_set[block] = dirty or write
            elif write:
                cache_set[block] = True
            self.stats.hits += 1
            return AccessResult.HIT
        self.stats.misses += 1
        return AccessResult.MISS

    def fill(self, block: int, dirty: bool = False) -> Eviction | None:
        """Insert ``block``, returning the eviction it forced (if any)."""
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            # Refill of a resident block only merges the dirty bit.
            if self._lru:
                was_dirty = cache_set.pop(block)
                cache_set[block] = was_dirty or dirty
            elif dirty:
                cache_set[block] = True
            return None
        evicted: Eviction | None = None
        if len(cache_set) >= self.config.ways:
            evicted = self._evict(cache_set)
        cache_set[block] = dirty
        self.stats.fills += 1
        return evicted

    def _evict(self, cache_set: "OrderedDict[int, bool]") -> Eviction:
        """Choose and remove a victim per the configured policy."""
        if self._random:
            keys = list(cache_set.keys())
            victim_block = keys[int(self._rng.integers(0, len(keys)))]
            victim_dirty = cache_set.pop(victim_block)
        else:
            # LRU and FIFO both evict the oldest entry; they differ only
            # in whether hits refresh the order (see :meth:`access`).
            victim_block, victim_dirty = cache_set.popitem(last=False)
        self.stats.evictions += 1
        if victim_dirty:
            self.stats.dirty_evictions += 1
        return Eviction(block=victim_block, dirty=victim_dirty)

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if present; returns True if it was resident."""
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set:
            del cache_set[block]
            self.stats.invalidations += 1
            return True
        return False

    def peek_dirty(self, block: int) -> bool:
        """True when ``block`` is resident and dirty (no recency update)."""
        cache_set = self._sets[block & self._set_mask]
        return cache_set.get(block, False)

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (test/debug helper)."""
        blocks: list[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.keys())
        return blocks

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the counters (e.g. after cache warm-up)."""
        self.stats = CacheStats()


@dataclass
class VictimBuffer:
    """Tiny fully-associative victim store (FIFO), as beside the paper's L1s.

    Holds recently evicted L1 blocks so short-distance conflict misses are
    recovered without an L2 round trip.  Modeled functionally: a bounded
    FIFO of block numbers.
    """

    capacity: int
    _fifo: OrderedDict[int, bool] = field(default_factory=OrderedDict)
    hits: int = 0

    def insert(self, block: int, dirty: bool) -> Eviction | None:
        """Add an evicted block, possibly displacing the oldest entry."""
        if self.capacity <= 0:
            return Eviction(block=block, dirty=dirty) if dirty else None
        if block in self._fifo:
            self._fifo[block] = self._fifo[block] or dirty
            return None
        displaced: Eviction | None = None
        if len(self._fifo) >= self.capacity:
            old_block, old_dirty = self._fifo.popitem(last=False)
            displaced = Eviction(block=old_block, dirty=old_dirty)
        self._fifo[block] = dirty
        return displaced

    def extract(self, block: int) -> bool:
        """Remove and return True if ``block`` was held (a victim hit)."""
        if block in self._fifo:
            del self._fifo[block]
            self.hits += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._fifo)
