"""Miss-status holding registers (MSHRs).

An MSHR file bounds the number of distinct outstanding misses a cache level
may have in flight (the paper's L2 allows 64).  Secondary misses to a block
that already has an MSHR merge into it instead of allocating a new one —
this merging is what lets the timing model distinguish a *new* off-chip
access from piggybacking on one already in progress.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(slots=True)
class MshrEntry:
    """One outstanding miss: the block, when it resolves, and who waits."""

    block: int
    complete_at: float
    is_prefetch: bool = False
    waiters: int = 1


@dataclass(slots=True)
class MshrStats:
    """Counters for MSHR behaviour."""

    allocations: int = 0
    merges: int = 0
    stalls: int = 0
    peak_occupancy: int = 0


class MshrFile:
    """Bounded set of outstanding misses with secondary-miss merging."""

    __slots__ = ('capacity', 'stats', '_entries', '_min_complete', '_heap')

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"MSHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = MshrStats()
        self._entries: dict[int, MshrEntry] = {}
        # Completion-ordered heap of ``(complete_at, block)`` so the
        # per-miss retirement sweep pops exactly the finished entries
        # instead of scanning the whole file.  Entries removed outside
        # :meth:`retire_complete` (``release``) leave stale heap tuples
        # behind; they are skipped lazily.
        self._heap: "list[tuple[float, int]]" = []
        # Lower bound on the earliest outstanding completion, so the
        # per-miss retirement sweep can skip scanning when nothing can
        # have completed yet.  Exact tracking is not required: the bound
        # only ever errs on the side of scanning.
        self._min_complete = float("inf")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no further primary miss can be accepted."""
        return len(self._entries) >= self.capacity

    def outstanding(self, block: int) -> MshrEntry | None:
        """Return the in-flight entry for ``block`` if one exists."""
        return self._entries.get(block)

    def allocate(
        self, block: int, complete_at: float, is_prefetch: bool = False
    ) -> MshrEntry:
        """Allocate an entry for a primary miss.

        Raises ``RuntimeError`` when full; callers must check :attr:`full`
        (and model the stall) first.
        """
        if block in self._entries:
            raise ValueError(f"block {block} already has an MSHR")
        if self.full:
            self.stats.stalls += 1
            raise RuntimeError("MSHR file full")
        entry = MshrEntry(
            block=block, complete_at=complete_at, is_prefetch=is_prefetch
        )
        self._entries[block] = entry
        heapq.heappush(self._heap, (complete_at, block))
        if complete_at < self._min_complete:
            self._min_complete = complete_at
        self.stats.allocations += 1
        if len(self._entries) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._entries)
        return entry

    def merge(self, block: int) -> MshrEntry:
        """Attach a secondary miss to an existing entry."""
        entry = self._entries.get(block)
        if entry is None:
            raise KeyError(f"no outstanding MSHR for block {block}")
        entry.waiters += 1
        # A demand merge onto a prefetch converts it to demand urgency.
        self.stats.merges += 1
        return entry

    def retire_complete(self, now: float) -> list[MshrEntry]:
        """Remove and return every entry whose fill has arrived by ``now``."""
        if now < self._min_complete:
            return []
        done: list[MshrEntry] = []
        heap = self._heap
        entries = self._entries
        pop = heapq.heappop
        while heap and heap[0][0] <= now:
            complete_at, block = pop(heap)
            entry = entries.get(block)
            if entry is not None and entry.complete_at == complete_at:
                del entries[block]
                done.append(entry)
        self._min_complete = heap[0][0] if heap else float("inf")
        return done

    def release(self, block: int) -> None:
        """Explicitly free the entry for ``block``."""
        self._entries.pop(block, None)

    def earliest_completion(self) -> float | None:
        """Completion time of the soonest-finishing entry, if any."""
        entries = self._entries
        if not entries:
            return None
        heap = self._heap
        while heap:
            complete_at, block = heap[0]
            entry = entries.get(block)
            if entry is not None and entry.complete_at == complete_at:
                return complete_at
            heapq.heappop(heap)
        # Stale-only heap (possible after ``release``): fall back.
        return min(e.complete_at for e in entries.values())

    def clear(self) -> None:
        """Drop all outstanding entries (used between simulation phases)."""
        self._entries.clear()
        self._heap.clear()
        self._min_complete = float("inf")
