"""Physical-address and cache-block arithmetic.

All simulator components operate on *block numbers* (a physical address
divided by the 64-byte block size).  Traces store block numbers directly;
this module provides conversions and an :class:`AddressSpace` helper that
validates addresses and carves out aligned regions, which the STMS
meta-data allocator uses to reserve its main-memory tables.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cache block (line) size in bytes.  Fixed at 64 B to match the paper's
#: memory-interface width; the index-table bucket format depends on it.
BLOCK_BYTES = 64

#: log2(BLOCK_BYTES), used for shifting addresses to block numbers.
BLOCK_SHIFT = 6


def block_of(address: int) -> int:
    """Return the block number containing byte ``address``."""
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    return address >> BLOCK_SHIFT

def block_to_address(block: int) -> int:
    """Return the first byte address of block ``block``."""
    if block < 0:
        raise ValueError(f"block must be non-negative, got {block}")
    return block << BLOCK_SHIFT


def block_offset(address: int) -> int:
    """Return the byte offset of ``address`` within its block."""
    return address & (BLOCK_BYTES - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class Region:
    """A contiguous, block-aligned range of physical memory.

    Used to describe the private main-memory areas STMS reserves for its
    index table and history buffers.
    """

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(
                f"invalid region base={self.base} size={self.size}"
            )
        if block_offset(self.base) != 0:
            raise ValueError(f"region base {self.base:#x} not block aligned")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    @property
    def blocks(self) -> int:
        """Number of whole blocks the region spans."""
        return align_up(self.size, BLOCK_BYTES) // BLOCK_BYTES

    def contains(self, address: int) -> bool:
        """Return True if byte ``address`` falls inside the region."""
        return self.base <= address < self.end

    def block_at(self, index: int) -> int:
        """Return the block number of the ``index``-th block in the region."""
        if not 0 <= index < self.blocks:
            raise IndexError(f"block index {index} outside region")
        return block_of(self.base) + index


class AddressSpace:
    """Tracks the simulated machine's physical address space.

    The top of memory is reserved, region by region, for prefetcher
    meta-data (mirroring the "private region of main memory" of the paper);
    everything below remains application memory.
    """

    def __init__(self, total_bytes: int) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = align_down(total_bytes, BLOCK_BYTES)
        if self.total_bytes == 0:
            raise ValueError("total_bytes smaller than one block")
        self._reserved_base = self.total_bytes
        self._regions: list[Region] = []

    @property
    def regions(self) -> tuple[Region, ...]:
        """All reserved meta-data regions, in allocation order."""
        return tuple(self._regions)

    @property
    def application_bytes(self) -> int:
        """Bytes still available to the application."""
        return self._reserved_base

    def reserve(self, size: int) -> Region:
        """Carve ``size`` bytes (block-aligned) off the top of memory."""
        size = align_up(size, BLOCK_BYTES)
        if size > self._reserved_base:
            raise MemoryError(
                f"cannot reserve {size} bytes; "
                f"only {self._reserved_base} available"
            )
        self._reserved_base -= size
        region = Region(base=self._reserved_base, size=size)
        self._regions.append(region)
        return region

    def is_metadata_block(self, block: int) -> bool:
        """Return True if ``block`` lies inside any reserved region."""
        address = block_to_address(block)
        return address >= self._reserved_base
