"""Memory-hierarchy substrate: caches, MSHRs, DRAM, traffic, CMP wiring.

This subpackage implements the simulated machine the STMS prefetcher runs
on: set-associative caches with pluggable replacement, miss-status holding
registers, a bandwidth-regulated DRAM channel with two priority classes
(demand traffic beats meta-data traffic), per-category traffic accounting,
and the four-core CMP hierarchy of the paper's Table 1.
"""

from repro.memory.address import (
    BLOCK_BYTES,
    AddressSpace,
    block_of,
    block_to_address,
)
from repro.memory.cache import Cache, CacheConfig, AccessResult
from repro.memory.dram import DramChannel, DramConfig, Priority
from repro.memory.hierarchy import CmpConfig, CmpHierarchy, HierarchyEvent
from repro.memory.mshr import MshrFile
from repro.memory.replacement import (
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memory.traffic import TrafficCategory, TrafficMeter

__all__ = [
    "BLOCK_BYTES",
    "AddressSpace",
    "block_of",
    "block_to_address",
    "Cache",
    "CacheConfig",
    "AccessResult",
    "DramChannel",
    "DramConfig",
    "Priority",
    "CmpConfig",
    "CmpHierarchy",
    "HierarchyEvent",
    "MshrFile",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "TrafficCategory",
    "TrafficMeter",
]
