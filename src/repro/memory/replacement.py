"""Replacement policies for set-associative structures.

A policy instance manages *one* cache set (or hash bucket).  Policies track
way indices, not tags, so they compose with any lookup structure.

These classes are the *executable specification* of the replacement
behaviour: :class:`repro.memory.cache.Cache` implements the same
policies inline (an OrderedDict per set) for speed, and the property
tests cross-check the fast implementation against these reference
models.  They are also usable directly for experimenting with new
structures (e.g. alternative index-bucket aging)."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ReplacementPolicy(ABC):
    """Interface for a per-set replacement policy over ``ways`` slots."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def fill(self, way: int) -> None:
        """Record that ``way`` was (re)filled with a new line."""

    @abstractmethod
    def victim(self) -> int:
        """Return the way index to evict next."""

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range [0, {self.ways})")


class LruPolicy(ReplacementPolicy):
    """True least-recently-used ordering.

    Maintains an explicit recency list (most recent first).  The same
    structure orders entries inside an STMS index-table bucket, where the
    paper "reshuffles" elements to maintain LRU order before write-back.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Most-recently-used first.  Initially way 0 is MRU; the victim is
        # the tail, so untouched ways fill from the highest index down.
        self._order: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._order.remove(way)
        self._order.insert(0, way)

    def fill(self, way: int) -> None:
        self.touch(way)

    def victim(self) -> int:
        return self._order[-1]

    def recency_order(self) -> tuple[int, ...]:
        """Ways from most to least recently used (for bucket reshuffling)."""
        return tuple(self._order)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection from a seeded generator."""

    def __init__(self, ways: int, rng: np.random.Generator | None = None) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def touch(self, way: int) -> None:
        self._check_way(way)

    def fill(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return int(self._rng.integers(0, self.ways))


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest fill regardless of hits."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._queue: list[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._check_way(way)

    def fill(self, way: int) -> None:
        self._check_way(way)
        self._queue.remove(way)
        self._queue.insert(0, way)

    def victim(self) -> int:
        return self._queue[-1]


_POLICIES = {
    "lru": LruPolicy,
    "random": RandomPolicy,
    "fifo": FifoPolicy,
}


def make_policy(
    name: str, ways: int, rng: np.random.Generator | None = None
) -> ReplacementPolicy:
    """Construct a replacement policy by name (``lru``/``random``/``fifo``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(ways, rng=rng)
    return cls(ways)
