"""Four-core CMP memory hierarchy (paper Table 1).

Private per-core L1 data caches (with small victim buffers) in front of a
shared, inclusive L2.  The hierarchy is *functional*: it answers where an
access was satisfied and what it displaced; the simulation engine supplies
timing and decides how misses are filled (demand fetch, stride prefetcher,
or temporal-streaming prefetch buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.memory.address import BLOCK_BYTES
from repro.memory.cache import (
    AccessResult,
    Cache,
    CacheConfig,
    Eviction,
    TagArrayCache,
    VictimBuffer,
)
from repro.memory.traffic import TrafficCategory, TrafficMeter


class ServicePoint(Enum):
    """Where in the hierarchy a demand access was satisfied."""

    L1 = "l1"
    VICTIM = "victim"
    L2 = "l2"
    #: Not satisfied on chip: the engine must consult prefetchers / DRAM.
    OFF_CHIP = "off_chip"


@dataclass(frozen=True)
class CmpConfig:
    """Geometry of the chip multiprocessor (defaults = paper Table 1)."""

    cores: int = 4
    l1_size_bytes: int = 64 * 1024
    l1_ways: int = 2
    l1_victim_blocks: int = 8
    l2_size_bytes: int = 8 * 1024 * 1024
    l2_ways: int = 16
    l2_banks: int = 16
    l2_mshrs: int = 64
    l1_latency: float = 2.0
    l2_latency: float = 20.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.l2_banks <= 0:
            raise ValueError("l2_banks must be positive")

    def l1_config(self, core: int) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l1_size_bytes,
            ways=self.l1_ways,
            name=f"l1-core{core}",
        )

    def l2_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l2_size_bytes, ways=self.l2_ways, name="l2"
        )

    def scaled(self, factor: float) -> "CmpConfig":
        """Return a copy with cache capacities scaled by ``factor``.

        Scaling keeps associativity and shrinks/grows the set count to the
        nearest power of two, so miniature workloads exercise the same
        relative capacity pressure as the paper's full-size configuration.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")

        def scale_size(size: int, ways: int) -> int:
            target_sets = max(1, round(size * factor / (ways * BLOCK_BYTES)))
            # Snap to the nearest power of two.
            sets = 1 << max(0, (target_sets - 1).bit_length())
            if sets > 1 and sets - target_sets > target_sets - sets // 2:
                sets //= 2
            return sets * ways * BLOCK_BYTES

        return CmpConfig(
            cores=self.cores,
            l1_size_bytes=scale_size(self.l1_size_bytes, self.l1_ways),
            l1_ways=self.l1_ways,
            l1_victim_blocks=self.l1_victim_blocks,
            l2_size_bytes=scale_size(self.l2_size_bytes, self.l2_ways),
            l2_ways=self.l2_ways,
            l2_banks=self.l2_banks,
            l2_mshrs=self.l2_mshrs,
            l1_latency=self.l1_latency,
            l2_latency=self.l2_latency,
        )


@dataclass
class HierarchyEvent:
    """Result of one demand access through the on-chip hierarchy."""

    core: int
    block: int
    service: ServicePoint
    #: Dirty L2 victims that must be written back off chip.
    writebacks: list[Eviction] = field(default_factory=list)


class CmpHierarchy:
    """Functional model of the private-L1 / shared-L2 hierarchy."""

    __slots__ = ('config', 'traffic', 'l1s', 'victims', 'l2', '_l2_ways', 'off_chip_reads', 'demand_accesses', '_l1_copies', 'log_l1_invalidations', 'l1_invalidations')

    def __init__(
        self,
        config: CmpConfig | None = None,
        traffic: TrafficMeter | None = None,
        l1_kind: str = "dict",
    ) -> None:
        if l1_kind not in ("dict", "tag"):
            raise ValueError(f"unknown l1_kind {l1_kind!r} (dict/tag)")
        self.config = config if config is not None else CmpConfig()
        self.traffic = traffic if traffic is not None else TrafficMeter()
        self.traffic.ensure_cores(self.config.cores)
        l1_class = TagArrayCache if l1_kind == "tag" else Cache
        self.l1s = [
            l1_class(self.config.l1_config(core))
            for core in range(self.config.cores)
        ]
        self.victims = [
            VictimBuffer(capacity=self.config.l1_victim_blocks)
            for _ in range(self.config.cores)
        ]
        self.l2 = Cache(self.config.l2_config())
        self._l2_ways = self.config.l2_ways
        self.off_chip_reads = 0
        self.demand_accesses = 0
        #: block -> bitmask of cores whose L1 holds a copy.  The L1s are
        #: tiny next to the L2, so this map lets an inclusive L2 eviction
        #: skip the per-core probe loop in the common (no-copy) case.
        self._l1_copies: dict[int, int] = {}
        #: When enabled (the batched engine does), every inclusive-
        #: eviction L1 invalidation is appended as ``(core, block)`` so
        #: the engine can truncate classified runs it cut short.
        self.log_l1_invalidations = False
        self.l1_invalidations: "list[tuple[int, int]]" = []

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.config.cores:
            raise IndexError(
                f"core {core} out of range [0, {self.config.cores})"
            )

    def access(self, core: int, block: int, write: bool = False) -> HierarchyEvent:
        """Run one demand access as far as the on-chip hierarchy allows.

        Returns an event whose ``service`` is :data:`ServicePoint.OFF_CHIP`
        when neither L1, the victim buffer, nor L2 holds the block; the
        caller then resolves the miss (prefetch buffer or DRAM) and calls
        :meth:`fill_off_chip` to install the block.
        """
        self._check_core(core)
        self.demand_accesses += 1
        l1 = self.l1s[core]

        if l1.access(block, write=write) is AccessResult.HIT:
            return HierarchyEvent(core, block, ServicePoint.L1)

        if self.victims[core].extract(block):
            writebacks = self._fill_l1(core, block, dirty=write)
            return HierarchyEvent(
                core, block, ServicePoint.VICTIM, writebacks
            )

        if self.l2.access(block) is AccessResult.HIT:
            writebacks = self._fill_l1(core, block, dirty=write)
            return HierarchyEvent(core, block, ServicePoint.L2, writebacks)

        self.off_chip_reads += 1
        return HierarchyEvent(core, block, ServicePoint.OFF_CHIP)

    def fill_off_chip(
        self, core: int, block: int, dirty: bool = False
    ) -> list[Eviction]:
        """Install a block arriving from off chip into L2 and the L1."""
        self._check_core(core)
        writebacks: list[Eviction] = []
        self._l2_fill(block, False, writebacks, core)
        self._fill_l1_into(core, block, dirty, writebacks)
        return writebacks

    def _l2_fill(
        self,
        block: int,
        dirty: bool,
        writebacks: list[Eviction],
        core: int = 0,
    ) -> None:
        """L2 fill with inclusive-eviction handling.

        Equivalent to ``self.l2.fill(block, dirty)`` followed by
        :meth:`_handle_l2_eviction` on its victim, with the set-dict
        operations inlined — this runs for every off-chip fill and every
        dirty victim spill, so the per-call method/allocation overhead
        matters.  The L2 is always LRU (``CmpConfig`` exposes no policy
        knob).
        """
        l2 = self.l2
        cache_set = l2._sets[block & l2._set_mask]
        if block in cache_set:
            # Refill of a resident block merges dirty, refreshes LRU.
            was_dirty = cache_set.pop(block)
            cache_set[block] = was_dirty or dirty
            return
        victim_block = None
        if len(cache_set) >= self._l2_ways:
            victim_block = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_block)
            stats = l2.stats
            stats.evictions += 1
            if victim_dirty:
                stats.dirty_evictions += 1
        cache_set[block] = dirty
        l2.stats.fills += 1
        l2._version += 1
        if victim_block is not None:
            self._handle_l2_eviction(victim_block, victim_dirty,
                                     writebacks, core)

    def _fill_l1(self, core: int, block: int, dirty: bool) -> list[Eviction]:
        """Fill the core's L1, spilling its victim into the victim buffer."""
        writebacks: list[Eviction] = []
        self._fill_l1_into(core, block, dirty, writebacks)
        return writebacks

    def _fill_l1_into(
        self,
        core: int,
        block: int,
        dirty: bool,
        writebacks: list[Eviction],
    ) -> None:
        copies = self._l1_copies
        bit = 1 << core
        l1_victim = self.l1s[core].fill_pair(block, dirty)
        copies[block] = copies.get(block, 0) | bit
        if l1_victim is None:
            return
        victim_block, victim_dirty = l1_victim
        mask = copies.get(victim_block, 0) & ~bit
        if mask:
            copies[victim_block] = mask
        else:
            copies.pop(victim_block, None)
        # Inlined VictimBuffer.insert (FIFO over evicted L1 blocks).
        victim_buffer = self.victims[core]
        fifo = victim_buffer._fifo
        capacity = victim_buffer.capacity
        if capacity <= 0:
            if victim_dirty:
                self._l2_fill(victim_block, True, writebacks, core)
            return
        if victim_block in fifo:
            fifo[victim_block] = fifo[victim_block] or victim_dirty
            return
        if len(fifo) >= capacity:
            displaced_block = next(iter(fifo))
            displaced_dirty = fifo.pop(displaced_block)
            if displaced_dirty:
                # Dirty victim falls back to L2 (on-chip; no pin traffic).
                self._l2_fill(displaced_block, True, writebacks, core)
        fifo[victim_block] = victim_dirty

    def _handle_l2_eviction(
        self,
        block: int,
        dirty: bool,
        writebacks: list[Eviction],
        core: int = 0,
    ) -> None:
        """Invalidate inclusive L1 copies and charge write-back traffic.

        An inclusive eviction must not lose data: if any L1 holds the
        block dirty, that state merges into the outgoing line.  The
        write-back is attributed to ``core`` — the requesting core whose
        fill displaced the line.
        """
        mask = self._l1_copies.pop(block, 0)
        if mask:
            dirty = self._invalidate_copies(block, mask, dirty)
        if dirty:
            self.traffic.add_block(TrafficCategory.WRITEBACK, core)
            writebacks.append(Eviction(block=block, dirty=True))

    def _invalidate_copies(self, block: int, mask: int, dirty: bool) -> bool:
        """Invalidate every L1 copy in ``mask``; merge their dirty state."""
        for core in range(self.config.cores):
            if mask & (1 << core):
                if self.l1s[core].peek_dirty(block):
                    dirty = True
                self.l1s[core].invalidate(block)
                if self.log_l1_invalidations:
                    self.l1_invalidations.append((core, block))
        return dirty

    def l2_bank(self, block: int) -> int:
        """Bank index of ``block`` (interleaved at block granularity)."""
        return block % self.config.l2_banks

    def reset_stats(self) -> None:
        """Zero counters after warm-up while preserving cache contents."""
        for l1 in self.l1s:
            l1.reset_stats()
        self.l2.reset_stats()
        self.off_chip_reads = 0
        self.demand_accesses = 0
