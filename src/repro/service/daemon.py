"""The simulation service daemon: HTTP over asyncio, store-backed.

A deliberately minimal HTTP/1.1 layer (stdlib ``asyncio`` streams — no
new dependencies) in front of the shared artifact store:

* ``POST /submit`` — body is a job spec (see :func:`job_from_spec`).
  Warm requests answer straight from the store; cold ones are
  single-flighted: one in-process simulation per distinct recipe key
  feeds every waiting client, with a per-request timeout (waiters get
  ``202`` + ``timed_out`` and can poll) and bounded retry on worker
  failure.  ``"wait": false`` returns ``202`` immediately.
* ``POST /status`` (or ``GET /status/<key>``) — request state:
  ``done`` / ``running`` / ``failed`` / ``unknown``.
* ``POST /fetch`` (or ``GET /fetch/<key>``) — the raw persisted result
  record, byte-identical for every client because it is read straight
  from the store file the simulation wrote.
* ``GET /healthz``, ``GET /stats`` — liveness and counters.
* the whole **object protocol** (``GET/PUT/HEAD /trace/<digest>`` and
  ``/result/<digest>``, ``GET /schema`` — see
  :mod:`repro.service.objectstore`): every running simulation daemon
  advertises its store as a remote object-store peer, so a CI fleet
  can point ``REPRO_REMOTE_URL`` at it without running a second
  process.

Simulations run via :func:`asyncio.to_thread` (the session layer is
thread-safe), bounded by a semaphore; every request is appended to a
structured JSONL log beside the store, and per-endpoint latency /
hit-rate counters persist through the store's counter file (shown by
``repro cache stats``).  The HTTP plumbing itself is shared with the
object-store daemon (:mod:`repro.service.http`).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.service.http import (
    AsyncHttpServer,
    HttpError as _HttpError,
    serve_in_thread,
)
from repro.service.objectstore import ObjectProtocol, _max_body_bytes
from repro.service.singleflight import SingleFlight
from repro.sim.runner import (
    PrefetcherKind,
    SimJob,
    job_result_key,
    run_job,
)
from repro.sim.session import SimSession, _freeze
from repro.sim.store import (
    ArtifactStore,
    default_store_dir,
    key_digest,
    result_digest,
    trace_digest,
)
from repro.workloads.mix import is_mix
from repro.workloads.suite import SCALES, WORKLOADS

__all__ = [
    "DEFAULT_PORT",
    "RequestLog",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "job_from_spec",
    "serve_in_thread",
    "service_key",
]

DEFAULT_PORT = 8023
_REQUEST_LOG_FILE = "service-log.jsonl"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return default


@dataclass
class ServiceConfig:
    """Daemon knobs; every default is overridable via the environment."""

    host: str = "127.0.0.1"
    #: ``REPRO_SERVE_PORT``; 0 binds an ephemeral port (tests).
    port: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_PORT", DEFAULT_PORT)
    )
    store_dir: str = field(default_factory=default_store_dir)
    #: Default per-request wait bound (``REPRO_SERVE_TIMEOUT_S``); a
    #: submit body's ``timeout_s`` overrides it per request.
    timeout_s: float = field(
        default_factory=lambda: _env_float("REPRO_SERVE_TIMEOUT_S", 300.0)
    )
    #: Re-executions after a worker failure (``REPRO_SERVE_RETRIES``).
    retries: int = field(
        default_factory=lambda: _env_int("REPRO_SERVE_RETRIES", 1)
    )
    #: Concurrent simulations offloaded to threads
    #: (``REPRO_SERVE_WORKERS``).
    max_concurrent: int = field(
        default_factory=lambda: max(1, _env_int("REPRO_SERVE_WORKERS", 2))
    )
    #: Counter bumps folded per persistent counter write.
    counter_flush_every: int = 8


# ----------------------------------------------------------------------
# Job specs: the wire format of a sweep request.
# ----------------------------------------------------------------------

_OVERRIDE_FIELDS = (
    "stms_overrides",
    "factory_options",
    "cmp_overrides",
    "dram_overrides",
)


def job_from_spec(spec: dict) -> SimJob:
    """Build the :class:`SimJob` a request body describes.

    The spec mirrors ``SimJob``'s fields with JSON-friendly types:
    ``kind`` is the prefetcher value string, the four override tuples
    are plain objects.  Raises ``ValueError`` on anything malformed —
    the daemon maps that to a 400.
    """
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")
    workload = spec.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ValueError("job spec needs a 'workload' string")
    if workload not in WORKLOADS and not is_mix(workload):
        raise ValueError(f"unknown workload {workload!r}")
    scale = spec.get("scale", "bench")
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        )
    kind = PrefetcherKind(spec.get("kind", "stms"))
    overrides: dict[str, tuple] = {}
    for name in _OVERRIDE_FIELDS:
        raw = spec.get(name) or {}
        if not isinstance(raw, dict):
            raise ValueError(f"{name!r} must be a JSON object")
        overrides[name] = tuple(sorted(raw.items()))
    records = spec.get("records_per_core")
    return SimJob(
        workload=workload,
        kind=kind,
        scale=scale,
        cores=int(spec.get("cores", 4)),
        seed=int(spec.get("seed", 7)),
        records_per_core=None if records is None else int(records),
        use_stride=bool(spec.get("use_stride", True)),
        **overrides,
    )


def service_key(job: SimJob) -> str:
    """The request key: a digest of the job's full recipe.

    Computable *before* any trace exists (unlike the result key, which
    needs the trace fingerprint), so it is what the inflight table and
    the status endpoints are keyed by.  Distinct spellings of the same
    mix workload canonicalize to one key via ``trace_key()``.
    """
    return key_digest(
        "service-job",
        (
            job.trace_key(),
            job.kind.value,
            job.use_stride,
            _freeze(job.stms_overrides),
            _freeze(job.factory_options),
            _freeze(job.cmp_overrides),
            _freeze(job.dram_overrides),
        ),
    )


class ServiceError(Exception):
    """A request failed after exhausting its retry budget."""


# ----------------------------------------------------------------------
# Structured request log.
# ----------------------------------------------------------------------


class RequestLog:
    """Append-only JSONL log of served requests (one line each).

    Lives beside the store (``service-log.jsonl``) so the operational
    record travels with the data it describes.  Lines carry endpoint,
    key, outcome, and latency — the greppable complement of the
    aggregate counters in ``cache stats``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self._lock = threading.Lock()

    def record(self, **fields: object) -> None:
        line = json.dumps(
            {"ts": round(time.time(), 3), **fields}, sort_keys=True
        )
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line + "\n")
                self._handle.flush()
            except OSError:
                pass  # logging must never take a request down

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# The daemon.
# ----------------------------------------------------------------------


class ServiceDaemon(AsyncHttpServer):
    """Long-running simulation service over one shared artifact store.

    ``executor`` (default: :func:`repro.sim.runner.run_job` through the
    daemon's session) is the synchronous callable that computes a cold
    job; tests inject failing/slow ones to exercise retry and timeout.
    """

    #: Raised to the object daemon's bound: peers write whole trace
    #: archives back through the advertised object protocol.
    max_body_bytes = _max_body_bytes()

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        session: "SimSession | None" = None,
        executor=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        super().__init__(host=self.config.host, port=self.config.port)
        if session is None:
            session = SimSession(
                enabled=True,
                store=ArtifactStore(self.config.store_dir),
            )
        if session.store is None:
            raise ValueError(
                "the service needs a store-backed session: warm hits, "
                "write-back, and fetch all read through it"
            )
        self.session = session
        self.store: ArtifactStore = session.store
        self._execute = executor if executor is not None else (
            lambda job: run_job(job, self.session)
        )
        self.flights = SingleFlight()
        #: Request records by service key (in-memory view; the store
        #: holds the durable artifacts).
        self.requests: "dict[str, dict]" = {}
        self.counters = self.store.buffered_counters(
            self.config.counter_flush_every
        )
        #: Peer advertisement: the object protocol served over this
        #: daemon's store, tried before the service's own routes.
        self.objects = ObjectProtocol(
            self.store, self.config.counter_flush_every
        )
        self.log = RequestLog(
            os.path.join(self.store.root, _REQUEST_LOG_FILE)
        )
        self._sem = asyncio.Semaphore(self.config.max_concurrent)

    def on_stop(self) -> None:
        """Flush counters and the request log on shutdown."""
        self.counters.flush()
        self.objects.flush()
        self.log.close()

    def on_request(
        self, endpoint: str, status: int, latency_ms: float
    ) -> None:
        if endpoint not in ("submit", "status", "fetch"):
            return
        self.counters.bump_many({
            f"service_{endpoint}_requests": 1,
            f"service_{endpoint}_errors": 1 if status >= 400 else 0,
            f"service_{endpoint}_ms_total": max(1, round(latency_ms)),
        })
        self.log.record(
            endpoint=endpoint,
            status=status,
            latency_ms=round(latency_ms, 3),
        )

    # ------------------------------------------------------------------
    # Routing and endpoints.
    # ------------------------------------------------------------------

    async def handle(
        self, method: str, path: str, headers: "dict[str, str]",
        body: bytes,
    ) -> tuple:
        # Object-protocol peer advertisement first: /schema, /trace/*,
        # /result/* belong to the object store; everything else falls
        # through to the service routes below.
        response = self.objects.handle(method, path, headers, body)
        if response is not None:
            return response
        if method == "GET":
            if path == "/healthz":
                return 200, {"ok": True}
            if path == "/stats":
                return 200, self._stats_payload()
            if path.startswith("/status/"):
                return self._status_response(path[len("/status/"):])
            if path.startswith("/fetch/"):
                return self._fetch_response(path[len("/fetch/"):])
            raise _HttpError(404, f"no such endpoint {path!r}")
        if method != "POST":
            raise _HttpError(405, f"unsupported method {method}")
        try:
            spec = json.loads(body.decode("utf-8") or "{}")
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"bad JSON body: {error}") from None
        if path == "/submit":
            return await self._handle_submit(spec)
        if path == "/status":
            job = self._job_or_400(spec)
            return self._status_response(service_key(job), job)
        if path == "/fetch":
            job = self._job_or_400(spec)
            return self._fetch_response(service_key(job), job)
        raise _HttpError(404, f"no such endpoint {path!r}")

    @staticmethod
    def _job_or_400(spec: dict) -> SimJob:
        try:
            return job_from_spec(spec)
        except ValueError as error:
            raise _HttpError(400, str(error)) from None

    def _stats_payload(self) -> dict:
        persisted = self.store.counters()
        for name, delta in self.counters.pending().items():
            persisted[name] = persisted.get(name, 0) + delta
        states: "dict[str, int]" = {}
        for record in self.requests.values():
            states[record["state"]] = states.get(record["state"], 0) + 1
        return {
            "counters": persisted,
            "inflight": len(self.flights),
            "requests": states,
            "singleflight": {
                "launched": self.flights.launched,
                "coalesced": self.flights.coalesced,
            },
        }

    # -- submit ---------------------------------------------------------

    async def _handle_submit(self, spec: dict) -> "tuple[int, object]":
        job = self._job_or_400(spec)
        key = service_key(job)
        wait = bool(spec.get("wait", True))
        timeout = float(spec.get("timeout_s", self.config.timeout_s))
        digest = await asyncio.to_thread(self._probe_warm, job)
        if digest is not None:
            self.requests[key] = {
                "state": "done",
                "warm": True,
                "digest": digest,
                "attempts": 0,
            }
            self.counters.bump("service_warm_hits")
            return 200, {
                "key": key,
                "state": "done",
                "warm": True,
                "result": self._stored_record(digest),
            }
        self.counters.bump("service_cold_misses")
        coalesced = self.flights.inflight(key)
        flight = self.flights.submit(
            key, lambda: self._run_cold(key, job)
        )
        self.counters.bump(
            "service_single_flight_coalesced"
            if coalesced
            else "service_single_flight_launched"
        )
        if not wait:
            return 202, {"key": key, "state": "running"}
        try:
            digest = await self.flights.wait(flight, timeout)
        except asyncio.TimeoutError:
            self.counters.bump("service_timeouts")
            return 202, {"key": key, "state": "running", "timed_out": True}
        except ServiceError as error:
            return 500, {"key": key, "state": "failed", "error": str(error)}
        return 200, {
            "key": key,
            "state": "done",
            "warm": False,
            "result": self._stored_record(digest),
        }

    async def _run_cold(self, key: str, job: SimJob) -> str:
        """The single-flighted cold path: execute, retry, write back."""
        record = self.requests.setdefault(
            key, {"state": "running", "warm": False, "attempts": 0}
        )
        record["state"] = "running"
        last_error: "BaseException | None" = None
        for attempt in range(1, self.config.retries + 2):
            record["attempts"] = attempt
            if attempt > 1:
                self.counters.bump("service_retries")
            try:
                async with self._sem:
                    result = await asyncio.to_thread(self._execute, job)
            except Exception as error:  # noqa: BLE001 - retried/reported
                last_error = error
                self.counters.bump("service_worker_failures")
                continue
            digest = await asyncio.to_thread(
                self._write_back, job, result
            )
            record.update(state="done", digest=digest)
            self.counters.bump("service_simulations")
            return digest
        record.update(state="failed", error=str(last_error))
        raise ServiceError(
            f"job failed after {self.config.retries + 1} attempts: "
            f"{last_error}"
        )

    # -- store plumbing (runs in worker threads) ------------------------

    def _probe_warm(self, job: SimJob) -> "str | None":
        """Result digest when either cache tier already has the job."""
        trace_key = job.trace_key()
        trace = self.session.cached_trace(trace_key)
        if trace is None:
            trace = self.store.load_trace(trace_digest(trace_key))
            if trace is None:
                return None
            self.session.adopt_trace(trace_key, trace)
        result_key = job_result_key(job, trace)
        result = self.session.lookup_result(result_key)
        if result is None:
            return None
        digest = result_digest(result_key)
        if not os.path.exists(self.store.result_path(digest)):
            # Memory-tier-only hit: write back through so fetch (and
            # every other process) sees the persisted record.
            self.store.save_result(digest, result)
        return digest

    def _write_back(self, job: SimJob, result) -> str:
        """Persist a computed result; returns its store digest.

        ``run_job`` already wrote through the session's store; this
        covers injected executors and returns the digest either way.
        """
        trace = self.session.trace(
            job.workload,
            scale=job.scale,
            cores=job.cores,
            seed=job.seed,
            records_per_core=job.records_per_core,
        )
        result_key = job_result_key(job, trace)
        digest = result_digest(result_key)
        if not os.path.exists(self.store.result_path(digest)):
            self.store.save_result(digest, result)
        return digest

    def _stored_record(self, digest: str) -> "dict | None":
        """The persisted result record, parsed from the store file.

        Every client of one digest reads the same bytes, so responses
        embedding this record are identical across waiters.
        """
        try:
            with open(self.store.result_path(digest), "rb") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- status / fetch -------------------------------------------------

    def _status_response(
        self, key: str, job: "SimJob | None" = None
    ) -> "tuple[int, object]":
        record = self.requests.get(key)
        if record is not None:
            payload = {
                "key": key,
                "state": record["state"],
                "attempts": record.get("attempts", 0),
                "warm": record.get("warm", False),
            }
            if "error" in record:
                payload["error"] = record["error"]
            return 200, payload
        if job is not None:
            digest = self._probe_warm(job)
            if digest is not None:
                return 200, {"key": key, "state": "done", "warm": True}
        return 200, {"key": key, "state": "unknown"}

    def _fetch_response(
        self, key: str, job: "SimJob | None" = None
    ) -> "tuple[int, object]":
        record = self.requests.get(key)
        digest = record.get("digest") if record else None
        if digest is None and job is not None:
            digest = self._probe_warm(job)
        if digest is None:
            raise _HttpError(404, f"no result for key {key!r}")
        try:
            with open(self.store.result_path(digest), "rb") as handle:
                return 200, handle.read()
        except OSError:
            raise _HttpError(
                404, f"result for {key!r} evicted from the store"
            ) from None
