"""The object-store daemon: serve an artifact store to remote peers.

``repro store serve`` runs this over any store directory, turning a
per-machine cache into the fleet's shared warm tier.  The protocol is
the minimal one :class:`repro.sim.remote.RemoteStore` speaks:

* ``GET /schema`` — the store's format stamp; clients verify it before
  trusting any byte (mismatch = they treat this peer as cold).
* ``GET/PUT/HEAD /trace/<digest>`` and ``/result/<digest>`` — raw
  artifact bytes.  Responses and uploads carry an
  ``X-Repro-Payload-Digest`` header; a PUT whose body does not match
  its digest header is rejected (400) before touching disk, and
  accepted uploads land via the store's atomic temp-file + rename, so
  two hosts writing back the same digest race to a byte-identical
  last-writer-wins, never a torn file.
* ``GET /healthz``, ``GET /stats`` — liveness and persisted counters.

:class:`ObjectProtocol` holds the store-backed handlers; the
simulation service daemon (:mod:`repro.service.daemon`) routes the
same handlers, so every running ``repro serve`` instance doubles as a
remote object-store peer.
"""

from __future__ import annotations

import os
import re

from repro.service.http import AsyncHttpServer, HttpError
from repro.sim.remote import DIGEST_HEADER, SCHEMA_HEADER, payload_digest
from repro.sim.store import SCHEMA_VERSION, ArtifactStore

#: Object keys are the store's hex digests; anything else is rejected
#: before it can reach the filesystem layer.
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,64}$")
_KINDS = ("trace", "result")

#: Trace archives dwarf job specs; the object daemon accepts payloads
#: up to this size (``REPRO_STORE_SERVE_MAX_MB`` overrides).
_DEFAULT_MAX_BODY_MB = 256


def _max_body_bytes() -> int:
    raw = os.environ.get("REPRO_STORE_SERVE_MAX_MB")
    if raw:
        try:
            return int(float(raw) * 1024 * 1024)
        except ValueError:
            pass
    return _DEFAULT_MAX_BODY_MB * 1024 * 1024


class ObjectProtocol:
    """Store-backed handlers for the minimal object protocol.

    ``handle`` returns ``None`` for paths outside the protocol, so a
    host daemon can try these routes first and fall through to its own.
    Counters are buffered against the store's persistent counter file
    (``store_serve_*``), visible in ``repro cache stats``.
    """

    def __init__(self, store: ArtifactStore, counter_flush_every: int = 8):
        self.store = store
        self.counters = store.buffered_counters(counter_flush_every)

    def _object_path(self, kind: str, digest: str) -> str:
        if not _DIGEST_RE.match(digest):
            raise HttpError(400, f"malformed object digest {digest!r}")
        if kind == "trace":
            return self.store.trace_path(digest)
        return self.store.result_path(digest)

    def handle(
        self, method: str, path: str, headers: "dict[str, str]",
        body: bytes,
    ) -> "tuple | None":
        if path == "/schema":
            if method != "GET":
                raise HttpError(405, "schema is read-only")
            self.counters.bump("store_serve_schema_requests")
            return 200, {"schema": SCHEMA_VERSION}, {
                SCHEMA_HEADER: str(SCHEMA_VERSION)
            }
        parts = path.lstrip("/").split("/")
        if len(parts) != 2 or parts[0] not in _KINDS:
            return None
        kind, digest = parts
        target = self._object_path(kind, digest)
        if method == "GET":
            return self._get(target)
        if method == "HEAD":
            return self._head(target)
        if method == "PUT":
            return self._put(target, headers, body)
        raise HttpError(405, f"unsupported method {method} for objects")

    # ------------------------------------------------------------------

    def _get(self, target: str) -> tuple:
        try:
            with open(target, "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            self.counters.bump("store_serve_misses")
            raise HttpError(404, "no such object") from None
        except OSError as error:
            raise HttpError(500, f"object unreadable: {error}") from None
        # Serving refreshes recency, exactly like a local read: the
        # fleet's hot entries must not be the LRU victims.
        self.store._touch(target)
        self.counters.bump("store_serve_gets")
        return 200, payload, {
            DIGEST_HEADER: payload_digest(payload),
            SCHEMA_HEADER: str(SCHEMA_VERSION),
        }

    def _head(self, target: str) -> tuple:
        self.counters.bump("store_serve_heads")
        if not os.path.exists(target):
            return 404, b"", {SCHEMA_HEADER: str(SCHEMA_VERSION)}
        return 200, b"", {SCHEMA_HEADER: str(SCHEMA_VERSION)}

    def _put(
        self, target: str, headers: "dict[str, str]", body: bytes
    ) -> tuple:
        expected = headers.get(DIGEST_HEADER.lower())
        if expected is not None and payload_digest(body) != expected:
            # Truncated or corrupted upload: reject before it can
            # shadow a good entry on disk.
            self.counters.bump("store_serve_bad_digests")
            raise HttpError(400, "payload does not match its digest header")
        try:
            ArtifactStore._atomic_write_bytes(target, body)
        except OSError as error:
            raise HttpError(500, f"object unwritable: {error}") from None
        self.store._auto_gc(target)
        self.counters.bump("store_serve_puts")
        return 200, {"stored": True, "bytes": len(body)}, {
            DIGEST_HEADER: payload_digest(body),
        }

    def flush(self) -> None:
        self.counters.flush()


class ObjectStoreDaemon(AsyncHttpServer):
    """``repro store serve``: the object protocol over one store."""

    max_body_bytes = _max_body_bytes()

    def __init__(
        self,
        store: "ArtifactStore | str",
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: "int | None" = None,
    ) -> None:
        super().__init__(host=host, port=port)
        if isinstance(store, str):
            # A served store is the fleet's remote; it must never chase
            # another remote itself (REPRO_REMOTE_URL would self-loop).
            store = ArtifactStore(store, remote=None)
        self.store = store
        self.objects = ObjectProtocol(store)
        if max_body_bytes is not None:
            self.max_body_bytes = max_body_bytes

    async def handle(
        self, method: str, path: str, headers: "dict[str, str]",
        body: bytes,
    ) -> tuple:
        response = self.objects.handle(method, path, headers, body)
        if response is not None:
            return response
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "store": self.store.root}
        if method == "GET" and path == "/stats":
            persisted = self.store.counters()
            for name, delta in self.objects.counters.pending().items():
                persisted[name] = persisted.get(name, 0) + delta
            return 200, {
                "counters": persisted,
                "schema": SCHEMA_VERSION,
                "store": self.store.root,
            }
        raise HttpError(404, f"no such endpoint {path!r}")

    def on_stop(self) -> None:
        self.objects.flush()
