"""Synchronous stdlib client for the simulation service daemon.

One class wrapping ``http.client`` — no third-party HTTP stack — used
by the ``repro client`` CLI group, the service tests (which hammer one
daemon from several threads to exercise single-flight), and anything
else that wants warm results from a shared store over the wire.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from urllib.parse import urlsplit

from repro.service.daemon import DEFAULT_PORT


def default_service_url() -> str:
    """``$REPRO_SERVE_URL``, else localhost on the default port."""
    env = os.environ.get("REPRO_SERVE_URL")
    if env:
        return env
    port = os.environ.get("REPRO_SERVE_PORT", str(DEFAULT_PORT))
    return f"http://127.0.0.1:{port}"


class ServiceError(RuntimeError):
    """A non-2xx response (or an unreachable daemon)."""

    def __init__(self, message: str, status: "int | None" = None,
                 payload: "dict | None" = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


def job_spec(
    workload: str,
    kind: str = "stms",
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
    use_stride: bool = True,
    stms_overrides: "dict | None" = None,
    factory_options: "dict | None" = None,
    cmp_overrides: "dict | None" = None,
    dram_overrides: "dict | None" = None,
) -> dict:
    """A submit/status/fetch request body (the daemon's wire format)."""
    return {
        "workload": workload,
        "kind": kind,
        "scale": scale,
        "cores": cores,
        "seed": seed,
        "records_per_core": records_per_core,
        "use_stride": use_stride,
        "stms_overrides": stms_overrides or {},
        "factory_options": factory_options or {},
        "cmp_overrides": cmp_overrides or {},
        "dram_overrides": dram_overrides or {},
    }


class ServiceClient:
    """Talk to one daemon; every call is one short-lived connection."""

    def __init__(
        self,
        url: "str | None" = None,
        timeout: "float | None" = None,
    ) -> None:
        self.url = url or default_service_url()
        split = urlsplit(self.url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported service URL {self.url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or DEFAULT_PORT
        #: Socket timeout; waits for long cold simulations ride on top
        #: of the daemon-side request timeout, so default to blocking.
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        timeout: "float | None" = None,
    ) -> "tuple[int, object]":
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except OSError as error:
            raise ServiceError(
                f"service at {self.url} unreachable: {error}"
            ) from error
        finally:
            connection.close()
        try:
            parsed: object = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            parsed = raw
        return response.status, parsed

    @staticmethod
    def _checked(status: int, parsed: object) -> dict:
        payload = parsed if isinstance(parsed, dict) else {}
        if status >= 400:
            raise ServiceError(
                payload.get("error", f"HTTP {status}"),
                status=status,
                payload=payload,
            )
        return payload

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def health(self) -> bool:
        try:
            status, _ = self._request("GET", "/healthz", timeout=5.0)
        except ServiceError:
            return False
        return status == 200

    def wait_until_ready(self, deadline_s: float = 15.0) -> bool:
        """Poll ``/healthz`` until the daemon answers (or time runs out)."""
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if self.health():
                return True
            time.sleep(0.05)
        return False

    def stats(self) -> dict:
        return self._checked(*self._request("GET", "/stats"))

    def submit(
        self,
        spec: dict,
        wait: bool = True,
        timeout_s: "float | None" = None,
    ) -> dict:
        """Submit a job spec; blocks for the result when ``wait``.

        Returns the daemon's response payload: ``state`` is ``done``
        (with the stored ``result`` record inline), ``running`` (not
        waited, or timed out server-side — poll :meth:`status`), or a
        :class:`ServiceError` is raised on failure.
        """
        body = dict(spec)
        body["wait"] = wait
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._checked(*self._request("POST", "/submit", body))

    def status(self, spec: dict) -> dict:
        return self._checked(*self._request("POST", "/status", spec))

    def fetch(self, spec: dict) -> dict:
        """The persisted result record for a spec (404 -> ServiceError)."""
        status, parsed = self._request("POST", "/fetch", spec)
        if status >= 400:
            self._checked(status, parsed)
        if not isinstance(parsed, dict):
            raise ServiceError("fetch returned a non-JSON record")
        return parsed

    def fetch_bytes(self, spec: dict) -> bytes:
        """Raw stored record bytes (bit-identical across clients)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                "/fetch",
                body=json.dumps(spec).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
        except OSError as error:
            raise ServiceError(
                f"service at {self.url} unreachable: {error}"
            ) from error
        finally:
            connection.close()
        if response.status >= 400:
            try:
                payload = json.loads(raw.decode())
            except ValueError:
                payload = {}
            raise ServiceError(
                payload.get("error", f"HTTP {response.status}"),
                status=response.status,
                payload=payload,
            )
        return raw
