"""Simulation-as-a-service: a long-running daemon over the shared store.

The artifact store (:mod:`repro.sim.store`) stops being a private cache
here and becomes the backing tier of a service: a stdlib-``asyncio``
HTTP daemon (:mod:`repro.service.daemon`) accepts sweep requests keyed
by the existing recipe keys, serves warm ones straight from the store,
and **single-flights** cold ones (:mod:`repro.service.singleflight`) —
one in-process simulation per distinct recipe key feeds every waiting
client, with a per-request timeout and bounded retry on worker failure.
Completed results write back through the store, so the next client (or
the next CI job, or a plain ``repro run``) is warm.

:mod:`repro.service.client` is the matching stdlib-only synchronous
client, used by the ``repro client`` CLI group and the tests.

:mod:`repro.service.objectstore` serves the store itself to remote
peers (``repro store serve``): the minimal ``GET/PUT/HEAD`` object
protocol that :class:`repro.sim.remote.RemoteStore` read-throughs and
write-backs against, sharing the daemon's asyncio HTTP plumbing
(:mod:`repro.service.http`).  The simulation daemon advertises the
same protocol, so one ``repro serve`` is both a compute service and a
warm-tier peer.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    ServiceConfig,
    ServiceDaemon,
    job_from_spec,
    serve_in_thread,
    service_key,
)
from repro.service.http import AsyncHttpServer, HttpError
from repro.service.objectstore import ObjectProtocol, ObjectStoreDaemon
from repro.service.singleflight import SingleFlight

__all__ = [
    "AsyncHttpServer",
    "HttpError",
    "ObjectProtocol",
    "ObjectStoreDaemon",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "SingleFlight",
    "job_from_spec",
    "serve_in_thread",
    "service_key",
]
