"""Simulation-as-a-service: a long-running daemon over the shared store.

The artifact store (:mod:`repro.sim.store`) stops being a private cache
here and becomes the backing tier of a service: a stdlib-``asyncio``
HTTP daemon (:mod:`repro.service.daemon`) accepts sweep requests keyed
by the existing recipe keys, serves warm ones straight from the store,
and **single-flights** cold ones (:mod:`repro.service.singleflight`) —
one in-process simulation per distinct recipe key feeds every waiting
client, with a per-request timeout and bounded retry on worker failure.
Completed results write back through the store, so the next client (or
the next CI job, or a plain ``repro run``) is warm.

:mod:`repro.service.client` is the matching stdlib-only synchronous
client, used by the ``repro client`` CLI group and the tests.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    ServiceConfig,
    ServiceDaemon,
    job_from_spec,
    serve_in_thread,
    service_key,
)
from repro.service.singleflight import SingleFlight

__all__ = [
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "SingleFlight",
    "job_from_spec",
    "serve_in_thread",
    "service_key",
]
