"""Shared asyncio HTTP/1.1 plumbing for the repro daemons.

Two daemons speak HTTP in this repo — the simulation service
(:mod:`repro.service.daemon`) and the object-store peer
(:mod:`repro.service.objectstore`) — and both are deliberately
stdlib-only.  This module holds the plumbing they share: request
parsing (with headers, which the object protocol needs for payload
digests), response rendering, the per-connection error envelope, and
the background-thread hosting helper the tests and CLI use.

:class:`AsyncHttpServer` is the base: subclasses implement
``handle(method, path, headers, body)`` and may override
``on_request`` for accounting and ``max_body_bytes`` for upload-heavy
protocols (trace archives are far larger than job specs).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Raise inside a handler to answer with a specific status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(
    reader, max_body_bytes: int
) -> "tuple[str, str, dict[str, str], bytes]":
    """Parse one request: (method, path, lowercase headers, body)."""
    request_line = (await reader.readline()).decode("ascii").strip()
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, path = parts[0].upper(), parts[1]
    headers: "dict[str, str]" = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("ascii").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > max_body_bytes:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def render_response(
    status: int,
    payload,
    extra_headers: "dict[str, str] | None" = None,
) -> bytes:
    """Serialize one response; dict payloads become JSON, bytes pass raw."""
    import json

    if isinstance(payload, bytes):
        body = payload
        content_type = "application/octet-stream"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        content_type = "application/json"
    reason = _REASONS.get(status, "OK")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class AsyncHttpServer:
    """Minimal asyncio HTTP server; subclasses implement ``handle``.

    ``handle`` returns ``(status, payload)`` or ``(status, payload,
    extra_headers)``; payloads that are ``bytes`` are sent raw (the
    object protocol), anything else is JSON-encoded.  Exceptions map to
    the usual envelope: :class:`HttpError` keeps its status, parse
    failures are 400s, anything else is a 500 — a handler bug must
    never take the daemon down.
    """

    #: Reject request bodies past this size; upload-heavy subclasses
    #: (the object store accepts whole trace archives) raise it.
    max_body_bytes: int = 1 << 20
    read_timeout_s: float = 30.0

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.configured_port = port
        self.port: "int | None" = None
        self._server: "asyncio.base_events.Server | None" = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Bind and start serving; returns (host, actual port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.configured_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.on_stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port or self.configured_port}"

    # ------------------------------------------------------------------
    # Hooks.
    # ------------------------------------------------------------------

    async def handle(
        self, method: str, path: str, headers: "dict[str, str]",
        body: bytes,
    ) -> tuple:
        raise NotImplementedError

    def on_request(
        self, endpoint: str, status: int, latency_ms: float
    ) -> None:
        """Per-request accounting hook (default: none)."""

    def on_stop(self) -> None:
        """Shutdown hook (flush counters, close logs...)."""

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        started = time.perf_counter()
        endpoint = "?"
        try:
            extra_headers: "dict[str, str] | None" = None
            try:
                method, path, headers, body = await asyncio.wait_for(
                    read_request(reader, self.max_body_bytes),
                    self.read_timeout_s,
                )
                endpoint = path.split("/", 2)[1] or "/"
                response = await self.handle(method, path, headers, body)
                if len(response) == 3:
                    status, payload, extra_headers = response
                else:
                    status, payload = response
            except HttpError as error:
                status, payload = error.status, {"error": str(error)}
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                UnicodeDecodeError,
                ValueError,
            ) as error:
                status, payload = 400, {"error": str(error) or "bad request"}
            except Exception as error:  # noqa: BLE001 - last-resort 500
                status, payload = 500, {
                    "error": f"{type(error).__name__}: {error}"
                }
            latency_ms = (time.perf_counter() - started) * 1000.0
            self.on_request(endpoint, status, latency_ms)
            writer.write(render_response(status, payload, extra_headers))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


@contextlib.contextmanager
def serve_in_thread(daemon, ready_timeout: float = 10.0):
    """Run a daemon's event loop in a background thread; yields it.

    Works for any object with async ``start``/``stop`` (both repro
    daemons).  The daemon is started before the body runs and stopped
    (counters flushed, logs closed, loop torn down) when the block
    exits — the in-process analogue of ``repro serve`` + SIGINT.
    """
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    failure: "list[BaseException]" = []

    def _host() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as error:  # noqa: BLE001 - reported below
            failure.append(error)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(daemon.stop())
            loop.close()

    thread = threading.Thread(target=_host, name="repro-http", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("daemon failed to start in time")
    if failure:
        thread.join(ready_timeout)
        raise failure[0]
    try:
        yield daemon
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(ready_timeout)
