"""Single-flight coalescing: one computation per key, many waiters.

The service daemon's cold path is the textbook single-flight shape
(popularized by groupcache): when N clients concurrently request the
same not-yet-cached recipe key, exactly one computation runs and its
outcome feeds every waiter.  This module implements the inflight table
for one asyncio event loop — the daemon composes it with a per-request
timeout (waiters abandon the flight without cancelling it) and bounded
retry (inside the supplier), and the store provides cross-process
persistence of the outcome.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable


class Flight:
    """One in-progress computation: the shared outcome + its waiters."""

    __slots__ = ("key", "outcome", "task", "waiters")

    def __init__(self, key: object, outcome: "asyncio.Future") -> None:
        self.key = key
        #: Resolves to ``("ok", result)`` or ``("err", exception)`` —
        #: never to a raised exception, so an abandoned flight (every
        #: waiter timed out) cannot trigger the event loop's
        #: "exception was never retrieved" diagnostics.
        self.outcome = outcome
        self.task: "asyncio.Task | None" = None
        self.waiters = 0


class SingleFlight:
    """Deduplicate concurrent async computations by key.

    The first :meth:`submit` for a key launches the supplier as a task;
    every concurrent submit for the same key joins the existing flight.
    The table entry is removed the moment the flight settles, so a
    *later* request for a failed key launches a fresh computation
    (retry-on-next-request), while a successful one is expected to be
    served by the caller's cache tier before it ever reaches here.
    """

    def __init__(self) -> None:
        self._flights: "dict[object, Flight]" = {}
        #: Computations actually started (cold, first-in).
        self.launched = 0
        #: Requests that joined an already-inflight computation.
        self.coalesced = 0

    def inflight(self, key: object) -> bool:
        return key in self._flights

    def __len__(self) -> int:
        return len(self._flights)

    def submit(
        self,
        key: object,
        supplier: "Callable[[], Awaitable[object]]",
    ) -> Flight:
        """Join (or launch) the flight for ``key``; never blocks.

        ``supplier`` is only invoked for the launching caller — joiners
        share the launcher's outcome future.
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.coalesced += 1
            return flight
        self.launched += 1
        loop = asyncio.get_running_loop()
        flight = Flight(key, loop.create_future())
        self._flights[key] = flight
        flight.task = loop.create_task(self._drive(flight, supplier))
        return flight

    async def _drive(
        self,
        flight: Flight,
        supplier: "Callable[[], Awaitable[object]]",
    ) -> None:
        try:
            outcome = ("ok", await supplier())
        except asyncio.CancelledError:
            outcome = ("err", asyncio.CancelledError("flight cancelled"))
        except BaseException as error:  # noqa: BLE001 - fed to waiters
            outcome = ("err", error)
        finally:
            self._flights.pop(flight.key, None)
        if not flight.outcome.cancelled():
            flight.outcome.set_result(outcome)

    async def wait(
        self, flight: Flight, timeout: "float | None" = None
    ) -> object:
        """Await a flight's outcome; re-raises the supplier's failure.

        A timeout abandons *this waiter only*: the computation keeps
        running for everyone else (and for the cache write-back), which
        is exactly what a per-request service timeout needs.  Raises
        :class:`asyncio.TimeoutError` in that case.
        """
        flight.waiters += 1
        try:
            kind, value = await asyncio.wait_for(
                asyncio.shield(flight.outcome), timeout
            )
        finally:
            flight.waiters -= 1
        if kind == "err":
            raise value  # type: ignore[misc]
        return value
