"""Trace-driven CMP simulator with limited-overlap timing.

Each core replays its trace on a local clock; a heap interleaves cores in
global time order so the shared L2, MSHRs, and DRAM channel observe a
consistent schedule.  Per record:

1. the core spends its compute cycles (``work``),
2. the access walks L1 -> victim buffer -> L2,
3. an off-chip read consults the stride prefetcher's buffer, then the
   temporal prefetcher's buffer, then issues a demand fetch;
4. dependent misses stall the core until data arrives, independent ones
   overlap — memory-level parallelism emerges from the trace's
   dependence structure, bounded by the shared L2 MSHR file.

A warm-up phase (sized by the trace) runs first with full state effects
but no accounting, mirroring the paper's warmed-checkpoint methodology;
statistics are reset at the measurement boundary.

Placement note: the paper probes the prefetch buffer at L1-miss time;
for accounting clarity we probe it after the L2 lookup.  Because the
residency filter prevents prefetching L2-resident blocks, the two
orderings see the same events.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.memory.dram import DramChannel, DramConfig, Priority
from repro.memory.hierarchy import CmpConfig, CmpHierarchy, ServicePoint
from repro.memory.mshr import MshrFile
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.base import PrefetcherStats, TemporalPrefetcher
from repro.prefetchers.stride import StridePrefetcher, StrideStats
from repro.sim.metrics import CoverageCounts, MlpTracker, SimResult
from repro.sim.timing import TimingModel, demand_priority
from repro.workloads.trace import Trace

#: Builds the temporal prefetcher under test.  Receives the core count,
#: the shared DRAM channel and traffic meter, and the residency filter.
TemporalFactory = Callable[
    [int, DramChannel, TrafficMeter, Callable[[int], bool]],
    TemporalPrefetcher,
]


@dataclass(frozen=True)
class SimConfig:
    """Machine configuration for one simulation."""

    cmp: CmpConfig = field(default_factory=CmpConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    timing: TimingModel = field(default_factory=TimingModel)
    #: Include the base system's stride prefetcher (paper baseline does).
    use_stride: bool = True
    #: Track per-core MLP of uncovered off-chip reads (Table 2).
    track_mlp: bool = True
    #: Collect the per-core off-chip read-miss address sequence during
    #: the measured phase (offline temporal-stream analysis, Fig. 6).
    collect_miss_log: bool = False
    #: Execution engine: ``"batch"`` (vectorized segment classification,
    #: the default), ``"scalar"`` (the reference implementation), or
    #: ``"auto"`` (the ``REPRO_SIM_ENGINE`` environment variable, then
    #: ``"batch"``).  Both engines produce identical results; the
    #: equivalence is enforced by ``tests/sim/test_engine_equivalence``.
    engine: str = "auto"


def resolve_engine(engine: str) -> str:
    """Map an engine request to a concrete engine name."""
    if engine == "auto":
        engine = os.environ.get("REPRO_SIM_ENGINE", "batch")
        if engine == "auto":
            engine = "batch"
    if engine not in ("batch", "batch-tag", "scalar"):
        raise ValueError(
            f"unknown engine {engine!r} (batch/batch-tag/scalar/auto)"
        )
    return engine


class Simulator:
    """Runs traces against a machine configuration."""

    def __init__(self, config: "SimConfig | None" = None) -> None:
        self.config = config if config is not None else SimConfig()

    def run(
        self,
        trace: Trace,
        temporal_factory: "TemporalFactory | None" = None,
        label: str = "baseline",
        shared: "object | None" = None,
    ) -> SimResult:
        """Simulate ``trace``, optionally with a temporal prefetcher.

        ``shared`` is a sweep invocation's precomputation handle (see
        :class:`repro.sim.sweep.SweepShared`): the batched engines pull
        grid-shared metadata classifications from it instead of
        re-deriving them per cell.  It is a pure compute shortcut —
        results are bit-identical with or without it — and the scalar
        reference engine ignores it.
        """
        if trace.cores > self.config.cmp.cores:
            raise ValueError(
                f"trace has {trace.cores} cores but the machine only "
                f"{self.config.cmp.cores}"
            )
        engine = resolve_engine(self.config.engine)
        if engine == "scalar":
            state = _RunState(self.config, trace, temporal_factory)
        else:
            from repro.sim.batch import BatchRunState, TagBatchRunState

            state_class = (
                TagBatchRunState if engine == "batch-tag" else BatchRunState
            )
            state = state_class(
                self.config, trace, temporal_factory, shared=shared
            )
        state.run_warmup()
        state.reset_accounting()
        state.run_measured()
        return state.result(label)


class _RunState:
    """All mutable state of one simulation run (the scalar reference)."""

    #: L1 model the hierarchy is built with ("dict" = scalar reference;
    #: the batched engine overrides this with the NumPy tag arrays).
    L1_KIND = "dict"

    __slots__ = ('config', 'trace', 'traffic', 'hierarchy', 'dram', 'mshrs', 'stride', 'temporal', 'coverage', 'core_coverage', 'mlp', 'miss_log', 'outstanding', 'clocks', 'cursors', 'measure_start', 'measure_cursor', 'measured_records', 'measuring', 'demand_priority')

    def __init__(
        self,
        config: SimConfig,
        trace: Trace,
        temporal_factory: "TemporalFactory | None",
    ) -> None:
        self.config = config
        self.trace = trace
        self.traffic = TrafficMeter(cores=max(1, trace.cores))
        self.hierarchy = CmpHierarchy(
            config.cmp, self.traffic, l1_kind=self.L1_KIND
        )
        self.dram = DramChannel(config.dram)
        self.mshrs = MshrFile(config.cmp.l2_mshrs)
        self.stride: Optional[StridePrefetcher] = (
            StridePrefetcher(trace.cores, self.dram)
            if config.use_stride
            else None
        )
        self.temporal: Optional[TemporalPrefetcher] = None
        if temporal_factory is not None:
            self.temporal = temporal_factory(
                trace.cores,
                self.dram,
                self.traffic,
                self.hierarchy.l2.lookup,
            )
        self.coverage = CoverageCounts()
        #: Per-core coverage tallies (mix-aware breakdowns); the
        #: aggregate above stays authoritative for the headline metric.
        self.core_coverage = [CoverageCounts() for _ in range(trace.cores)]
        self.mlp = MlpTracker(trace.cores) if config.track_mlp else None
        self.miss_log: "list[list[int]] | None" = (
            [[] for _ in range(trace.cores)]
            if config.collect_miss_log
            else None
        )
        #: Completion times of each core's outstanding off-chip misses
        #: (ROB-window bound on per-core memory-level parallelism).
        self.outstanding: list[list[float]] = [
            [] for _ in range(trace.cores)
        ]
        #: DRAM priority class of each core's demand fetches.  Default
        #: HIGH; asymmetric mixes may demote a core's priority class so
        #: its demand traffic queues behind every other core's (rate-
        #: based bandwidth arbitration between co-runners).
        self.demand_priority = [
            demand_priority(trace.core_priority_of(core))
            for core in range(trace.cores)
        ]
        self.clocks = [0.0] * trace.cores
        self.cursors = [0] * trace.cores
        self.measure_start = [0.0] * trace.cores
        self.measure_cursor = [0] * trace.cores
        self.measured_records = 0
        self.measuring = False

    # ------------------------------------------------------------------
    # Phases.
    # ------------------------------------------------------------------

    def run_warmup(self) -> None:
        limits = [
            self.trace.warmup_records(core)
            for core in range(self.trace.cores)
        ]
        self._run_until(limits)

    def reset_accounting(self) -> None:
        """Statistics reset at the measurement boundary (state kept)."""
        self.traffic.reset()
        self.hierarchy.reset_stats()
        self.dram.stats.requests = 0
        self.dram.stats.busy_cycles = 0.0
        self.dram.stats.queue_cycles = 0.0
        if self.stride is not None:
            self.stride.stats = StrideStats()
        if self.temporal is not None:
            self.temporal.stats = PrefetcherStats()
        self.coverage = CoverageCounts()
        self.core_coverage = [
            CoverageCounts() for _ in range(self.trace.cores)
        ]
        self.measure_start = list(self.clocks)
        self.measure_cursor = list(self.cursors)
        self.measuring = True

    def run_measured(self) -> None:
        limits = [
            self.trace.core_records(core)
            for core in range(self.trace.cores)
        ]
        self._run_until(limits)
        end = max(self.clocks) if self.clocks else 0.0
        if self.temporal is not None:
            self.temporal.finalize(end)
        if self.stride is not None:
            self.stride.finalize()

    def _run_until(self, limits: list[int]) -> None:
        """Advance every core to its per-core record limit, time-ordered."""
        heap = [
            (self.clocks[core], core)
            for core in range(self.trace.cores)
            if self.cursors[core] < limits[core]
        ]
        heapq.heapify(heap)
        while heap:
            _, core = heapq.heappop(heap)
            self._step(core)
            if self.cursors[core] < limits[core]:
                heapq.heappush(heap, (self.clocks[core], core))

    # ------------------------------------------------------------------
    # One trace record.
    # ------------------------------------------------------------------

    def _step(self, core: int) -> None:
        i = self.cursors[core]
        self.cursors[core] = i + 1
        block = int(self.trace.blocks[core][i])
        dep = bool(self.trace.dep[core][i])
        write = bool(self.trace.write[core][i])
        timing = self.config.timing

        t = self.clocks[core] + float(self.trace.work[core][i])
        if self.measuring:
            self.measured_records += 1

        event = self.hierarchy.access(core, block, write=write)
        service = event.service

        if service is ServicePoint.L1:
            t += timing.l1_hit
        elif service is ServicePoint.VICTIM:
            t += timing.victim_hit
            self._drain_writebacks(event.writebacks, t)
        elif service is ServicePoint.L2:
            t += timing.l2_hit(dep)
            self._drain_writebacks(event.writebacks, t)
            if self.stride is not None:
                self.stride.train(core, block, t)
        else:
            t = self._off_chip(core, block, t, dep, write)

        self.clocks[core] = t

    def _off_chip(
        self, core: int, block: int, t: float, dep: bool, write: bool
    ) -> float:
        """Resolve an access no on-chip level could satisfy."""
        timing = self.config.timing

        # 1. Stride prefetcher buffer (part of the base system).
        if self.stride is not None and self.stride.probe(core, block):
            self.traffic.add_block(TrafficCategory.DEMAND_READ, core)
            if self.measuring:
                self.coverage.stride_covered += 1
                self.core_coverage[core].stride_covered += 1
            t += timing.stride_hit(dep)
            self._fill(core, block, write, t)
            self.stride.train(core, block, t)
            return t

        # 2. Temporal prefetcher buffer.
        if self.temporal is not None:
            entry = self.temporal.consume(core, block, t)
            if entry is not None:
                if entry.is_arrived(t):
                    if self.measuring:
                        self.coverage.fully_covered += 1
                        self.core_coverage[core].fully_covered += 1
                    t += timing.prefetch_hit(dep)
                else:
                    if self.measuring:
                        self.coverage.partially_covered += 1
                        self.core_coverage[core].partially_covered += 1
                    if dep:
                        # A demand hit on an in-flight prefetch upgrades
                        # it to demand urgency: the wait is capped at what
                        # a fresh fetch at the core's demand priority
                        # would take (the transfer itself was charged at
                        # prefetch issue).
                        arrival = min(
                            entry.arrival,
                            self.dram.peek_completion(
                                t, self.demand_priority[core]
                            ),
                        )
                        t = arrival + timing.prefetch_hit_dep
                    else:
                        t += timing.prefetch_hit_indep
                self._fill(core, block, write, t)
                if self.stride is not None:
                    self.stride.train(core, block, t)
                return t

        # 3. Demand fetch from main memory.
        issue = t
        # Per-core miss window: an out-of-order core can only run ahead a
        # bounded number of outstanding off-chip misses.
        window = self.outstanding[core]
        if window:
            window[:] = [c for c in window if c > issue]
            while len(window) >= timing.core_miss_window:
                issue = min(window)
                window.remove(issue)
        self.mshrs.retire_complete(issue)
        existing = self.mshrs.outstanding(block)
        if existing is not None:
            # Another core is already fetching this block: merge.
            self.mshrs.merge(block)
            completion = existing.complete_at
        else:
            if self.mshrs.full:
                earliest = self.mshrs.earliest_completion()
                if earliest is not None:
                    issue = max(issue, earliest)
                    self.mshrs.retire_complete(issue)
            completion = self.dram.request(
                issue, self.demand_priority[core]
            )
            self.traffic.add_block(TrafficCategory.DEMAND_READ, core)
            self.mshrs.allocate(block, completion)
        if self.measuring:
            self.coverage.uncovered += 1
            self.core_coverage[core].uncovered += 1
            if self.mlp is not None:
                self.mlp.add(core, issue, completion)
            if self.miss_log is not None:
                self.miss_log[core].append(block)
        if dep:
            t = completion
            window.clear()
        else:
            t = issue + timing.miss_issue_overhead
            window.append(completion)
        self._fill(core, block, write, t)
        if self.temporal is not None:
            self.temporal.on_demand_miss(core, block, issue)
        if self.stride is not None:
            self.stride.train(core, block, t)
        return t

    def _fill(self, core: int, block: int, write: bool, now: float) -> None:
        writebacks = self.hierarchy.fill_off_chip(core, block, dirty=write)
        self._drain_writebacks(writebacks, now)

    def _drain_writebacks(self, writebacks: list, now: float) -> None:
        for _ in writebacks:
            self.dram.request(now, Priority.HIGH)

    # ------------------------------------------------------------------
    # Result assembly.
    # ------------------------------------------------------------------

    def result(self, label: str) -> SimResult:
        cores = range(self.trace.cores)
        core_elapsed = [
            self.clocks[core] - self.measure_start[core] for core in cores
        ]
        elapsed = max(core_elapsed)
        l1_hits = sum(l1.stats.hits for l1 in self.hierarchy.l1s)
        victim_hits = sum(v.hits for v in self.hierarchy.victims)
        return SimResult(
            workload=self.trace.name,
            prefetcher=label,
            measured_records=self.measured_records,
            elapsed_cycles=elapsed,
            coverage=self.coverage,
            l1_hits=l1_hits,
            victim_hits=victim_hits,
            l2_hits=self.hierarchy.l2.stats.hits,
            traffic=self.traffic.breakdown(),
            overhead_per_useful_byte=self.traffic.overhead_per_useful_byte(),
            metadata_bytes=self.traffic.metadata_bytes,
            useful_bytes=self.traffic.useful_bytes,
            mlp=self.mlp.result() if self.mlp is not None else 0.0,
            prefetcher_stats=(
                self.temporal.stats if self.temporal is not None else None
            ),
            dram_utilization=self.dram.utilization(max(elapsed, 1.0)),
            miss_log=self.miss_log,
            core_workloads=(
                list(self.trace.core_workloads)
                if self.trace.core_workloads is not None
                else None
            ),
            core_coverage=list(self.core_coverage),
            core_measured_records=[
                self.cursors[core] - self.measure_cursor[core]
                for core in cores
            ],
            core_elapsed_cycles=core_elapsed,
            core_mlp=(
                self.mlp.per_core() if self.mlp is not None else None
            ),
            core_traffic_bytes=self.traffic.core_breakdown()[
                : self.trace.cores
            ],
        )
