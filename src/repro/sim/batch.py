"""Batched simulation engine: vectorized L1 runs, fast scalar events.

This is the production engine behind :class:`repro.sim.engine.Simulator`
(``engine="batch"``).  It produces **bit-identical** results to the
scalar reference engine (:class:`repro.sim.engine._RunState`) — the
equivalence is enforced by ``tests/sim/test_engine_equivalence.py`` —
while removing the per-record Python interpreter loop from everything
that does not touch shared machine state.

How it stays exact
==================

The scalar engine interleaves cores record-by-record through a heap
keyed on ``(clock, core)``.  Observe that an L1 hit touches only the
core's *private* state (its L1 recency/dirty bits and its clock): hits
commute with every other core's records.  The only cross-core couplings
are the shared L2 / MSHRs / DRAM / prefetchers — touched exclusively by
records that miss the L1 ("events") — and inclusive L2 evictions, which
read (``peek_dirty``) and invalidate *other* cores' L1s.

So the engine schedules **events**, not records:

1. Per core, classify the upcoming run of guaranteed L1 hits in one
   NumPy membership pass against the L1's resident-set / tag arrays
   (residency is invariant under hits, so one test classifies the whole
   run).  Pop keys of every record in the run are precomputed with a
   float64 ``cumsum`` that reproduces the scalar engine's addition
   order bit-for-bit.
2. Each core's *next event* is scheduled at exactly the key the scalar
   heap would pop it at; the dispatcher picks the minimum ``(key,
   core)`` just as the scalar heap tuples order.
3. When an event fires at key ``s`` for core ``a``, every other core's
   pending hits that the scalar engine would have popped earlier —
   pop key ``< s``, or ``== s`` for a lower-numbered core — are
   committed first, so the event observes exactly the L1 dirty bits the
   scalar interleaving would produce.
4. The event record itself runs through the same scalar logic as the
   reference engine (hand-inlined but operation-for-operation
   identical).
5. If the event's L2 evictions invalidated blocks out of another
   core's *classified but uncommitted* run, that run is truncated at
   the first invalidated block — which is exactly where the scalar
   engine would have discovered an L1 miss — and rescheduled.

Trace columns are additionally materialized as Python lists once per
trace: scalar event records then read native ints/floats/bools instead
of paying NumPy scalar-extraction costs per record.

The STMS metadata path is vectorized the same way the L1-hit runs are
(see :mod:`repro.core.stms`): index buckets and tags for *every* record
are classified in one NumPy pass per column at construction
(``metadata_columns``), history-buffer appends commit per packed-block
segment instead of per record, and stream follows move whole history
segments through ``read_segment`` / ``enqueue_segment``.  Scalar
processing remains only at the points where stream state genuinely
serializes — stream launch, pause/resume, and run invalidation.
"""

from __future__ import annotations

from heapq import heappush

import numpy as np

from repro.memory.address import BLOCK_BYTES
from repro.memory.cache import AccessResult, Eviction
from repro.memory.dram import Priority
from repro.memory.mshr import MshrEntry
from repro.memory.traffic import TrafficCategory
from repro.sim.engine import _RunState

_HIGH = Priority.HIGH
_HIT = AccessResult.HIT
_DEMAND_READ = TrafficCategory.DEMAND_READ
_WRITEBACK = TrafficCategory.WRITEBACK
_USEFUL_PREFETCH = TrafficCategory.USEFUL_PREFETCH
_INF = float("inf")

#: Records probed scalar-ly before switching to vectorized
#: classification; suite traces are L1-filtered, so most runs are short.
_PROBE = 4
#: First vectorized classification chunk (doubles while it keeps
#: hitting).
_CHUNK = 64


class _Run:
    """One core's classified run of L1 hits (mutable, reused per core).

    ``popkeys[k]`` is the scalar heap key (the core clock before the
    record's ``work``) of the run's ``k``-th record; ``popkeys[n]`` is
    the key of the event record that ends the run (or, for an event-less
    tail, the clock after the run drains).  An empty run (``n == 0``)
    materializes no keys or views at all.
    """

    __slots__ = ("start", "n", "done", "popkeys", "blocks", "writes")

    def __init__(self):
        self.start = 0
        self.n = 0
        self.done = 0
        self.popkeys = None
        self.blocks = None
        self.writes = None


class BatchRunState(_RunState):
    """Drop-in replacement for the scalar reference run state."""

    L1_KIND = "dict"

    __slots__ = ('_blocks_l', '_work_l', '_dep_l', '_write_l', '_blocks_a', '_write_a', '_runs', '_event_keys', '_n_pending', '_t_l1_hit', '_t_victim', '_t_l2_dep', '_t_l2_indep', '_t_stride_dep', '_t_stride_indep', '_t_pf_dep', '_t_pf_indep', '_t_miss_overhead', '_miss_window', '_traffic_bytes', '_core_traffic', '_l2_ways', '_l1_ways', '_victim_capacity', '_mlp_accs', '_l1_sets_list', '_l1_set_mask', '_scratch_writebacks', '_stms_buckets', '_stms_tags')

    def __init__(self, config, trace, temporal_factory, shared=None):
        super().__init__(config, trace, temporal_factory)
        self.hierarchy.log_l1_invalidations = True
        # Native-type columns: Python list indexing returns ready-made
        # ints/floats/bools, ~10x cheaper than NumPy scalar extraction.
        # float32 -> float64 is exact, so clock math is unchanged.
        columns = _native_columns(trace)
        self._blocks_l, self._work_l, self._dep_l, self._write_l = columns
        self._blocks_a = [np.asarray(b) for b in trace.blocks]
        self._write_a = [np.asarray(w) for w in trace.write]
        self._runs = [_Run() for _ in range(trace.cores)]
        self._event_keys = [_INF] * trace.cores
        #: Number of runs holding classified-but-uncommitted hits; lets
        #: the dispatcher skip the commit sweep entirely when zero.
        self._n_pending = 0
        # Hoisted per-event constants (all from frozen configs).
        timing = config.timing
        self._t_l1_hit = timing.l1_hit
        self._t_victim = timing.victim_hit
        self._t_l2_dep = timing.l2_hit_dep
        self._t_l2_indep = timing.l2_hit_indep
        self._t_stride_dep = timing.stride_hit_dep
        self._t_stride_indep = timing.stride_hit_indep
        self._t_pf_dep = timing.prefetch_hit_dep
        self._t_pf_indep = timing.prefetch_hit_indep
        self._t_miss_overhead = timing.miss_issue_overhead
        self._miss_window = timing.core_miss_window
        self._traffic_bytes = self.traffic._bytes
        self._core_traffic = self.traffic._core_bytes
        self._l2_ways = self.hierarchy._l2_ways
        self._l1_ways = config.cmp.l1_ways
        self._victim_capacity = config.cmp.l1_victim_blocks
        self._mlp_accs = (
            self.mlp._accumulators if self.mlp is not None else None
        )
        if self.L1_KIND == "dict":
            self._l1_sets_list = [l1._sets for l1 in self.hierarchy.l1s]
            self._l1_set_mask = self.hierarchy.l1s[0]._set_mask
        else:
            self._l1_sets_list = None
            self._l1_set_mask = 0
        self._scratch_writebacks: list = []
        # STMS fast path: pre-classify every record's index bucket/tag in
        # one vectorized pass per column.  Other temporal prefetchers
        # (or no prefetcher) keep the generic consume/on_demand_miss
        # calls.
        columns_hook = getattr(self.temporal, "metadata_columns", None)
        if columns_hook is not None:
            # A sweep invocation (sim/sweep.py) hands in columns it
            # classified once for every cell sharing this prefetcher's
            # index geometry; the per-cell pass runs only when no shared
            # precomputation covers it.
            columns = None
            if shared is not None:
                geometry_hook = getattr(
                    self.temporal, "metadata_geometry", None
                )
                if geometry_hook is not None:
                    columns = shared.metadata_columns(geometry_hook())
            if columns is None:
                columns = columns_hook(self._blocks_a)
            buckets, tags = columns
            self._stms_buckets = buckets
            self._stms_tags = self._blocks_l if tags is None else tags
        else:
            self._stms_buckets = None
            self._stms_tags = None

    # ------------------------------------------------------------------
    # Event-granular dispatcher.
    # ------------------------------------------------------------------

    def _run_until(self, limits: "list[int]") -> None:
        cores = self.trace.cores
        runs = self._runs
        keys = self._event_keys
        invalidations = self.hierarchy.l1_invalidations
        core_range = range(cores)
        for core in core_range:
            self._reclassify(core, limits[core])
        while True:
            # Minimum (key, core): identical order to the scalar heap's
            # (clock, core) tuples — strict < keeps the lowest core on
            # ties.
            key = _INF
            core = -1
            for c in core_range:
                if keys[c] < key:
                    key = keys[c]
                    core = c
            if core < 0:
                break
            if self._n_pending:
                # Commit hits the scalar heap would pop before this
                # event: pop key < key, or == key on a lower core.
                for other in core_range:
                    orun = runs[other]
                    done = orun.done
                    if done >= orun.n:
                        continue
                    if other == core:
                        self._apply_hits(core, orun, orun.n)
                        continue
                    popkeys = orun.popkeys
                    n = orun.n
                    if other < core:
                        while done < n and popkeys[done] <= key:
                            done += 1
                    else:
                        while done < n and popkeys[done] < key:
                            done += 1
                    if done > orun.done:
                        self._apply_hits(other, orun, done)
            self._process_event(core)
            if invalidations:
                self._truncate_runs(invalidations)
                invalidations.clear()
            self._reclassify(core, limits[core])
        # Only event-less tails remain: private hits, commute freely.
        for core in core_range:
            run = runs[core]
            if run.done < run.n:
                self._apply_hits(core, run, run.n)

    def _reclassify(self, core: int, limit: int) -> None:
        """Classify the core's next L1-hit run and schedule its event."""
        cursor = self.cursors[core]
        run = self._runs[core]
        run.start = cursor
        run.done = 0
        if cursor >= limit:
            run.n = 0
            self._event_keys[core] = _INF
            return
        clock = self.clocks[core]
        blocks_l = self._blocks_l[core]
        l1 = self.hierarchy.l1s[core]
        l1_sets_list = self._l1_sets_list
        if l1_sets_list is not None:
            # Dict-backed L1: probe set membership directly (the method
            # call per record dominates on miss-heavy traces).
            sets = l1_sets_list[core]
            set_mask = self._l1_set_mask
            block = blocks_l[cursor]
            if block not in sets[block & set_mask]:
                # Empty run — the next record is immediately an event.
                run.n = 0
                self._event_keys[core] = clock
                return
            window = limit - cursor
            n = 1
            probe = _PROBE if window > _PROBE else window
            while n < probe:
                block = blocks_l[cursor + n]
                if block not in sets[block & set_mask]:
                    break
                n += 1
        else:
            lookup = l1.lookup
            if not lookup(blocks_l[cursor]):
                # Empty run — the next record is immediately an event.
                run.n = 0
                self._event_keys[core] = clock
                return
            window = limit - cursor
            n = 1
            probe = _PROBE if window > _PROBE else window
            while n < probe and lookup(blocks_l[cursor + n]):
                n += 1
        if n == probe and window > probe:
            arr = self._blocks_a[core]
            base = cursor + n
            chunk = _CHUNK
            while base < limit:
                size = min(chunk, limit - base)
                prefix = l1.resident_prefix(arr[base:base + size])
                base += prefix
                if prefix < size:
                    break
                chunk *= 2
            n = base - cursor
        # Pop keys, replicating the scalar engine's addition order
        # exactly: t = (t + work) then t += l1_hit, one record at a time.
        l1_hit = self._t_l1_hit
        if n <= 16:
            work_l = self._work_l[core]
            popkeys = [clock]
            t = clock
            for k in range(cursor, cursor + n):
                t = t + work_l[k]
                t = t + l1_hit
                popkeys.append(t)
        else:
            interleaved = np.empty(2 * n + 1, dtype=np.float64)
            interleaved[0] = clock
            interleaved[1::2] = self.trace.work[core][cursor:cursor + n]
            interleaved[2::2] = l1_hit
            popkeys = np.cumsum(interleaved)[0::2].tolist()
        run.n = n
        run.popkeys = popkeys
        if n > _PROBE:
            run.blocks = self._blocks_a[core][cursor:cursor + n]
            run.writes = self._write_a[core][cursor:cursor + n]
        else:
            run.blocks = run.writes = None
        self._n_pending += 1
        self._event_keys[core] = popkeys[n] if cursor + n < limit else _INF

    def _apply_hits(self, core: int, run: _Run, upto: int) -> None:
        """Commit run records [done, upto): recency, dirty, stats, clock."""
        k = upto - run.done
        l1 = self.hierarchy.l1s[core]
        if run.blocks is None or k <= _PROBE:
            blocks_l = self._blocks_l[core]
            writes_l = self._write_l[core]
            hit_update = l1.hit_update
            for j in range(run.start + run.done, run.start + upto):
                hit_update(blocks_l[j], writes_l[j])
        else:
            l1.bulk_hit_update(
                run.blocks[run.done:upto], run.writes[run.done:upto]
            )
        l1.stats.hits += k
        self.hierarchy.demand_accesses += k
        if self.measuring:
            self.measured_records += k
        self.cursors[core] += k
        self.clocks[core] = run.popkeys[upto]
        run.done = upto
        if upto == run.n:
            self._n_pending -= 1

    def _process_event(self, core: int) -> None:
        """One L1-missing record, identical to the scalar ``_step``.

        The scalar reference's ``_step`` + ``_off_chip`` pair merged
        into one function with every repeated ``self`` field hoisted to
        a local: this runs once per event, and on miss-dominated traces
        (the STMS sweeps) that is nearly once per record.  Any change to
        the scalar path must be replicated here (the equivalence and
        differential suites catch drift).
        """
        i = self.cursors[core]
        self.cursors[core] = i + 1
        block = self._blocks_l[core][i]
        dep = self._dep_l[core][i]
        write = self._write_l[core][i]
        t = self.clocks[core] + self._work_l[core][i]
        measuring = self.measuring
        if measuring:
            self.measured_records += 1

        hier = self.hierarchy
        hier.demand_accesses += 1
        # Classification guarantees an L1 miss (only this core fills its
        # L1; invalidations truncate runs): count it without re-probing.
        hier.l1s[core].stats.misses += 1
        stride = self.stride

        if hier.victims[core].extract(block):
            t += self._t_victim
            for _ in hier._fill_l1(core, block, dirty=write):
                self.dram.request(t, _HIGH)
            self.clocks[core] = t
            return
        # Inlined Cache.access on the L2 (always LRU, read probe).
        l2 = hier.l2
        cache_set = l2._sets[block & l2._set_mask]
        if block in cache_set:
            cache_set[block] = cache_set.pop(block)
            l2.stats.hits += 1
            t += self._t_l2_dep if dep else self._t_l2_indep
            for _ in hier._fill_l1(core, block, dirty=write):
                self.dram.request(t, _HIGH)
            if stride is not None:
                stride.train(core, block, t)
            self.clocks[core] = t
            return
        l2.stats.misses += 1
        hier.off_chip_reads += 1

        # --- Off-chip resolution (the scalar `_off_chip`). ---

        # 1. Stride prefetcher buffer (part of the base system), with
        # PrefetchBuffer.take inlined.
        if stride is not None:
            stride_buffer = stride.buffers[core]
            entry = stride_buffer._entries.pop(block, None)
            if entry is not None:
                stride_buffer._forget(entry)
                stride.stats.useful += 1
                self._traffic_bytes[_DEMAND_READ] += BLOCK_BYTES
                self._core_traffic[core][_DEMAND_READ] += BLOCK_BYTES
                if measuring:
                    self.coverage.stride_covered += 1
                    self.core_coverage[core].stride_covered += 1
                t += self._t_stride_dep if dep else self._t_stride_indep
                self._fill(core, block, write, t)
                stride.train(core, block, t)
                self.clocks[core] = t
                return

        # 2. Temporal prefetcher buffer.  The STMS path probes with the
        # record's pre-classified bucket/tag (no per-event hashing) and
        # the buffer-hit bookkeeping of TemporalPrefetcher.consume
        # inlined ahead of the pre-hashed prefetch-hit hook.
        temporal = self.temporal
        bucket = tag = 0
        stms_buckets = self._stms_buckets
        if temporal is not None:
            if stms_buckets is not None:
                bucket = stms_buckets[core][i]
                tag = self._stms_tags[core][i]
                temporal_buffer = temporal.buffers[core]
                entry = temporal_buffer._entries.pop(block, None)
                if entry is not None:
                    temporal_buffer._forget(entry)
                    temporal.stats.useful += 1
                    self._traffic_bytes[_USEFUL_PREFETCH] += BLOCK_BYTES
                    self._core_traffic[core][
                        _USEFUL_PREFETCH
                    ] += BLOCK_BYTES
                    temporal._prefetch_hit_hashed(core, block, t, bucket, tag)
            else:
                entry = temporal.consume(core, block, t)
            if entry is not None:
                if entry.arrival <= t:
                    if measuring:
                        self.coverage.fully_covered += 1
                        self.core_coverage[core].fully_covered += 1
                    t += self._t_pf_dep if dep else self._t_pf_indep
                else:
                    if measuring:
                        self.coverage.partially_covered += 1
                        self.core_coverage[core].partially_covered += 1
                    if dep:
                        # A demand hit on an in-flight prefetch upgrades
                        # it to demand urgency (see the reference
                        # engine).
                        arrival = entry.arrival
                        peek = self.dram.peek_completion(
                            t, self.demand_priority[core]
                        )
                        if peek < arrival:
                            arrival = peek
                        t = arrival + self._t_pf_dep
                    else:
                        t += self._t_pf_indep
                self._fill(core, block, write, t)
                if stride is not None:
                    stride.train(core, block, t)
                self.clocks[core] = t
                return

        # 3. Demand fetch from main memory.
        issue = t
        window = self.outstanding[core]
        if window:
            # In-place expiry sweep (a listcomp would build a frame per
            # event on 3.11); same resulting contents as the scalar
            # engine's rebuild.
            keep = 0
            for completion_time in window:
                if completion_time > issue:
                    window[keep] = completion_time
                    keep += 1
            if keep != len(window):
                del window[keep:]
            while len(window) >= self._miss_window:
                issue = min(window)
                window.remove(issue)
        mshrs = self.mshrs
        if mshrs._min_complete <= issue:
            mshrs.retire_complete(issue)
        existing = mshrs._entries.get(block)
        if existing is not None:
            # Another core is already fetching this block: merge.
            existing.waiters += 1
            mshrs.stats.merges += 1
            completion = existing.complete_at
        else:
            if len(mshrs._entries) >= mshrs.capacity:
                earliest = mshrs.earliest_completion()
                if earliest is not None:
                    if earliest > issue:
                        issue = earliest
                    mshrs.retire_complete(issue)
            # Inlined DramChannel.request(issue, priority, blocks=1);
            # the core's demand-priority class picks the queue it waits
            # behind (asymmetric mixes may demote a core to LOW).
            dram = self.dram
            service = dram._transfer_cycles
            dram_stats = dram.stats
            if self.demand_priority[core] is _HIGH:
                busy = dram._busy_until_high
                start = issue if issue > busy else busy
                busy = start + service
                dram._busy_until_high = busy
                if busy > dram._busy_until_all:
                    dram._busy_until_all = busy
                dram_stats.high_priority_requests += 1
            else:
                busy = dram._busy_until_all
                start = issue if issue > busy else busy
                dram._busy_until_all = start + service
                dram_stats.low_priority_requests += 1
            dram_stats.requests += 1
            dram_stats.busy_cycles += service
            dram_stats.queue_cycles += start - issue
            completion = start + dram._access_latency_cycles + service
            self._traffic_bytes[_DEMAND_READ] += BLOCK_BYTES
            self._core_traffic[core][_DEMAND_READ] += BLOCK_BYTES
            # Inlined MshrFile.allocate (capacity was enforced above, and
            # ``existing is None`` rules out a duplicate entry).
            mshr_entries = mshrs._entries
            mshr_entries[block] = MshrEntry(block, completion)
            heappush(mshrs._heap, (completion, block))
            if completion < mshrs._min_complete:
                mshrs._min_complete = completion
            mshr_stats = mshrs.stats
            mshr_stats.allocations += 1
            occupancy = len(mshr_entries)
            if occupancy > mshr_stats.peak_occupancy:
                mshr_stats.peak_occupancy = occupancy
        if measuring:
            self.coverage.uncovered += 1
            self.core_coverage[core].uncovered += 1
            mlp_accs = self._mlp_accs
            if mlp_accs is not None:
                # Inlined _IntervalAccumulator.add (completion > issue:
                # retirement already dropped entries at or before issue).
                acc = mlp_accs[core]
                acc.total += completion - issue
                acc.count += 1
                current_end = acc._current_end
                if current_end < 0:
                    acc._current_start = issue
                    acc._current_end = completion
                elif issue <= current_end:
                    if completion > current_end:
                        acc._current_end = completion
                else:
                    acc.union += current_end - acc._current_start
                    acc._current_start = issue
                    acc._current_end = completion
            if self.miss_log is not None:
                self.miss_log[core].append(block)
        if dep:
            t = completion
            window.clear()
        else:
            t = issue + self._t_miss_overhead
            window.append(completion)
        self._fill(core, block, write, t)
        if temporal is not None:
            if stms_buckets is not None:
                temporal.on_demand_miss_hashed(
                    core, block, issue, bucket, tag
                )
            else:
                temporal.on_demand_miss(core, block, issue)
        if stride is not None:
            stride.train(core, block, t)
        self.clocks[core] = t

    def _fill(self, core, block, write, now):
        # fill_off_chip with the writeback list reused across events and
        # the L2 fill inlined (operation-for-operation
        # ``CmpHierarchy._l2_fill`` with ``dirty=False``; core indices
        # are range-validated at trace admission).
        writebacks = self._scratch_writebacks
        writebacks.clear()
        hier = self.hierarchy
        l2 = hier.l2
        cache_set = l2._sets[block & l2._set_mask]
        if block in cache_set:
            # Refill of a resident block refreshes LRU (dirty unchanged).
            cache_set[block] = cache_set.pop(block)
        else:
            victim_block = None
            if len(cache_set) >= self._l2_ways:
                victim_block = next(iter(cache_set))
                victim_dirty = cache_set.pop(victim_block)
                l2_stats = l2.stats
                l2_stats.evictions += 1
                if victim_dirty:
                    l2_stats.dirty_evictions += 1
            cache_set[block] = False
            l2.stats.fills += 1
            l2._version += 1
            if victim_block is not None:
                # Inlined CmpHierarchy._handle_l2_eviction (the no-L1-copy
                # case is the overwhelmingly common one).
                copies_mask = hier._l1_copies.pop(victim_block, 0)
                if copies_mask:
                    victim_dirty = hier._invalidate_copies(
                        victim_block, copies_mask, victim_dirty
                    )
                if victim_dirty:
                    self._traffic_bytes[_WRITEBACK] += BLOCK_BYTES
                    self._core_traffic[core][_WRITEBACK] += BLOCK_BYTES
                    writebacks.append(Eviction(victim_block, True))
        # Inlined CmpHierarchy._fill_l1_into over the dict-backed L1
        # (TagBatchRunState overrides _fill with the generic calls).
        l1 = hier.l1s[core]
        l1_set = l1._sets[block & l1._set_mask]
        copies = hier._l1_copies
        bit = 1 << core
        l1_victim = None
        if block in l1_set:
            l1_set[block] = l1_set.pop(block) or write
        else:
            if len(l1_set) >= self._l1_ways:
                victim_block = next(iter(l1_set))
                victim_dirty = l1_set.pop(victim_block)
                l1_stats = l1.stats
                l1_stats.evictions += 1
                if victim_dirty:
                    l1_stats.dirty_evictions += 1
                l1_victim = (victim_block, victim_dirty)
            l1_set[block] = write
            l1.stats.fills += 1
            l1._version += 1
        copies[block] = copies.get(block, 0) | bit
        if l1_victim is not None:
            victim_block, victim_dirty = l1_victim
            mask = copies.get(victim_block, 0) & ~bit
            if mask:
                copies[victim_block] = mask
            else:
                copies.pop(victim_block, None)
            # Inlined VictimBuffer.insert (FIFO over evicted L1 blocks).
            capacity = self._victim_capacity
            if capacity <= 0:
                if victim_dirty:
                    hier._l2_fill(victim_block, True, writebacks, core)
            else:
                fifo = hier.victims[core]._fifo
                if victim_block in fifo:
                    fifo[victim_block] = fifo[victim_block] or victim_dirty
                else:
                    if len(fifo) >= capacity:
                        displaced = next(iter(fifo))
                        displaced_dirty = fifo.pop(displaced)
                        if displaced_dirty:
                            hier._l2_fill(
                                displaced, True, writebacks, core
                            )
                    fifo[victim_block] = victim_dirty
        if writebacks:
            dram = self.dram
            for _ in writebacks:
                dram.request(now, _HIGH)

    def _truncate_runs(
        self, invalidations: "list[tuple[int, int]]"
    ) -> None:
        """Shorten classified runs whose blocks an event invalidated.

        The scalar engine would discover the L1 miss when the core's
        clock reached the invalidated record; truncating the run there
        turns that record into the core's next event at exactly the pop
        key the scalar heap would use.
        """
        for core, block in invalidations:
            run = self._runs[core]
            if run.done >= run.n:
                continue
            if run.blocks is not None:
                view = run.blocks[run.done:run.n]
                matches = np.flatnonzero(view == block)
                if not matches.size:
                    continue
                p = run.done + int(matches[0])
            else:
                blocks_l = self._blocks_l[core]
                start = run.start
                for p in range(run.done, run.n):
                    if blocks_l[start + p] == block:
                        break
                else:
                    continue
            run.n = p
            if run.done >= run.n:
                self._n_pending -= 1
            self._event_keys[core] = run.popkeys[p]


class TagBatchRunState(BatchRunState):
    """Batched engine over the NumPy tag-array L1 model.

    Same scheduling, different L1 representation: recency and dirty
    state live in flat NumPy arrays so long hit runs commit with
    ``np.maximum.at`` instead of a Python loop.  Preferable for
    L1-resident-heavy traces; the dict-backed default wins when events
    dominate (the suite's L1-filtered traces).
    """

    __slots__ = ()

    L1_KIND = "tag"

    def _fill(self, core, block, write, now):
        # The flat dict-L1 fill above does not apply to the tag-array
        # L1 model: take the generic hierarchy path.
        writebacks = self._scratch_writebacks
        writebacks.clear()
        hier = self.hierarchy
        hier._l2_fill(block, False, writebacks, core)
        hier._fill_l1_into(core, block, write, writebacks)
        if writebacks:
            dram = self.dram
            for _ in writebacks:
                dram.request(now, _HIGH)


def _native_columns(trace):
    """Python-list trace columns, materialized once and cached."""
    cached = getattr(trace, "_native_columns", None)
    if cached is not None:
        return cached
    columns = (
        [np.asarray(b).tolist() for b in trace.blocks],
        [np.asarray(w, dtype=np.float64).tolist() for w in trace.work],
        [np.asarray(d).tolist() for d in trace.dep],
        [np.asarray(w).tolist() for w in trace.write],
    )
    trace._native_columns = columns
    return columns
