"""Budgeted stratified sampling over sweep-cell grids.

The paper's Section 5.5 samples the *history* (probabilistic metadata
updates); this module samples the *experiment*: given the full
(seed x sweep-point) cell grid of a sweep and a cell budget, it selects
a stratified subset — stratified by the sweep axis, so every capacity /
bandwidth / probability stratum is represented — and the selected cells
run through the unchanged ``run_sweep``/``ExperimentRunner.map`` path
under their exact per-cell recipe keys.  Each simulated cell is still
an exact result; only the *aggregate* reported from them is an
estimate (per-stratum mean + bootstrap confidence interval, see
:mod:`repro.analysis.stats`).

Two properties carry the design:

* **Determinism** — the selection is a pure function of the strata,
  the seed, and the budget.  Each stratum's internal order comes from
  a content hash of ``(seed, stratum, cell index)``, so it does not
  depend on which *other* strata happen to be swept.
* **Budget-nested refinement** — ``plan_sample(strata, b1)`` selects a
  prefix of ``plan_sample(strata, b2)`` whenever ``b1 <= b2``.  A
  re-run with a doubled budget (or a tighter CI-width target) schedules
  a superset of the previous cells, the artifact store answers the old
  ones, and only the incremental cells are simulated — refinement runs
  pay only for the cells they tighten.

Selection order is a round-robin over strata in first-seen order: with
a budget of at least the stratum count, every stratum is represented,
and allocation stays balanced as the budget grows.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass


def _cell_rank(seed: int, stratum: object, index: int) -> str:
    """Deterministic per-cell sort key within one stratum.

    A content digest rather than a seeded shuffle: the rank of a cell
    depends only on ``(seed, stratum, index)``, never on the stratum's
    size or on other strata, which is what keeps refinement plans
    nested when the same grid is re-planned at another budget.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(f"{seed}:{stratum!r}:{index}".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class SamplingPlan:
    """One deterministic stratified selection over a cell grid.

    ``selected`` is in *selection order* (the round-robin sequence), so
    for two plans over the same grid and seed the smaller budget's
    selection is a prefix of the larger one's.
    """

    selected: "tuple[int, ...]"
    strata: "tuple[object, ...]"
    budget: int
    total: int
    seed: int

    @property
    def fraction(self) -> float:
        """Selected share of the full grid (0 for an empty grid)."""
        return self.budget / self.total if self.total else 0.0

    @property
    def exhaustive(self) -> bool:
        """True when the plan degenerates to the full exact grid."""
        return self.budget >= self.total

    def by_stratum(self) -> "dict[object, list[int]]":
        """Selected cell indices grouped by stratum (first-seen order)."""
        grouped: "OrderedDict[object, list[int]]" = OrderedDict()
        for stratum in self.strata:
            grouped.setdefault(stratum, [])
        for index in self.selected:
            grouped[self.strata[index]].append(index)
        return dict(grouped)


def plan_sample(
    strata: "list[object] | tuple[object, ...]",
    budget: "int | None",
    seed: int = 0,
) -> SamplingPlan:
    """Plan a stratified sample of ``budget`` cells over ``strata``.

    ``strata[i]`` is the sweep-axis stratum of grid cell ``i``.  The
    effective budget is clamped to ``[stratum count, grid size]`` so
    every stratum is represented whenever the grid allows it; a
    ``None`` budget (or one at/above the grid size) selects the whole
    grid — the exact path, through the same machinery.
    """
    strata = tuple(strata)
    total = len(strata)
    ordered: "OrderedDict[object, list[int]]" = OrderedDict()
    for index, stratum in enumerate(strata):
        ordered.setdefault(stratum, []).append(index)
    for stratum, indices in ordered.items():
        indices.sort(key=lambda i: _cell_rank(seed, stratum, i))
    if budget is None:
        budget = total
    effective = min(max(budget, len(ordered)), total) if total else 0
    queues = {s: iter(indices) for s, indices in ordered.items()}
    exhausted: "set[object]" = set()
    selected: "list[int]" = []
    while len(selected) < effective:
        for stratum in ordered:
            if len(selected) >= effective or stratum in exhausted:
                continue
            index = next(queues[stratum], None)
            if index is None:
                exhausted.add(stratum)
                continue
            selected.append(index)
    return SamplingPlan(
        selected=tuple(selected),
        strata=strata,
        budget=effective,
        total=total,
        seed=seed,
    )
