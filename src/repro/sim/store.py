"""Content-addressed on-disk artifact store: the persistent cache tier.

:class:`~repro.sim.session.SimSession` memoizes traces and results only
within a process; this module gives those artifacts a *lifecycle* that
crosses process boundaries — admission (write-through from the session),
persistence (atomic renames into a content-addressed layout), retrieval
(corruption-tolerant reads that degrade to recompute), and eviction
(LRU size-capped GC).  The same store directory is shared by pool
workers, successive CLI invocations, and CI jobs, so the second run of
any figure is served from disk instead of re-simulated.

Layout under the store root::

    schema.json              format stamp; a mismatch invalidates the store
    traces/<digest>.npz      ``Trace.save`` archives, keyed by recipe hash
    results/<digest>.json    versioned ``SimResult`` records
    estimates/<digest>.json  budgeted sampled-sweep aggregates, stamped
                             ``kind: "sampled-estimate"`` so a
                             statistical estimate can never be mistaken
                             for an exact result

Keys are digests of the session's existing content keys (trace recipes
and ``trace fingerprint + full machine/prefetcher configuration``), so
an entry written by any process is valid in every other.  Every read
path tolerates torn, truncated, or stale entries: a bad file is dropped
and the caller recomputes — the store can never make a result wrong,
only slower.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass, fields

import numpy as np

try:  # POSIX advisory locking for the persistent-counter interlock.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.envknobs import env_float
from repro.memory.traffic import TrafficBreakdown
from repro.prefetchers.base import PrefetcherStats
from repro.sim.metrics import CoverageCounts, SimResult
from repro.sim.remote import RemoteStore
from repro.workloads.trace import Trace

#: Bump whenever the on-disk format of entries changes **or** the
#: simulator's behavior changes such that previously persisted results
#: are no longer what a fresh run would produce (engine fixes,
#: timing-model changes, trace-generator changes...).  The version is
#: part of every content digest, so a bump orphans all old entries;
#: stores whose root stamp differs are additionally cleared on open.
#: v2: traces carry per-core workload/warm-up metadata and results
#: carry per-core coverage/records/cycles/MLP (multiprogrammed mixes).
#: v3: traces carry per-core rate/priority metadata (asymmetric mixes)
#: and results carry the per-core per-category DRAM traffic attribution
#: (``core_traffic_bytes``).
SCHEMA_VERSION = 3

_SCHEMA_FILE = "schema.json"
_COUNTERS_FILE = "counters.json"
_COUNTERS_LOCK_FILE = "counters.lock"
_TMP_PREFIX = ".tmp-"

#: Temp files from crashed writers older than this are swept by
#: :meth:`ArtifactStore.sweep_stale_temps` (``gc``/``clear`` call it).
#: The age gate keeps a *live* writer's in-flight temp file safe from a
#: concurrent sweep; override with ``REPRO_STORE_TMP_MAX_AGE_S``.
_STALE_TEMP_SECONDS = 3600.0

#: Errors that mean "this entry is unreadable", as opposed to bugs.
#: ``FileNotFoundError`` is handled separately (a plain miss).
_CORRUPT_ERRORS = (
    OSError,
    ValueError,  # includes json.JSONDecodeError and bad npz payloads
    KeyError,
    TypeError,
    EOFError,
    zipfile.BadZipFile,
)


def default_store_dir() -> str:
    """``$REPRO_STORE_DIR``, else a per-user cache directory."""
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-stms")


def key_digest(domain: str, key: object) -> str:
    """Stable content digest of a cache key.

    ``key`` must be a tree of primitives (what ``session._freeze``
    produces): its ``repr`` is then deterministic across processes,
    unlike ``hash()`` which is salted per interpreter.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{domain}:{SCHEMA_VERSION}".encode())
    digest.update(b"\x00")
    digest.update(repr(key).encode())
    return digest.hexdigest()


def trace_digest(trace_key: object) -> str:
    """Digest of a trace generation recipe (``SimJob.trace_key()``)."""
    return key_digest("trace", trace_key)


def result_digest(result_key: object) -> str:
    """Digest of a full simulation key (fingerprint + configuration)."""
    return key_digest("result", result_key)


def estimate_digest(estimate_key: object) -> str:
    """Digest of a sampled-estimate key (experiment + grid + budget).

    Distinct from :func:`result_digest` on purpose: a budgeted estimate
    is an *aggregate* over sampled exact cells, so it must never share
    an address space with exact per-cell records.
    """
    return key_digest("estimate", estimate_key)


@dataclass(frozen=True)
class TraceRef:
    """A shippable reference to a persisted trace (hash + path).

    The parallel runner sends these to worker processes instead of
    having every worker regenerate the bundle's trace from its recipe.
    """

    digest: str
    path: str


def load_trace_ref(ref: TraceRef) -> "Trace | None":
    """Resolve a :class:`TraceRef`, tolerating missing/corrupt files."""
    try:
        trace = Trace.load(ref.path)
    except FileNotFoundError:
        return None
    except _CORRUPT_ERRORS:
        return None
    try:
        # Reads refresh recency so LRU GC never evicts the traces the
        # parallel workers are actively being handed references to.
        os.utime(ref.path)
    except OSError:
        pass
    return trace


# ----------------------------------------------------------------------
# SimResult (de)serialization.
# ----------------------------------------------------------------------


def _json_default(value: object) -> object:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def encode_result(result: SimResult) -> dict:
    """Serialize a :class:`SimResult` into plain JSON types.

    Floats survive a JSON round trip exactly (shortest-repr encoding),
    so a decoded record compares equal to the freshly computed one —
    the store-vs-recompute equivalence tests rely on this.
    """
    coverage = result.coverage
    traffic = result.traffic
    stats = result.prefetcher_stats
    return {
        "workload": result.workload,
        "prefetcher": result.prefetcher,
        "measured_records": int(result.measured_records),
        "elapsed_cycles": float(result.elapsed_cycles),
        "coverage": {
            f.name: int(getattr(coverage, f.name))
            for f in fields(CoverageCounts)
        },
        "l1_hits": int(result.l1_hits),
        "victim_hits": int(result.victim_hits),
        "l2_hits": int(result.l2_hits),
        "traffic": None
        if traffic is None
        else {
            f.name: float(getattr(traffic, f.name))
            for f in fields(TrafficBreakdown)
        },
        "overhead_per_useful_byte": float(result.overhead_per_useful_byte),
        "metadata_bytes": int(result.metadata_bytes),
        "useful_bytes": int(result.useful_bytes),
        "mlp": float(result.mlp),
        "prefetcher_stats": None
        if stats is None
        else {
            f.name: int(getattr(stats, f.name))
            for f in fields(PrefetcherStats)
        },
        "dram_utilization": float(result.dram_utilization),
        "miss_log": None
        if result.miss_log is None
        else [[int(block) for block in core] for core in result.miss_log],
        "core_workloads": result.core_workloads,
        "core_coverage": None
        if result.core_coverage is None
        else [
            {
                f.name: int(getattr(core_coverage, f.name))
                for f in fields(CoverageCounts)
            }
            for core_coverage in result.core_coverage
        ],
        "core_measured_records": None
        if result.core_measured_records is None
        else [int(n) for n in result.core_measured_records],
        "core_elapsed_cycles": None
        if result.core_elapsed_cycles is None
        else [float(c) for c in result.core_elapsed_cycles],
        "core_mlp": None
        if result.core_mlp is None
        else [float(m) for m in result.core_mlp],
        "core_traffic_bytes": None
        if result.core_traffic_bytes is None
        else [
            {str(category): int(count) for category, count in per_core.items()}
            for per_core in result.core_traffic_bytes
        ],
    }


def decode_result(payload: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`encode_result` output."""
    traffic = payload["traffic"]
    stats = payload["prefetcher_stats"]
    return SimResult(
        workload=payload["workload"],
        prefetcher=payload["prefetcher"],
        measured_records=payload["measured_records"],
        elapsed_cycles=payload["elapsed_cycles"],
        coverage=CoverageCounts(**payload["coverage"]),
        l1_hits=payload["l1_hits"],
        victim_hits=payload["victim_hits"],
        l2_hits=payload["l2_hits"],
        traffic=None if traffic is None else TrafficBreakdown(**traffic),
        overhead_per_useful_byte=payload["overhead_per_useful_byte"],
        metadata_bytes=payload["metadata_bytes"],
        useful_bytes=payload["useful_bytes"],
        mlp=payload["mlp"],
        prefetcher_stats=None
        if stats is None
        else PrefetcherStats(**stats),
        dram_utilization=payload["dram_utilization"],
        miss_log=payload["miss_log"],
        core_workloads=payload["core_workloads"],
        core_coverage=None
        if payload["core_coverage"] is None
        else [CoverageCounts(**c) for c in payload["core_coverage"]],
        core_measured_records=payload["core_measured_records"],
        core_elapsed_cycles=payload["core_elapsed_cycles"],
        core_mlp=payload["core_mlp"],
        core_traffic_bytes=payload["core_traffic_bytes"],
    )


# ----------------------------------------------------------------------
# The store.
# ----------------------------------------------------------------------


@dataclass
class StoreStats:
    """Per-process counters of one store handle's behaviour."""

    trace_hits: int = 0
    trace_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt_dropped: int = 0
    schema_invalidated: int = 0
    evictions: int = 0
    stale_temps_swept: int = 0
    #: Entries ``gc``/``clear`` left in place because they were queued
    #: for remote write-back (``RemoteStore.pending_paths`` pinning).
    pinned_skipped: int = 0

    @property
    def hits(self) -> int:
        return self.trace_hits + self.result_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.result_misses


@dataclass(frozen=True)
class StoreEntry:
    """One persisted artifact, as listed by :meth:`ArtifactStore.entries`."""

    kind: str  # "trace" | "result" | "estimate"
    digest: str
    path: str
    size_bytes: int
    mtime: float


class ArtifactStore:
    """Content-addressed artifact directory with LRU size-capped GC.

    All writes are atomic (temp file + ``os.replace``), so concurrent
    writers of the same key cannot produce a torn entry — the last
    complete write wins.  Reads refresh an entry's mtime, which is the
    recency signal :meth:`gc` evicts by.

    ``remote`` attaches the optional third tier
    (:class:`~repro.sim.remote.RemoteStore`): local-disk misses
    read-through from the remote peer (the fetched bytes are installed
    locally first, so promotion is paid once), and successful local
    writes write-back to the peer asynchronously.  ``"auto"`` (the
    default) attaches from ``$REPRO_REMOTE_URL`` unless
    ``REPRO_REMOTE=off``.
    """

    def __init__(
        self,
        root: str,
        max_bytes: "int | None" = None,
        remote: "RemoteStore | None | str" = "auto",
    ) -> None:
        self.root = os.path.abspath(root)
        self.stats = StoreStats()
        if max_bytes is None:
            max_bytes = self._max_bytes_from_env()
        self.max_bytes = max_bytes
        if remote == "auto":
            remote = RemoteStore.from_env()
        self.remote: "RemoteStore | None" = remote
        #: Remote-stat values already folded into the persistent
        #: counters (see :meth:`publish_remote_stats`).
        self._remote_published: "dict[str, int]" = {}
        #: Running size estimate so capped stores don't rescan the
        #: whole directory on every write (may over-count overwrites;
        #: drift only triggers GC early, never lets the cap slip).
        self._running_total: "int | None" = None
        self._traces_dir = os.path.join(self.root, "traces")
        self._results_dir = os.path.join(self.root, "results")
        self._estimates_dir = os.path.join(self.root, "estimates")
        os.makedirs(self._traces_dir, exist_ok=True)
        os.makedirs(self._results_dir, exist_ok=True)
        os.makedirs(self._estimates_dir, exist_ok=True)
        self._check_schema()

    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """A store at ``$REPRO_STORE_DIR``, or None when unset."""
        root = os.environ.get("REPRO_STORE_DIR")
        if not root:
            return None
        try:
            return cls(root)
        except OSError:
            return None

    @staticmethod
    def _max_bytes_from_env() -> "int | None":
        megabytes = env_float("REPRO_STORE_MAX_MB", None)
        if megabytes is None:
            return None
        return int(megabytes * 1024 * 1024)

    # ------------------------------------------------------------------
    # Schema stamping.
    # ------------------------------------------------------------------

    def _schema_path(self) -> str:
        return os.path.join(self.root, _SCHEMA_FILE)

    def _check_schema(self) -> None:
        """Validate the store's format stamp; invalidate on mismatch."""
        stamped: "int | None" = None
        try:
            with open(self._schema_path(), "rb") as handle:
                stamped = json.load(handle).get("schema")
        except FileNotFoundError:
            pass
        except _CORRUPT_ERRORS:
            pass
        if stamped == SCHEMA_VERSION:
            return
        if self.entries():
            # Entries written under another (or unknown) format: drop
            # them all rather than risk misinterpreting old bytes.
            self.clear()
            self.stats.schema_invalidated += 1
        self._atomic_write_bytes(
            self._schema_path(),
            json.dumps({"schema": SCHEMA_VERSION}).encode(),
        )

    # ------------------------------------------------------------------
    # Paths and atomic writes.
    # ------------------------------------------------------------------

    def trace_path(self, digest: str) -> str:
        return os.path.join(self._traces_dir, f"{digest}.npz")

    def result_path(self, digest: str) -> str:
        return os.path.join(self._results_dir, f"{digest}.json")

    def trace_ref(self, digest: str) -> TraceRef:
        return TraceRef(digest=digest, path=self.trace_path(digest))

    @staticmethod
    def _atomic_write_bytes(path: str, payload: bytes) -> None:
        """Write ``payload`` to ``path`` via temp file + rename."""
        directory = os.path.dirname(path)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=_TMP_PREFIX)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _drop(self, path: str) -> None:
        self.stats.corrupt_dropped += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # The remote tier (read-through / write-back).
    # ------------------------------------------------------------------

    def _read_through(self, kind: str, digest: str, path: str) -> bool:
        """Promote one remote object into the local tier; False on miss.

        The fetched bytes are installed at ``path`` via the same atomic
        rename local writes use, then re-read through the normal
        (corruption-tolerant) load path — a remote entry that is bad
        *at rest* on the peer (its transport digest still matches) is
        dropped locally exactly like a torn local file.
        """
        if self.remote is None:
            return False
        payload = self.remote.fetch(kind, digest)
        if payload is None:
            return False
        try:
            self._atomic_write_bytes(path, payload)
        except OSError:
            self.stats.write_errors += 1
            return False
        self._auto_gc(path)
        return True

    def _write_back(self, kind: str, digest: str, path: str) -> None:
        """Queue an asynchronous upload of a just-written artifact."""
        if self.remote is not None:
            self.remote.enqueue_writeback(kind, digest, path)

    def publish_remote_stats(self) -> None:
        """Fold remote-tier stat deltas into the persistent counters.

        Idempotent per delta: only growth since the last publication is
        written, so CLI runs can publish at exit and ``cache stats``
        reports fleet behaviour accumulated across processes.
        """
        if self.remote is None:
            return
        snapshot = self.remote.stats_snapshot()
        deltas = {
            f"remote_{name}": value - self._remote_published.get(name, 0)
            for name, value in snapshot.items()
        }
        self._remote_published = snapshot
        self.bump_counters({k: d for k, d in deltas.items() if d})

    def close_remote(self, flush_timeout_s: float = 60.0) -> None:
        """Flush queued write-backs, publish counters, detach the tier."""
        if self.remote is None:
            return
        self.remote.close(flush_timeout_s)
        self.publish_remote_stats()

    # ------------------------------------------------------------------
    # Traces.
    # ------------------------------------------------------------------

    def load_trace(self, digest: str) -> "Trace | None":
        """Read a persisted trace; None on miss or unreadable entry.

        A local miss (or a dropped corrupt entry) read-throughs the
        remote tier once before giving up.
        """
        path = self.trace_path(digest)
        for from_remote in (False, True):
            try:
                trace = Trace.load(path)
            except FileNotFoundError:
                pass
            except _CORRUPT_ERRORS:
                self._drop(path)
            else:
                self.stats.trace_hits += 1
                self._touch(path)
                return trace
            if from_remote or not self._read_through(
                "trace", digest, path
            ):
                break
        self.stats.trace_misses += 1
        return None

    def save_trace(self, digest: str, trace: Trace) -> bool:
        """Persist a trace atomically; False on I/O failure."""
        path = self.trace_path(digest)
        fd, tmp = tempfile.mkstemp(
            dir=self._traces_dir, prefix=_TMP_PREFIX
        )
        os.close(fd)
        try:
            trace.save(tmp)
            os.replace(tmp, path)
        except OSError:
            self.stats.write_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats.writes += 1
        self._write_back("trace", digest, path)
        self._auto_gc(path)
        return True

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    def _load_result_file(self, path: str) -> "SimResult | None":
        """One local read attempt; drops unreadable/stale entries."""
        try:
            with open(path, "rb") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except _CORRUPT_ERRORS:
            self._drop(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != SCHEMA_VERSION
            or record.get("kind") != "sim-result"
        ):
            self._drop(path)
            self.stats.schema_invalidated += 1
            return None
        try:
            return decode_result(record["payload"])
        except _CORRUPT_ERRORS:
            self._drop(path)
            return None

    def load_result(self, digest: str) -> "SimResult | None":
        """Read a persisted result; None on miss, corruption, or a
        schema-version mismatch (stale entries invalidate themselves).
        A local miss read-throughs the remote tier once."""
        path = self.result_path(digest)
        for from_remote in (False, True):
            result = self._load_result_file(path)
            if result is not None:
                self.stats.result_hits += 1
                self._touch(path)
                return result
            if from_remote or not self._read_through(
                "result", digest, path
            ):
                break
        self.stats.result_misses += 1
        return None

    def save_result(self, digest: str, result: SimResult) -> bool:
        """Persist a result atomically; False on I/O failure."""
        record = {
            "schema": SCHEMA_VERSION,
            "kind": "sim-result",
            "workload": result.workload,
            "prefetcher": result.prefetcher,
            "payload": encode_result(result),
        }
        path = self.result_path(digest)
        try:
            payload = json.dumps(record, default=_json_default).encode()
            self._atomic_write_bytes(path, payload)
        except OSError:
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        self._write_back("result", digest, path)
        self._auto_gc(path)
        return True

    # ------------------------------------------------------------------
    # Sampled-estimate records.
    # ------------------------------------------------------------------

    def estimate_path(self, digest: str) -> str:
        return os.path.join(self._estimates_dir, f"{digest}.json")

    def save_estimate(self, digest: str, payload: dict) -> bool:
        """Persist a budgeted sampled-sweep estimate atomically.

        Estimates are stamped ``kind: "sampled-estimate"`` (with a
        ``sampled: true`` marker inside the record) so a statistical
        aggregate can never be mistaken for an exact ``sim-result`` —
        the two kinds live in separate directories *and* separate
        digest domains (:func:`estimate_digest`).  Estimates are local
        derived artifacts: they are not written back to the remote tier
        (the exact sampled cells replicate instead, and any peer can
        re-derive the aggregate from them).
        """
        record = {
            "schema": SCHEMA_VERSION,
            "kind": "sampled-estimate",
            "sampled": True,
            "payload": payload,
        }
        path = self.estimate_path(digest)
        try:
            self._atomic_write_bytes(
                path, json.dumps(record, default=_json_default).encode()
            )
        except OSError:
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        self._auto_gc(path)
        return True

    def load_estimate(self, digest: str) -> "dict | None":
        """Read a sampled-estimate payload; None on miss/corruption."""
        path = self.estimate_path(digest)
        try:
            with open(path, "rb") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except _CORRUPT_ERRORS:
            self._drop(path)
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != SCHEMA_VERSION
            or record.get("kind") != "sampled-estimate"
            or not record.get("sampled")
            or not isinstance(record.get("payload"), dict)
        ):
            self._drop(path)
            self.stats.schema_invalidated += 1
            return None
        self._touch(path)
        return record["payload"]

    # ------------------------------------------------------------------
    # Introspection and garbage collection.
    # ------------------------------------------------------------------

    def entries(self) -> "list[StoreEntry]":
        """All persisted artifacts, oldest (least recently used) first."""
        found: "list[StoreEntry]" = []
        for kind, directory, suffix in (
            ("trace", self._traces_dir, ".npz"),
            ("result", self._results_dir, ".json"),
            ("estimate", self._estimates_dir, ".json"),
        ):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if name.startswith(_TMP_PREFIX) or not name.endswith(
                    suffix
                ):
                    continue
                path = os.path.join(directory, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                found.append(
                    StoreEntry(
                        kind=kind,
                        digest=name[: -len(suffix)],
                        path=path,
                        size_bytes=status.st_size,
                        mtime=status.st_mtime,
                    )
                )
        found.sort(key=lambda entry: entry.mtime)
        return found

    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def gc(self, max_bytes: "int | None" = None) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Returns the number of entries evicted.  Orphaned temp files are
        swept first (age-gated; see :meth:`sweep_stale_temps`) — they
        evade the size accounting, so eviction alone could never
        reclaim them.  With no cap configured and none given, nothing
        further happens.
        """
        self.sweep_stale_temps()
        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap is None:
            return 0
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        # Entries queued for remote write-back are pinned: evicting one
        # mid-queue would make the background upload ship a vanished
        # file and silently drop the fleet's copy.
        pinned = (
            self.remote.pending_paths() if self.remote is not None
            else frozenset()
        )
        evicted = 0
        for entry in entries:  # oldest first
            if total <= cap:
                break
            if entry.path in pinned:
                self.stats.pinned_skipped += 1
                continue
            try:
                os.unlink(entry.path)
            except OSError:
                continue
            total -= entry.size_bytes
            evicted += 1
        self.stats.evictions += evicted
        self._running_total = total  # exact again after a full scan
        return evicted

    def _auto_gc(self, written_path: str) -> None:
        """Enforce the size cap after a write, rescanning only when the
        running estimate says the cap may actually be exceeded."""
        if self.max_bytes is None:
            return
        try:
            added = os.stat(written_path).st_size
        except OSError:
            added = 0
        if self._running_total is None:
            self._running_total = self.total_bytes()
        else:
            self._running_total += added
        if self._running_total > self.max_bytes:
            self.gc(self.max_bytes)

    # ------------------------------------------------------------------
    # Persistent operational counters.
    # ------------------------------------------------------------------

    def _counters_path(self) -> str:
        return os.path.join(self.root, _COUNTERS_FILE)

    @contextlib.contextmanager
    def _counters_lock(self):
        """Advisory exclusive lock serializing counter read-modify-writes.

        Taken on a *sidecar* file (``counters.lock``), never on the
        counters file itself: the data file is replaced atomically on
        every write, and a lock held on a replaced inode would not
        exclude the next writer.  Only the counter RMW takes this lock —
        artifact reads/writes stay lock-free (they are atomic renames
        and need no interlock).  Yields False (and degrades to the old
        best-effort behaviour) where ``fcntl`` or the lock file are
        unavailable.
        """
        if fcntl is None:
            yield False
            return
        try:
            fd = os.open(
                os.path.join(self.root, _COUNTERS_LOCK_FILE),
                os.O_CREAT | os.O_RDWR,
                0o644,
            )
        except OSError:
            yield False
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield True
        finally:
            os.close(fd)  # releases the flock

    def counters(self) -> "dict[str, int]":
        """Store-lifetime counters (e.g. runner bundle skips).

        Unlike :attr:`stats` these survive the process: they live in a
        ``counters.json`` beside the schema stamp, so ``cache stats``
        can report behaviour accumulated across CLI runs and CI jobs.
        """
        try:
            with open(self._counters_path(), "rb") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            return {}
        except _CORRUPT_ERRORS:
            return {}
        if not isinstance(raw, dict):
            return {}
        return {
            str(key): int(value)
            for key, value in raw.items()
            if isinstance(value, (int, float))
        }

    def bump_counter(self, name: str, delta: int = 1) -> None:
        """Increment a persistent counter under the counter interlock."""
        self.bump_counters({name: delta})

    def bump_counters(self, deltas: "dict[str, int]") -> None:
        """Increment several persistent counters in one locked write.

        The whole read-modify-write holds the advisory counter lock, so
        concurrent writers — daemon request handlers, pool workers, and
        parallel CLI runs sharing one store — serialize and never lose
        increments.  The runner folds a whole fan-out's shared-memory
        counters in a single RMW instead of one file rewrite per name;
        zero deltas are skipped.
        """
        deltas = {name: d for name, d in deltas.items() if d}
        if not deltas:
            return
        with self._counters_lock():
            counters = self.counters()
            for name, delta in deltas.items():
                counters[name] = counters.get(name, 0) + delta
            try:
                self._atomic_write_bytes(
                    self._counters_path(),
                    json.dumps(counters, sort_keys=True).encode(),
                )
            except OSError:
                self.stats.write_errors += 1

    def buffered_counters(self, flush_every: int = 16) -> "CounterBuffer":
        """A :class:`CounterBuffer` batching bumps against this store."""
        return CounterBuffer(self, flush_every=flush_every)

    # ------------------------------------------------------------------
    # Stale-temp sweeping and whole-store clearing.
    # ------------------------------------------------------------------

    @staticmethod
    def _stale_temp_age_from_env() -> float:
        return env_float(
            "REPRO_STORE_TMP_MAX_AGE_S", _STALE_TEMP_SECONDS
        )

    def sweep_stale_temps(
        self, max_age_seconds: "float | None" = None
    ) -> int:
        """Remove orphaned ``.tmp-*`` files from crashed writers.

        Temp files are invisible to :meth:`entries` (and therefore to
        :meth:`gc`, :meth:`total_bytes`, and the size cap), so a writer
        that died between ``mkstemp`` and ``os.replace`` used to leak
        its temp forever.  This sweep — invoked from :meth:`gc` and
        :meth:`clear` — unlinks temps older than the age gate
        (default 1h, ``REPRO_STORE_TMP_MAX_AGE_S``); younger ones are
        presumed to belong to a live in-flight writer and survive.
        Swept files are tallied in the persistent ``stale_temps_swept``
        counter so accumulation is observable in ``cache stats``.
        """
        if max_age_seconds is None:
            max_age_seconds = self._stale_temp_age_from_env()
        cutoff = time.time() - max_age_seconds
        swept = 0
        for directory in (
            self.root,
            self._traces_dir,
            self._results_dir,
            self._estimates_dir,
        ):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.startswith(_TMP_PREFIX):
                    continue
                path = os.path.join(directory, name)
                try:
                    if os.stat(path).st_mtime >= cutoff:
                        continue
                    os.unlink(path)
                except OSError:
                    continue
                swept += 1
        if swept:
            self.stats.stale_temps_swept += swept
            self.bump_counter("stale_temps_swept", swept)
        return swept

    def clear(self) -> int:
        """Remove every entry (the store directory itself survives).

        Entries queued for remote write-back are pinned exactly like in
        :meth:`gc` — unlinking one mid-queue would make the background
        writer ship a vanished file and silently drop the fleet's copy.
        Pinned entries are skipped (tallied in
        ``stats.pinned_skipped``) and survive until the flush lands.

        Stale temp files are swept too (age-gated, so a concurrent
        writer's in-flight temp survives); they do not count toward the
        returned entry total.
        """
        pinned = (
            self.remote.pending_paths() if self.remote is not None
            else frozenset()
        )
        removed = 0
        skipped = 0
        for entry in self.entries():
            if entry.path in pinned:
                skipped += 1
                continue
            try:
                os.unlink(entry.path)
            except OSError:
                continue
            removed += 1
        self.sweep_stale_temps()
        self.stats.pinned_skipped += skipped
        # With pinned survivors the directory is not empty; force a
        # rescan instead of asserting an exact zero.
        self._running_total = None if skipped else 0
        return removed

    def describe(self) -> dict:
        """Summary used by ``repro cache stats`` (and tests)."""
        entries = self.entries()
        traces = [e for e in entries if e.kind == "trace"]
        results = [e for e in entries if e.kind == "result"]
        estimates = [e for e in entries if e.kind == "estimate"]
        return {
            "root": self.root,
            "schema": SCHEMA_VERSION,
            "traces": len(traces),
            "trace_bytes": sum(e.size_bytes for e in traces),
            "results": len(results),
            "result_bytes": sum(e.size_bytes for e in results),
            "estimates": len(estimates),
            "estimate_bytes": sum(e.size_bytes for e in estimates),
            "total_bytes": sum(e.size_bytes for e in entries),
            "max_bytes": self.max_bytes,
            "counters": self.counters(),
            "age_seconds": (
                time.time() - min(e.mtime for e in entries)
                if entries
                else 0.0
            ),
            "remote": (
                self.remote.describe() if self.remote is not None
                else None
            ),
        }


class CounterBuffer:
    """In-memory accumulator batching persistent-counter bumps.

    Every :meth:`ArtifactStore.bump_counters` call is a locked
    read-modify-write of ``counters.json``; a busy writer (the service
    daemon tallies several counters per request) would serialize on
    that file.  A buffer folds deltas in memory and flushes them as
    *one* locked RMW every ``flush_every`` bump calls — conservation
    still holds because the flush goes through the same interlock.
    Callers must :meth:`flush` (or use the buffer as a context manager)
    before exiting, or the tail of the batch is lost.
    """

    def __init__(
        self, store: ArtifactStore, flush_every: int = 16
    ) -> None:
        self.store = store
        self.flush_every = max(1, flush_every)
        self._pending: "dict[str, int]" = {}
        self._bumps_since_flush = 0

    def bump(self, name: str, delta: int = 1) -> None:
        self.bump_many({name: delta})

    def pending(self) -> "dict[str, int]":
        """Deltas accumulated since the last flush (observability)."""
        return dict(self._pending)

    def bump_many(self, deltas: "dict[str, int]") -> None:
        for name, delta in deltas.items():
            if delta:
                self._pending[name] = self._pending.get(name, 0) + delta
        self._bumps_since_flush += 1
        if self._bumps_since_flush >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write all pending deltas in one locked read-modify-write."""
        pending, self._pending = self._pending, {}
        self._bumps_since_flush = 0
        if pending:
            self.store.bump_counters(pending)

    def __enter__(self) -> "CounterBuffer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()
