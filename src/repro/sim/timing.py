"""Per-event cycle costs of the limited-overlap timing model.

The paper uses cycle-accurate out-of-order cores; we approximate the
timing *effects* that matter for its results: on-chip hits are cheap,
dependent off-chip misses stall the core for the full memory round trip,
independent misses overlap (bounded by the dependence structure in the
trace, which yields the Table 2 MLP values), and prefetch-buffer hits
cost roughly an L2 access.

Out-of-order execution partially hides even dependent on-chip latencies;
the ``*_indep`` costs model accesses off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.dram import Priority

#: Per-core demand-priority classes an asymmetric mix may assign
#: (``!high`` / ``!low`` in a mix spec).  ``high`` is the normal demand
#: class; a ``low`` core's demand fetches queue behind *all* outstanding
#: channel work, so equal-priority co-runners (and the prefetcher's
#: meta-data, which is always low priority) are never delayed behind it
#: — the bandwidth-arbitration side of rate-based asymmetric scheduling.
PRIORITY_CLASSES = ("high", "low")


def demand_priority(priority_class: "str | None") -> Priority:
    """Map a core's priority class to its DRAM arbitration priority.

    ``None`` (no class recorded on the trace) means the default demand
    class.  Unknown classes are rejected here — at engine construction —
    rather than surfacing as silent HIGH-priority fallbacks mid-run.
    """
    if priority_class is None or priority_class == "high":
        return Priority.HIGH
    if priority_class == "low":
        return Priority.LOW
    raise ValueError(
        f"unknown priority class {priority_class!r}; "
        f"expected one of {PRIORITY_CLASSES}"
    )


@dataclass(frozen=True)
class TimingModel:
    """Cycle charges by event type (defaults follow paper Table 1)."""

    #: L1 load-to-use (mostly folded into per-record work).
    l1_hit: float = 0.0
    #: Victim-buffer recovery.
    victim_hit: float = 3.0
    #: Shared L2 hit on the dependence chain.
    l2_hit_dep: float = 20.0
    #: Shared L2 hit off the dependence chain (overlapped by OoO core).
    l2_hit_indep: float = 4.0
    #: Consuming a prefetched block from the prefetch buffer (dependent).
    prefetch_hit_dep: float = 8.0
    #: Consuming a prefetched block off the dependence chain.
    prefetch_hit_indep: float = 2.0
    #: Stride-buffer hit (buffer sits at the L2/memory controller).
    stride_hit_dep: float = 20.0
    stride_hit_indep: float = 4.0
    #: Issue overhead of an off-chip miss that does not stall (slot
    #: occupancy in the load-store queue / MSHR allocation).
    miss_issue_overhead: float = 2.0
    #: Maximum off-chip misses one core can have outstanding (the ROB /
    #: LSQ window of the paper's 96-entry out-of-order core).  Dependence
    #: chains usually bound overlap well below this; the window catches
    #: pathological independent bursts.
    core_miss_window: int = 8

    def __post_init__(self) -> None:
        for name in (
            "l1_hit",
            "victim_hit",
            "l2_hit_dep",
            "l2_hit_indep",
            "prefetch_hit_dep",
            "prefetch_hit_indep",
            "stride_hit_dep",
            "stride_hit_indep",
            "miss_issue_overhead",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.core_miss_window <= 0:
            raise ValueError("core_miss_window must be positive")

    def l2_hit(self, dep: bool) -> float:
        return self.l2_hit_dep if dep else self.l2_hit_indep

    def prefetch_hit(self, dep: bool) -> float:
        return self.prefetch_hit_dep if dep else self.prefetch_hit_indep

    def stride_hit(self, dep: bool) -> float:
        return self.stride_hit_dep if dep else self.stride_hit_indep
