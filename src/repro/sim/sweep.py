"""Config-parallel sweep engine: one shared pass over a whole grid.

Every sweep experiment (fig7's sampling sweep, the mix-contention
L2 x DRAM grid, fig5's metadata sweeps) simulates many configurations of
the *same trace*.  Run cell-by-cell, each cell re-derives work that does
not depend on the configuration at all:

* the trace itself (a cold generation costs ~2.5 s per recipe at bench
  scale),
* the native-typed trace columns the batched engine reads
  (``_native_columns``),
* the STMS metadata classification — every record's index bucket and
  tag, a full vectorized pass per cell.

:func:`run_sweep` hoists all of it.  A sweep invocation materializes the
trace once, then classifies the metadata for *every distinct index
geometry in the grid* in one stacked pass: the hash product is computed
once per trace column and masked against a config axis of bucket masks
(:func:`repro.core.index_table.stacked_metadata_columns`), so adding
cells that share a geometry is free and adding a new geometry costs one
cheap mask over the precomputed hash, not a new pass.  Each cell then
runs through the existing batched engine with the shared columns
injected (``BatchRunState`` pulls them from :class:`SweepShared` keyed
by the prefetcher's ``metadata_geometry()``).

What is *not* shared is the simulated machine state: the cells of a
sweep observe genuinely different cache, stream-engine, and DRAM
histories (a different sampling probability changes index contents,
hence streams, hence timing), so per-cell dynamic state cannot be
merged without changing results.  The shared pass therefore covers
exactly the config-independent precomputation, and every cell remains
bit-identical to the scalar reference engine — pinned by the sweep
cases in ``tests/sim/test_engine_differential.py``.

Fallback semantics: a cell the shared path cannot express — the scalar
engine was requested, or the temporal prefetcher exposes no geometry —
is handed back to :func:`repro.sim.runner.run_job` unchanged and
counted in ``SessionStats.sweep_fallbacks``, so coverage is never
silently reduced and de-vectorization is observable (``repro cache
stats``).  Results land in the session/store under the existing
per-cell keys: warm hits and single-cell fetches keep working
unchanged.  ``REPRO_SWEEP=off`` disables grouping entirely.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.index_table import stacked_metadata_columns
from repro.sim.engine import resolve_engine
from repro.sim.metrics import SimResult
from repro.sim.session import SimSession, _freeze, get_session
from repro.workloads.trace import Trace


def sweep_enabled() -> bool:
    """Whether the runner groups grid jobs into sweep invocations."""
    return os.environ.get("REPRO_SWEEP", "on") != "off"


class SweepShared:
    """Config-independent precomputation shared by one sweep invocation.

    Holds the trace and the per-geometry metadata columns.  The batched
    engine asks for columns via :meth:`metadata_columns` keyed by the
    prefetcher's ``metadata_geometry()``; geometries registered up
    front via :meth:`precompute` are classified together in one stacked
    pass, and an unregistered geometry is computed (and cached) on
    first request, so handing the object to any cell is always safe.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._blocks_arrays = [np.asarray(b) for b in trace.blocks]
        self._columns: "dict[tuple, tuple[list, list | None]]" = {}

    def precompute(self, geometries: "list[tuple]") -> None:
        """Classify all missing geometries in one stacked pass."""
        missing = [
            g for g in dict.fromkeys(geometries) if g not in self._columns
        ]
        if missing:
            self._columns.update(
                stacked_metadata_columns(self._blocks_arrays, missing)
            )

    def adopt_arrays(
        self,
        arrays_by_geometry: "dict[tuple, tuple[list, list | None]]",
    ) -> None:
        """Seed geometries from attached shared-memory array columns.

        ``arrays_by_geometry`` maps geometries to per-core ndarray
        columns (:func:`repro.sim.shm.attach`'s second return value) —
        the classification already ran once in the parent, so adopting
        costs only the native-list conversion the engine consumes.
        Geometries already present are kept.
        """
        converted: "dict[int, list]" = {}

        def _tolist(columns: "list") -> list:
            key = id(columns)
            if key not in converted:
                converted[key] = [np.asarray(c).tolist() for c in columns]
            return converted[key]

        for geometry, (buckets, tags) in arrays_by_geometry.items():
            if geometry in self._columns:
                continue
            self._columns[geometry] = (
                _tolist(buckets),
                None if tags is None else _tolist(tags),
            )

    def metadata_columns(
        self, geometry: "tuple"
    ) -> "tuple[list, list | None]":
        """Bucket/tag columns for one index geometry (cached)."""
        columns = self._columns.get(geometry)
        if columns is None:
            self.precompute([geometry])
            columns = self._columns[geometry]
        return columns


def job_geometries(jobs: "list", cores: int) -> "list[tuple]":
    """Index geometries of a job list's vectorizable STMS cells.

    The two-level scheduler classifies these once in the parent
    (:func:`repro.core.index_table.stacked_metadata_arrays`) and exports
    the columns through the shared-memory trace plane, so cell shards
    never re-derive them.
    """
    from repro.sim.runner import _job_configs

    geometries: "list[tuple]" = []
    for job in jobs:
        sim_config, stms_config = _job_configs(job, cores)
        if stms_config is not None and (
            resolve_engine(sim_config.engine) != "scalar"
        ):
            geometries.append(
                (stms_config.index_buckets, stms_config.tag_bits)
            )
    return geometries


def run_sweep(
    jobs: "list",
    session: "SimSession | None" = None,
    shared: "SweepShared | None" = None,
) -> "list[SimResult]":
    """Run a group of jobs sharing one trace as one sweep invocation.

    All ``jobs`` must share a ``trace_key()`` (the runner groups them
    before calling).  Cached cells are served from the session tiers
    exactly as :func:`repro.sim.runner.run_job` would serve them; only
    the cells that actually need simulating enter the shared pass, so a
    warm grid costs no precomputation at all.

    ``shared`` (a prebuilt :class:`SweepShared`, e.g. around a
    shared-memory-attached trace with adopted metadata columns) short-
    circuits the trace acquisition and any classification it already
    carries; it is a pure compute shortcut — cache keys and results are
    identical with or without it.
    """
    from repro.sim.runner import (
        _job_configs,
        job_result_key,
        make_factory,
        run_job,
    )

    if session is None:
        session = get_session()
    if not jobs:
        return []
    first = jobs[0]
    if shared is not None:
        trace = shared.trace
    else:
        trace = session.trace(
            first.workload,
            scale=first.scale,
            cores=first.cores,
            seed=first.seed,
            records_per_core=first.records_per_core,
        )
    results: "list[SimResult | None]" = [None] * len(jobs)
    # Cache probe first: a sweep invocation only precomputes for cells
    # it will actually simulate.
    pending: "list[int]" = []
    for index, job in enumerate(jobs):
        cached = session.lookup_result(job_result_key(job, trace))
        if cached is not None:
            results[index] = cached
        else:
            pending.append(index)
    if not pending:
        return results  # type: ignore[return-value]

    plans = []
    geometries = []
    for index in pending:
        job = jobs[index]
        sim_config, stms_config = _job_configs(job, trace.cores)
        vectorizable = resolve_engine(sim_config.engine) != "scalar"
        if vectorizable and stms_config is not None:
            geometries.append(
                (stms_config.index_buckets, stms_config.tag_bits)
            )
        plans.append((index, job, sim_config, stms_config, vectorizable))

    if shared is None:
        shared = SweepShared(trace)
    shared.precompute(geometries)

    cells = 0
    fallbacks = 0
    for index, job, sim_config, stms_config, vectorizable in plans:
        if not vectorizable:
            # Scalar engine requested: per-cell reference path, never
            # silently skipped.
            results[index] = run_job(job, session)
            fallbacks += 1
            continue
        factory_options = dict(job.factory_options)
        factory = make_factory(job.kind, stms_config, **factory_options)
        temporal_key = (
            job.kind.value,
            _freeze(stms_config),
            tuple(sorted(factory_options.items())),
        )
        results[index] = session.simulate(
            trace,
            sim_config,
            temporal_key,
            factory,
            label=job.kind.value,
            shared=shared,
        )
        cells += 1

    session.stats.sweep_invocations += 1
    session.stats.sweep_cells += cells
    session.stats.sweep_fallbacks += fallbacks
    if session.store is not None:
        session.store.bump_counter("sweep_invocations", 1)
        if cells:
            session.store.bump_counter("sweep_grouped_cells", cells)
        if fallbacks:
            session.store.bump_counter("sweep_fallbacks", fallbacks)
    return results  # type: ignore[return-value]
