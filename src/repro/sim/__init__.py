"""Trace-driven simulation engine, timing model, metrics, and runners.

The engine replays per-core traces through the CMP hierarchy with a
limited-overlap timing model: cores advance local clocks, dependent
off-chip misses stall, independent ones overlap, and all DRAM traffic —
demand, write-back, prefetch fills, and STMS meta-data — shares one
bandwidth-regulated channel with demand priority.
"""

from repro.sim.engine import SimConfig, Simulator
from repro.sim.metrics import CoverageCounts, SimResult
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    compare_prefetchers,
    job_options,
    run_job,
    run_workload,
)
from repro.sim.session import SimSession, get_session, set_session
from repro.sim.store import ArtifactStore, StoreStats, TraceRef
from repro.sim.timing import TimingModel

__all__ = [
    "SimConfig",
    "Simulator",
    "CoverageCounts",
    "SimResult",
    "PrefetcherKind",
    "SimJob",
    "ExperimentRunner",
    "SimSession",
    "ArtifactStore",
    "StoreStats",
    "TraceRef",
    "compare_prefetchers",
    "get_session",
    "set_session",
    "job_options",
    "run_job",
    "run_workload",
    "TimingModel",
]
