"""Remote object-store tier: read-through / write-back over HTTP.

The artifact store's two tiers (session memory, local disk) are both
per-machine; this module adds the third — a remote object store shared
by a whole CI fleet and every developer machine, speaking a minimal
HTTP protocol (``GET``/``PUT``/``HEAD`` ``/trace/<digest>`` and
``/result/<digest>`` plus ``GET /schema``) over stdlib
:mod:`http.client`.  The server side is
:mod:`repro.service.objectstore` (``repro store serve``); the running
simulation daemon advertises the same protocol, so any ``repro serve``
instance doubles as a warm peer.

Tier semantics, mirroring the paper's off-chip metadata argument (keep
the shared copy in the cheap distant tier, promote on use):

* **read-through** — a local-disk miss probes the remote; a hit is
  written into the local tier first, so the promotion is paid once and
  every later access is local.
* **write-back** — local writes enqueue an asynchronous remote upload
  (bounded retry + exponential backoff on a background thread); the
  simulation never waits on the network.  Queued entries are *pinned*
  against local GC until the flush lands.
* **never corrupt, never stall** — the peer's ``/schema`` stamp is
  verified before any byte is trusted (mismatch = the remote is
  treated as permanently cold); payloads are digest-verified against
  the ``X-Repro-Payload-Digest`` header, quarantined and refetched
  once on mismatch; and a circuit breaker (N consecutive transport
  failures opens the breaker for T seconds) turns a remote outage into
  today's local-only behaviour with ``remote_errors`` /
  ``remote_skipped`` counters instead of a stalled simulation.

Knobs: ``REPRO_REMOTE_URL`` attaches the tier, ``REPRO_REMOTE=off``
detaches it regardless, ``REPRO_REMOTE_TIMEOUT_S`` bounds each request,
``REPRO_REMOTE_RETRIES`` bounds write-back re-attempts, and
``REPRO_REMOTE_BREAKER_N`` / ``REPRO_REMOTE_BREAKER_COOLDOWN_S`` shape
the breaker.
"""

from __future__ import annotations

import hashlib
import http.client
import os
import queue
import threading
import time
from dataclasses import dataclass, field, fields, replace
from urllib.parse import urlsplit

from repro.envknobs import env_float, env_int

#: Response/request header carrying the blake2b digest of the payload
#: bytes; the transport-integrity check on both directions.
DIGEST_HEADER = "X-Repro-Payload-Digest"
#: Response header echoing the peer store's schema stamp.
SCHEMA_HEADER = "X-Repro-Schema"

_DEFAULT_TIMEOUT_S = 5.0
_DEFAULT_RETRIES = 2
_DEFAULT_BREAKER_FAILURES = 3
_DEFAULT_BREAKER_COOLDOWN_S = 30.0

#: Transport failures (as opposed to clean 404 misses).
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def payload_digest(data: bytes) -> str:
    """Content digest of one object payload (transport integrity)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _env_float(name: str, default: float) -> float:
    """Float knob with the shared warn-once misparse behaviour."""
    return env_float(name, default)


def _env_int(name: str, default: int) -> int:
    """Integer knob with the shared warn-once misparse behaviour."""
    return env_int(name, default)


def remote_enabled() -> bool:
    """False when ``REPRO_REMOTE=off`` explicitly detaches the tier."""
    return os.environ.get("REPRO_REMOTE", "").lower() not in (
        "off", "0", "no", "false",
    )


@dataclass
class RemoteConfig:
    """Connection and resilience knobs for one remote peer."""

    url: str
    timeout_s: float = field(
        default_factory=lambda: _env_float(
            "REPRO_REMOTE_TIMEOUT_S", _DEFAULT_TIMEOUT_S
        )
    )
    #: Write-back re-attempts after the first failure (reads refetch at
    #: most once, on a digest mismatch).
    retries: int = field(
        default_factory=lambda: _env_int(
            "REPRO_REMOTE_RETRIES", _DEFAULT_RETRIES
        )
    )
    #: Consecutive transport failures that open the circuit breaker.
    breaker_failures: int = field(
        default_factory=lambda: _env_int(
            "REPRO_REMOTE_BREAKER_N", _DEFAULT_BREAKER_FAILURES
        )
    )
    #: Seconds the breaker stays open before the next probe.
    breaker_cooldown_s: float = field(
        default_factory=lambda: _env_float(
            "REPRO_REMOTE_BREAKER_COOLDOWN_S",
            _DEFAULT_BREAKER_COOLDOWN_S,
        )
    )
    #: First write-back backoff; attempt ``i`` sleeps ``base * 2**i``.
    backoff_base_s: float = 0.05


@dataclass
class RemoteStats:
    """Per-handle counters of the remote tier's behaviour."""

    hits: int = 0
    misses: int = 0
    errors: int = 0
    #: Operations short-circuited without touching the network (breaker
    #: open, or the peer's schema stamp mismatched ours).
    skipped: int = 0
    writebacks: int = 0
    writeback_errors: int = 0
    #: Payloads whose bytes did not match their digest header (dropped
    #: before touching the local tier, refetched once).
    quarantined: int = 0
    schema_mismatches: int = 0
    breaker_opens: int = 0

    def snapshot(self) -> "dict[str, int]":
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CircuitBreaker:
    """N consecutive failures open the breaker for a cooldown period.

    While open, callers skip the network entirely; after the cooldown
    one probe is allowed through — success closes the breaker, failure
    re-opens it for another full cooldown.  Not thread-safe by itself;
    :class:`RemoteStore` serializes access under its own lock.
    """

    def __init__(self, failures: int, cooldown_s: float) -> None:
        self.failures = max(1, failures)
        self.cooldown_s = cooldown_s
        self._consecutive = 0
        self._opened_at: "float | None" = None

    @property
    def is_open(self) -> bool:
        if self._opened_at is None:
            return False
        return (time.monotonic() - self._opened_at) < self.cooldown_s

    def allow(self) -> bool:
        """True when a request may try the network (closed or probing)."""
        return not self.is_open

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None

    def record_failure(self) -> bool:
        """Count one failure; True when this one opened the breaker."""
        self._consecutive += 1
        if self._consecutive >= self.failures:
            opened = self._opened_at is None or not self.is_open
            self._opened_at = time.monotonic()
            return opened
        return False


_STOP = object()


class RemoteStore:
    """HTTP client for one remote object-store peer.

    All read methods degrade to ``None``/``False`` — the remote tier
    can make a run warmer, never wronger or stuck.  Instances are
    thread-safe: stats and breaker state are lock-guarded, HTTP I/O
    runs outside the lock, and write-backs are processed by one
    background thread per instance.
    """

    def __init__(
        self,
        config: "RemoteConfig | str",
        schema: "int | None" = None,
    ) -> None:
        if isinstance(config, str):
            config = RemoteConfig(url=config)
        self.config = config
        split = urlsplit(config.url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported remote URL {config.url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        if schema is None:
            from repro.sim.store import SCHEMA_VERSION

            schema = SCHEMA_VERSION
        self.schema = schema
        self.stats = RemoteStats()
        self._lock = threading.Lock()
        self._breaker = CircuitBreaker(
            config.breaker_failures, config.breaker_cooldown_s
        )
        #: None = unverified, True = stamp matched, False = mismatch
        #: (permanently cold — never trust a byte from this peer).
        self._schema_ok: "bool | None" = None
        self._queue: "queue.Queue" = queue.Queue()
        self._writer: "threading.Thread | None" = None
        #: Paths pinned against local GC until their write-back lands
        #: (path -> number of queued uploads referencing it).
        self._pinned: "dict[str, int]" = {}
        self._pending = 0
        self._drained = threading.Condition()
        self._closed = False

    @classmethod
    def from_env(cls) -> "RemoteStore | None":
        """A remote at ``$REPRO_REMOTE_URL`` unless ``REPRO_REMOTE=off``."""
        if not remote_enabled():
            return None
        url = os.environ.get("REPRO_REMOTE_URL")
        if not url:
            return None
        try:
            return cls(RemoteConfig(url=url))
        except ValueError:
            return None

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
    ) -> "tuple[int, dict[str, str], bytes]":
        """One HTTP exchange; raises transport errors to the caller."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.config.timeout_s
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            raw = b"" if method == "HEAD" else response.read()
        finally:
            connection.close()
        lowered = {
            name.lower(): value for name, value in response.getheaders()
        }
        return response.status, lowered, raw

    def _record_failure(self) -> None:
        with self._lock:
            self.stats.errors += 1
            if self._breaker.record_failure():
                self.stats.breaker_opens += 1

    def _record_success(self) -> None:
        with self._lock:
            self._breaker.record_success()

    def _gate(self) -> bool:
        """Schema + breaker gate; True when an operation may proceed.

        A skipped operation (open breaker or mismatched peer) counts in
        ``stats.skipped``.  The schema handshake runs lazily, once per
        verification outcome: a transport failure leaves the stamp
        unverified (retried on the next operation), a mismatch is
        permanent for this handle's lifetime.
        """
        with self._lock:
            if self._schema_ok is False or not self._breaker.allow():
                self.stats.skipped += 1
                return False
            verified = self._schema_ok
        if verified:
            return True
        # Unverified: handshake outside the lock.
        try:
            status, _, raw = self._request("GET", "/schema")
        except _TRANSPORT_ERRORS:
            self._record_failure()
            return False
        if status != 200:
            self._record_failure()
            return False
        try:
            import json

            stamped = json.loads(raw.decode("utf-8")).get("schema")
        except (ValueError, UnicodeDecodeError):
            self._record_failure()
            return False
        self._record_success()
        with self._lock:
            if stamped != self.schema:
                self._schema_ok = False
                self.stats.schema_mismatches += 1
                self.stats.skipped += 1
                return False
            self._schema_ok = True
        return True

    # ------------------------------------------------------------------
    # Reads (the read-through path).
    # ------------------------------------------------------------------

    def fetch(self, kind: str, digest: str) -> "bytes | None":
        """Download one object; None on miss, outage, or bad payload.

        A payload whose bytes do not match the digest header is
        quarantined (never returned, never written locally) and
        refetched exactly once; a second bad copy counts as an error.
        """
        if not self._gate():
            return None
        for attempt in (0, 1):
            try:
                status, headers, raw = self._request(
                    "GET", f"/{kind}/{digest}"
                )
            except _TRANSPORT_ERRORS:
                self._record_failure()
                return None
            if status == 404:
                self._record_success()
                with self._lock:
                    self.stats.misses += 1
                return None
            if status != 200:
                self._record_failure()
                return None
            expected = headers.get(DIGEST_HEADER.lower())
            if expected is not None and payload_digest(raw) != expected:
                # Truncated or corrupted in flight: quarantine and
                # refetch once; a repeat failure is a real error.
                with self._lock:
                    self.stats.quarantined += 1
                if attempt == 0:
                    continue
                self._record_failure()
                return None
            self._record_success()
            with self._lock:
                self.stats.hits += 1
            return raw
        return None

    def head(self, kind: str, digest: str) -> bool:
        """True when the peer holds this object (no payload transfer)."""
        if not self._gate():
            return False
        try:
            status, _, _ = self._request("HEAD", f"/{kind}/{digest}")
        except _TRANSPORT_ERRORS:
            self._record_failure()
            return False
        self._record_success()
        return status == 200

    # ------------------------------------------------------------------
    # Writes (the write-back path).
    # ------------------------------------------------------------------

    def put(self, kind: str, digest: str, payload: bytes) -> bool:
        """Upload one object synchronously (one attempt, no retry)."""
        return self._put_once(kind, digest, payload) == "ok"

    def _put_once(self, kind: str, digest: str, payload: bytes) -> str:
        """One upload attempt: ``ok``/``transient``/``permanent``/``skipped``."""
        if not self._gate():
            return "skipped"
        try:
            status, _, _ = self._request(
                "PUT",
                f"/{kind}/{digest}",
                body=payload,
                headers={DIGEST_HEADER: payload_digest(payload)},
            )
        except _TRANSPORT_ERRORS:
            self._record_failure()
            return "transient"
        if 200 <= status < 300:
            self._record_success()
            with self._lock:
                self.stats.writebacks += 1
            return "ok"
        if status >= 500:
            self._record_failure()
            return "transient"
        # 4xx is the peer refusing this payload (size cap, digest
        # mismatch...): the transport is fine, retrying is pointless.
        self._record_success()
        return "permanent"

    def enqueue_writeback(self, kind: str, digest: str, path: str) -> bool:
        """Queue an asynchronous upload of the artifact at ``path``.

        The path is pinned (see :meth:`pending_paths`) until the
        background writer finishes with it — landed or given up — so
        local GC cannot evict an entry the fleet has not seen yet.
        """
        with self._lock:
            if self._closed or self._schema_ok is False:
                self.stats.skipped += 1
                return False
            self._pinned[path] = self._pinned.get(path, 0) + 1
        with self._drained:
            self._pending += 1
        self._queue.put((kind, digest, path))
        self._ensure_writer()
        return True

    def _ensure_writer(self) -> None:
        with self._lock:
            if self._writer is not None and self._writer.is_alive():
                return
            self._writer = threading.Thread(
                target=self._writer_loop,
                name="repro-remote-writeback",
                daemon=True,
            )
            self._writer.start()

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            kind, digest, path = item
            try:
                self._write_back_one(kind, digest, path)
            finally:
                self._unpin(path)
                with self._drained:
                    self._pending -= 1
                    self._drained.notify_all()

    def _write_back_one(self, kind: str, digest: str, path: str) -> None:
        """Bounded-retry upload with exponential backoff."""
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except OSError:
            # Entry vanished (cleared/evicted by an explicit wipe)
            # before the flush: nothing to upload.
            with self._lock:
                self.stats.writeback_errors += 1
            return
        for attempt in range(self.config.retries + 1):
            if attempt:
                time.sleep(
                    self.config.backoff_base_s * (2 ** (attempt - 1))
                )
            outcome = self._put_once(kind, digest, payload)
            if outcome in ("ok", "skipped"):
                # Skips (open breaker, mismatched peer) already counted;
                # the outage path must not also look like an error storm.
                return
            if outcome == "permanent":
                break
        with self._lock:
            self.stats.writeback_errors += 1

    def _unpin(self, path: str) -> None:
        with self._lock:
            count = self._pinned.get(path, 0) - 1
            if count <= 0:
                self._pinned.pop(path, None)
            else:
                self._pinned[path] = count

    def pending_paths(self) -> "frozenset[str]":
        """Local paths with an un-flushed write-back (GC must not evict)."""
        with self._lock:
            return frozenset(self._pinned)

    def flush(self, timeout_s: float = 60.0) -> bool:
        """Wait for the write-back queue to drain; False on timeout."""
        with self._drained:
            return self._drained.wait_for(
                lambda: self._pending == 0, timeout=timeout_s
            )

    def close(self, flush_timeout_s: float = 60.0) -> None:
        """Flush pending write-backs and stop the background writer."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.flush(flush_timeout_s)
        if self._writer is not None and self._writer.is_alive():
            self._queue.put(_STOP)
            self._writer.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> "dict[str, int]":
        with self._lock:
            return self.stats.snapshot()

    def describe(self) -> dict:
        with self._lock:
            return {
                "url": self.config.url,
                "schema_verified": self._schema_ok,
                "breaker_open": self._breaker.is_open,
                "pending_writebacks": self._pending,
                **{
                    f"remote_{name}": value
                    for name, value in self.stats.snapshot().items()
                },
            }
