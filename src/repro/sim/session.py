"""Simulation session: two-tier (memory -> disk) caching of artifacts.

Every figure experiment re-simulates baselines and regenerates traces
that other experiments already produced.  A :class:`SimSession` makes
that repetition free: traces are keyed by their generation recipe,
simulation results by the content hash of the trace plus the full
machine/prefetcher configuration.  Simulations are deterministic
functions of those keys (generators and samplers are seeded), so
memoization is semantics-preserving.

Two tiers back the session:

* **memory** — the process-local dictionaries (optionally LRU-capped
  via ``max_memory_results``); hits return the *same objects* handed to
  earlier callers, so treat :class:`~repro.sim.metrics.SimResult` as
  immutable (every in-repo consumer only reads it).
* **disk** — an optional :class:`~repro.sim.store.ArtifactStore`
  shared across processes: pool workers, successive CLI runs, and CI
  jobs all read and write the same content-addressed entries.  The
  store attaches automatically when ``REPRO_STORE_DIR`` is set.

The module-level session (:func:`get_session`) is shared by
:mod:`repro.sim.runner` and therefore by every experiment driver, the
CLI, and the benchmarks; each worker process of the parallel
:class:`~repro.sim.runner.ExperimentRunner` gets its own.

Set ``REPRO_SIM_CACHE=0`` (or construct ``SimSession(enabled=False)``)
to force every run to generate and simulate from scratch — both tiers
are bypassed, and the results are bit-identical to the cached path.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass

import numpy as np

from repro.sim.engine import SimConfig, Simulator, resolve_engine
from repro.sim.metrics import SimResult
from repro.sim.store import (
    ArtifactStore,
    TraceRef,
    load_trace_ref,
    result_digest,
    trace_digest,
)
from repro.workloads.suite import ScalePreset, generate, get_scale
from repro.workloads.trace import Trace


@dataclass
class SessionStats:
    """Cache behaviour counters (observability for tests and tuning).

    ``*_hits`` count memory-tier hits, ``*_store_hits`` disk-tier hits,
    and ``*_misses`` actual generations/simulations.
    """

    trace_hits: int = 0
    trace_store_hits: int = 0
    trace_misses: int = 0
    sim_hits: int = 0
    sim_store_hits: int = 0
    sim_misses: int = 0
    memory_evictions: int = 0
    #: Whole job bundles the runner served from the store without
    #: spawning a worker (store-aware scheduling).
    bundle_skips: int = 0
    #: Sweep invocations: grid-job groups the runner pushed through the
    #: config-parallel engine (``sim/sweep.py``) as one shared pass.
    sweep_invocations: int = 0
    #: Grid cells simulated inside a sweep invocation on the shared
    #: (config-parallel) path.
    sweep_cells: int = 0
    #: Grid cells a sweep invocation had to hand back to the per-cell
    #: engine (scalar engine requested, or no vectorizable form) —
    #: nonzero values flag silent de-vectorization.
    sweep_fallbacks: int = 0
    #: Shared-memory trace-plane segments this session's runner
    #: exported for cell shards (parent side of the zero-copy plane).
    shm_exports: int = 0
    #: Trace-plane segments attached by workers (folded back into the
    #: parent's stats after a fan-out).
    shm_attaches: int = 0
    #: Bytes served to workers as zero-copy shared-memory views.
    shm_bytes_zero_copy: int = 0
    #: Bytes shipped to workers on the pickle/npz fallback path
    #: (TraceRef file sizes) — the plane's savings are the contrast
    #: between this and :attr:`shm_bytes_zero_copy`.
    shm_bytes_pickled: int = 0
    #: Remote-tier behaviour (the store's HTTP peer, if configured).
    #: Folded from the store's :class:`~repro.sim.remote.RemoteStore`
    #: by :meth:`SimSession.fold_remote_stats`; ``remote_hits`` are
    #: objects read-through from the peer, ``remote_skipped`` are
    #: requests suppressed by the open circuit breaker.
    remote_hits: int = 0
    remote_misses: int = 0
    remote_errors: int = 0
    remote_skipped: int = 0
    remote_writebacks: int = 0
    #: Budgeted-sampling layer (``sim/sampling.py`` via the
    #: ``run_sampled_sweep`` helper): grid cells selected under a
    #: budget, cells run through the same helper at full budget (the
    #: exact contrast for ``cache stats``), and sampled cells served
    #: warm from the cache tiers instead of simulated — nonzero reuse
    #: on a re-run is the store-backed refinement property.
    sampling_sampled_cells: int = 0
    sampling_exact_cells: int = 0
    sampling_reused_cells: int = 0


def _freeze(value):
    """Recursively convert a value into a hashable cache-key component."""
    if is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in fields(value)
        )
    if isinstance(value, dict):
        return tuple(
            sorted((k, _freeze(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (arrays + metadata), cached on the trace.

    Traces are treated as immutable once generated; the digest is
    computed once and stored on the instance.
    """
    cached = getattr(trace, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(trace.name.encode())
    digest.update(str(trace.warmup_fraction).encode())
    digest.update(str(trace.working_set_blocks).encode())
    if trace.core_workloads is not None:
        digest.update(repr(tuple(trace.core_workloads)).encode())
    if trace.core_warmup is not None:
        digest.update(repr(tuple(trace.core_warmup)).encode())
    if trace.core_rates is not None:
        digest.update(repr(tuple(trace.core_rates)).encode())
    if trace.core_priorities is not None:
        digest.update(repr(tuple(trace.core_priorities)).encode())
    for core in range(trace.cores):
        for column in (trace.blocks, trace.work, trace.dep, trace.write):
            array = np.asarray(column[core])
            digest.update(str(array.dtype).encode())
            digest.update(array.tobytes())
    fingerprint = digest.hexdigest()
    trace._fingerprint = fingerprint
    return fingerprint


def trace_recipe_key(
    workload: str,
    preset: ScalePreset,
    cores: int,
    seed: int,
    records_per_core: "int | None",
) -> tuple:
    """The canonical trace cache key; equals ``SimJob.trace_key()``.

    Mix workloads are canonicalized first, so every spelling of the
    same recipe (``mix:a+a``, ``mix:2xa``, a preset name) addresses one
    store entry.
    """
    from repro.workloads.mix import MixRecipe, is_mix

    if is_mix(workload):
        workload = MixRecipe.parse(workload).name
    return (workload, _freeze(preset), cores, seed, records_per_core)


class SimSession:
    """Two-tier (memory -> disk) memo of traces and simulation results.

    Memo-tier accesses are guarded by a reentrant lock so sessions can
    be shared across threads — the service daemon offloads simulations
    from its event loop onto worker threads, all submitting through one
    session.  The lock scopes to cache bookkeeping only: trace
    generation and simulation proper run outside it, so two *distinct*
    keys still compute concurrently (equal keys are the single-flight
    layer's job — the session may at worst compute one twice, never
    corrupt state).
    """

    def __init__(
        self,
        enabled: "bool | None" = None,
        store: "ArtifactStore | None | str" = "auto",
        max_memory_results: "int | None" = None,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_SIM_CACHE", "1") != "0"
        self.enabled = enabled
        if store == "auto":
            store = ArtifactStore.from_env() if enabled else None
        #: The persistent tier; None keeps the session process-local.
        #: A disabled session never touches a store (full recompute).
        self.store: "ArtifactStore | None" = store if enabled else None
        self.max_memory_results = max_memory_results
        self.stats = SessionStats()
        #: Reentrant: ``simulate`` -> ``lookup_result`` nests, and the
        #: guarded sections are all short (no generation/simulation).
        self._lock = threading.RLock()
        self._traces: "dict[tuple, Trace]" = {}
        #: Keys seeded into the memory tier from a disk entry that has
        #: not been *looked up* yet.  The disk read is attributed as a
        #: store hit on the first lookup, not at priming time —
        #: otherwise one acquisition would be double-counted (a store
        #: hit when primed plus a memory hit when first used, which is
        #: exactly what happens when the memory tier shadows a disk
        #: entry warmed by another process in the same run).
        self._primed: "set[tuple]" = set()
        self._results: "OrderedDict[tuple, SimResult]" = OrderedDict()
        #: Remote-tier snapshot already folded into ``stats`` (so
        #: repeated folds add only growth; see :meth:`fold_remote_stats`).
        self._remote_folded: "dict[str, int]" = {}

    def attach_store(self, store: "ArtifactStore | None") -> None:
        """Set the disk tier (used by pool workers joining a run)."""
        self.store = store if self.enabled else None

    # ------------------------------------------------------------------
    # Trace generation.
    # ------------------------------------------------------------------

    def trace(
        self,
        workload: str,
        scale: "str | ScalePreset" = "bench",
        cores: int = 4,
        seed: int = 7,
        records_per_core: "int | None" = None,
    ) -> Trace:
        """Generate (or reuse, from either tier) a suite workload trace."""
        preset = get_scale(scale)
        key = trace_recipe_key(
            workload, preset, cores, seed, records_per_core
        )
        if self.enabled:
            with self._lock:
                cached = self._traces.get(key)
                if cached is not None:
                    if key in self._primed:
                        # First lookup of a primed entry: this is the
                        # disk read's attribution (exactly once per
                        # acquisition).
                        self._primed.discard(key)
                        self.stats.trace_store_hits += 1
                    else:
                        self.stats.trace_hits += 1
                    return cached
            if self.store is not None:
                # Disk read outside the lock: a slow npz load must not
                # stall other threads' memo hits.
                loaded = self.store.load_trace(trace_digest(key))
                if loaded is not None:
                    with self._lock:
                        self.stats.trace_store_hits += 1
                        self._traces[key] = loaded
                    return loaded
        with self._lock:
            self.stats.trace_misses += 1
        trace = generate(
            workload,
            scale=preset,
            cores=cores,
            seed=seed,
            records_per_core=records_per_core,
        )
        if self.enabled:
            with self._lock:
                self._traces[key] = trace
            if self.store is not None:
                self.store.save_trace(trace_digest(key), trace)
        return trace

    def prime_trace(
        self,
        workload: str,
        scale: "str | ScalePreset",
        cores: int,
        seed: int,
        records_per_core: "int | None",
        ref: TraceRef,
    ) -> bool:
        """Seed the memory tier from a shipped :class:`TraceRef`.

        Workers of the parallel runner receive (hash, path) references
        instead of regenerating their bundle's trace; a missing or
        unreadable file simply leaves the normal lookup path in charge.
        """
        if not self.enabled:
            return False
        key = trace_recipe_key(
            workload, get_scale(scale), cores, seed, records_per_core
        )
        with self._lock:
            if key in self._traces:
                return True
        trace = load_trace_ref(ref)
        if trace is None:
            return False
        # No counter here: the store hit is attributed on first lookup
        # (see ``trace``), so priming + use counts one acquisition once.
        with self._lock:
            self._traces[key] = trace
            self._primed.add(key)
        return True

    def cached_trace(self, key: tuple) -> "Trace | None":
        """Memory-tier trace lookup (no generation, no counters)."""
        if not self.enabled:
            return None
        with self._lock:
            return self._traces.get(key)

    def adopt_shm_trace(
        self,
        workload: str,
        scale: "str | ScalePreset",
        cores: int,
        seed: int,
        records_per_core: "int | None",
        trace: Trace,
        nbytes: int = 0,
    ) -> bool:
        """Seed the memory tier with a shared-memory-attached trace.

        Pool workers call this after attaching the parent's trace-plane
        segment (:mod:`repro.sim.shm`): the zero-copy trace serves every
        later lookup in this process, so the worker neither re-reads the
        ``.npz`` nor regenerates.  The attach is counted regardless of
        whether the memory tier already held the trace (the segment was
        mapped either way); a disabled session refuses the seed — it
        must force full recomputation.
        """
        with self._lock:
            self.stats.shm_attaches += 1
            self.stats.shm_bytes_zero_copy += nbytes
            if not self.enabled:
                return False
            key = trace_recipe_key(
                workload, get_scale(scale), cores, seed, records_per_core
            )
            if key not in self._traces:
                # Not marked primed: later lookups count as plain
                # memory hits (the bytes never touched the disk tier
                # here); the shm_* counters carry the provenance.
                self._traces[key] = trace
            return True

    def adopt_trace(self, key: tuple, trace: Trace) -> None:
        """Seed the memory tier with a store-read trace the caller is
        using *right now* (the store-aware scheduler fingerprints it
        immediately).  Unlike :meth:`prime_trace` the acquisition is
        attributed here — deferring it would count nothing when the
        bundle is skipped and no later lookup ever happens."""
        with self._lock:
            if self.enabled and key not in self._traces:
                self._traces[key] = trace
                self.stats.trace_store_hits += 1

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        sim_config: SimConfig,
        temporal_key,
        temporal_factory,
        label: str,
        shared=None,
    ) -> SimResult:
        """Run (or reuse, from either tier) one simulation.

        ``temporal_key`` must uniquely describe the temporal-prefetcher
        configuration that ``temporal_factory`` builds (the runner
        passes the prefetcher kind plus its full parameterization); two
        calls with equal keys must request equivalent simulations.

        ``shared`` (a sweep invocation's precomputation handle) is a
        compute shortcut only: it never enters the cache key because
        results are bit-identical with or without it.
        """
        if not self.enabled:
            with self._lock:
                self.stats.sim_misses += 1
            return Simulator(sim_config).run(
                trace, temporal_factory, label=label, shared=shared
            )
        key = self.result_key(trace, sim_config, temporal_key, label)
        cached = self.lookup_result(key)
        if cached is not None:
            return cached
        with self._lock:
            self.stats.sim_misses += 1
        result = Simulator(sim_config).run(
            trace, temporal_factory, label=label, shared=shared
        )
        self._remember(key, result)
        if self.store is not None:
            self.store.save_result(result_digest(key), result)
        return result

    @staticmethod
    def result_key(
        trace: Trace, sim_config: SimConfig, temporal_key, label: str
    ) -> tuple:
        """The content key one simulation is cached under (both tiers)."""
        return (
            trace_fingerprint(trace),
            _freeze(sim_config),
            resolve_engine(sim_config.engine),
            _freeze(temporal_key),
            label,
        )

    def lookup_result(self, key: tuple) -> "SimResult | None":
        """Probe both tiers for a result key without simulating.

        The store-aware runner uses this to decide whether a whole job
        bundle can be served without spawning a worker.  Hits count in
        :attr:`stats` exactly as :meth:`simulate` hits do; a miss
        counts nothing (the caller decides what happens next).
        """
        if not self.enabled:
            return None
        with self._lock:
            cached = self._results.get(key)
            if cached is not None:
                self.stats.sim_hits += 1
                self._results.move_to_end(key)
                return cached
        if self.store is not None:
            loaded = self.store.load_result(result_digest(key))
            if loaded is not None:
                with self._lock:
                    self.stats.sim_store_hits += 1
                    self._remember(key, loaded)
                return loaded
        return None

    def _remember(self, key: tuple, result: SimResult) -> None:
        """Admit a result to the memory tier, evicting LRU past the cap."""
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            if self.max_memory_results is not None:
                while len(self._results) > self.max_memory_results:
                    self._results.popitem(last=False)
                    self.stats.memory_evictions += 1

    def export_results(self) -> "dict[tuple, SimResult]":
        """Snapshot of the result cache (for cross-process adoption)."""
        with self._lock:
            return dict(self._results)

    def adopt_results(
        self, entries: "dict[tuple, SimResult]"
    ) -> None:
        """Merge result-cache entries computed by another session.

        Keys are content-based (trace fingerprint + full configuration),
        so entries from a worker process are valid here verbatim.
        """
        if self.enabled:
            with self._lock:
                for key, result in entries.items():
                    self._remember(key, result)

    def fold_remote_stats(self) -> None:
        """Mirror the store's remote-tier counters into session stats.

        The :class:`~repro.sim.remote.RemoteStore` counts its own
        behaviour (it lives below the store, which may be shared); this
        copies the growth since the last fold into :attr:`stats`, so
        remote activity rides the same ``SessionStats`` delta plumbing
        the parallel runner already uses to merge worker stats.
        Idempotent per delta — safe to call at every bundle boundary.
        """
        remote = self.store.remote if self.store is not None else None
        if remote is None:
            return
        snapshot = remote.stats_snapshot()
        with self._lock:
            for name in (
                "hits", "misses", "errors", "skipped", "writebacks",
            ):
                grown = snapshot.get(name, 0) - self._remote_folded.get(
                    name, 0
                )
                if grown:
                    field = f"remote_{name}"
                    setattr(
                        self.stats,
                        field,
                        getattr(self.stats, field) + grown,
                    )
            self._remote_folded = snapshot

    def clear(self) -> None:
        """Drop all memory-tier entries (the disk store is untouched)."""
        with self._lock:
            self._traces.clear()
            self._primed.clear()
            self._results.clear()


#: The process-wide session used by the runner layer.
_SESSION: SimSession | None = None


def get_session() -> SimSession:
    """The process-global session (created lazily)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = SimSession()
    return _SESSION


def set_session(session: "SimSession | None") -> "SimSession | None":
    """Swap the process-global session; returns the previous one.

    Pass ``None`` to reset (a fresh session is created on next use).
    Benchmarks use this to measure cold paths.
    """
    global _SESSION
    previous = _SESSION
    _SESSION = session
    return previous
