"""Simulation session: content-keyed memoization of traces and results.

Every figure experiment re-simulates baselines and regenerates traces
that other experiments already produced.  A :class:`SimSession` makes
that repetition free *within a process*: traces are keyed by their
generation recipe, simulation results by the content hash of the trace
plus the full machine/prefetcher configuration.  Simulations are
deterministic functions of those keys (generators and samplers are
seeded), so memoization is semantics-preserving.

The module-level session (:func:`get_session`) is shared by
:mod:`repro.sim.runner` and therefore by every experiment driver, the
CLI, and the benchmarks; each worker process of the parallel
:class:`~repro.sim.runner.ExperimentRunner` gets its own.

Results returned from the cache are the *same objects* handed to
earlier callers — treat :class:`~repro.sim.metrics.SimResult` as
immutable (every in-repo consumer only reads it).  Set the environment
variable ``REPRO_SIM_CACHE=0`` (or construct ``SimSession(enabled=
False)``) to force every run to simulate.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields, is_dataclass

import numpy as np

from repro.sim.engine import SimConfig, Simulator, resolve_engine
from repro.sim.metrics import SimResult
from repro.workloads.suite import ScalePreset, generate, get_scale
from repro.workloads.trace import Trace


@dataclass
class SessionStats:
    """Cache behaviour counters (observability for tests and tuning)."""

    trace_hits: int = 0
    trace_misses: int = 0
    sim_hits: int = 0
    sim_misses: int = 0


def _freeze(value):
    """Recursively convert a value into a hashable cache-key component."""
    if is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in fields(value)
        )
    if isinstance(value, dict):
        return tuple(
            sorted((k, _freeze(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace (arrays + metadata), cached on the trace.

    Traces are treated as immutable once generated; the digest is
    computed once and stored on the instance.
    """
    cached = getattr(trace, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(trace.name.encode())
    digest.update(str(trace.warmup_fraction).encode())
    digest.update(str(trace.working_set_blocks).encode())
    for core in range(trace.cores):
        for column in (trace.blocks, trace.work, trace.dep, trace.write):
            array = np.asarray(column[core])
            digest.update(str(array.dtype).encode())
            digest.update(array.tobytes())
    fingerprint = digest.hexdigest()
    trace._fingerprint = fingerprint
    return fingerprint


class SimSession:
    """Process-wide memo of generated traces and simulation results."""

    def __init__(self, enabled: "bool | None" = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_SIM_CACHE", "1") != "0"
        self.enabled = enabled
        self.stats = SessionStats()
        self._traces: "dict[tuple, Trace]" = {}
        self._results: "dict[tuple, SimResult]" = {}

    # ------------------------------------------------------------------
    # Trace generation.
    # ------------------------------------------------------------------

    def trace(
        self,
        workload: str,
        scale: "str | ScalePreset" = "bench",
        cores: int = 4,
        seed: int = 7,
        records_per_core: "int | None" = None,
    ) -> Trace:
        """Generate (or reuse) a suite workload trace."""
        preset = get_scale(scale)
        key = (workload, _freeze(preset), cores, seed, records_per_core)
        if self.enabled:
            cached = self._traces.get(key)
            if cached is not None:
                self.stats.trace_hits += 1
                return cached
        self.stats.trace_misses += 1
        trace = generate(
            workload,
            scale=preset,
            cores=cores,
            seed=seed,
            records_per_core=records_per_core,
        )
        if self.enabled:
            self._traces[key] = trace
        return trace

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        sim_config: SimConfig,
        temporal_key,
        temporal_factory,
        label: str,
    ) -> SimResult:
        """Run (or reuse) one simulation.

        ``temporal_key`` must uniquely describe the temporal-prefetcher
        configuration that ``temporal_factory`` builds (the runner
        passes the prefetcher kind plus its full parameterization); two
        calls with equal keys must request equivalent simulations.
        """
        if not self.enabled:
            self.stats.sim_misses += 1
            return Simulator(sim_config).run(
                trace, temporal_factory, label=label
            )
        key = (
            trace_fingerprint(trace),
            _freeze(sim_config),
            resolve_engine(sim_config.engine),
            _freeze(temporal_key),
            label,
        )
        cached = self._results.get(key)
        if cached is not None:
            self.stats.sim_hits += 1
            return cached
        self.stats.sim_misses += 1
        result = Simulator(sim_config).run(
            trace, temporal_factory, label=label
        )
        self._results[key] = result
        return result

    def export_results(self) -> "dict[tuple, SimResult]":
        """Snapshot of the result cache (for cross-process adoption)."""
        return dict(self._results)

    def adopt_results(
        self, entries: "dict[tuple, SimResult]"
    ) -> None:
        """Merge result-cache entries computed by another session.

        Keys are content-based (trace fingerprint + full configuration),
        so entries from a worker process are valid here verbatim.
        """
        if self.enabled:
            self._results.update(entries)

    def clear(self) -> None:
        """Drop all cached traces and results."""
        self._traces.clear()
        self._results.clear()


#: The process-wide session used by the runner layer.
_SESSION: SimSession | None = None


def get_session() -> SimSession:
    """The process-global session (created lazily)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = SimSession()
    return _SESSION


def set_session(session: "SimSession | None") -> "SimSession | None":
    """Swap the process-global session; returns the previous one.

    Pass ``None`` to reset (a fresh session is created on next use).
    Benchmarks use this to measure cold paths.
    """
    global _SESSION
    previous = _SESSION
    _SESSION = session
    return previous
