"""Simulation results: coverage, timing, traffic, and MLP.

Definitions follow the paper:

* **Coverage** — fraction of off-chip read misses eliminated by the
  temporal prefetcher, *in excess of* the base system's stride
  prefetcher: stride-covered accesses appear in neither numerator nor
  denominator.
* **Fully covered** — the prefetched block had arrived before the demand
  reached it; **partially covered** — the prefetch was still in flight,
  so only part of the memory latency was hidden (Fig. 9 left splits
  these).
* **MLP** — average number of outstanding off-chip demand reads while at
  least one is outstanding, per core (Table 2).
* **Overhead traffic** — meta-data and erroneous-prefetch bytes per
  useful data byte (Figs. 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.traffic import TrafficBreakdown
from repro.prefetchers.base import PrefetcherStats


@dataclass
class CoverageCounts:
    """Raw coverage tallies collected during the measured phase."""

    fully_covered: int = 0
    partially_covered: int = 0
    uncovered: int = 0
    stride_covered: int = 0

    @property
    def temporal_eligible(self) -> int:
        """Off-chip read misses the temporal prefetcher could target."""
        return self.fully_covered + self.partially_covered + self.uncovered

    @property
    def coverage(self) -> float:
        """Total coverage (full + partial), the paper's headline metric."""
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return (self.fully_covered + self.partially_covered) / eligible

    @property
    def full_coverage(self) -> float:
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return self.fully_covered / eligible

    @property
    def partial_coverage(self) -> float:
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return self.partially_covered / eligible


@dataclass(slots=True)
class _IntervalAccumulator:
    """Online union/total tracker for one core's miss intervals.

    Intervals arrive in non-decreasing start order (the core clock is
    monotonic), so the union can be merged incrementally.
    """

    total: float = 0.0
    union: float = 0.0
    _current_start: float = -1.0
    _current_end: float = -1.0
    count: int = 0

    def add(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError("interval end precedes start")
        self.total += end - start
        self.count += 1
        if self._current_end < 0:
            self._current_start, self._current_end = start, end
            return
        if start <= self._current_end:
            self._current_end = max(self._current_end, end)
        else:
            self.union += self._current_end - self._current_start
            self._current_start, self._current_end = start, end

    def finish(self) -> None:
        if self._current_end >= 0:
            self.union += self._current_end - self._current_start
            self._current_start = self._current_end = -1.0

    @property
    def mlp(self) -> float:
        if self.union <= 0:
            return 1.0 if self.count else 0.0
        return self.total / self.union


class MlpTracker:
    """Per-core interval accumulation -> miss-weighted average MLP."""

    def __init__(self, cores: int) -> None:
        self._accumulators = [_IntervalAccumulator() for _ in range(cores)]

    def add(self, core: int, start: float, end: float) -> None:
        self._accumulators[core].add(start, end)

    def result(self) -> float:
        total_weighted = 0.0
        total_count = 0
        for accumulator in self._accumulators:
            accumulator.finish()
            if accumulator.count:
                total_weighted += accumulator.mlp * accumulator.count
                total_count += accumulator.count
        if total_count == 0:
            return 0.0
        return total_weighted / total_count


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    workload: str
    prefetcher: str
    #: Trace records processed in the measured phase.
    measured_records: int
    #: Wall-clock cycles of the measured phase (max over cores).
    elapsed_cycles: float
    coverage: CoverageCounts = field(default_factory=CoverageCounts)
    #: Demand accesses that hit each level during measurement.
    l1_hits: int = 0
    victim_hits: int = 0
    l2_hits: int = 0
    #: Traffic normalization snapshot.
    traffic: "TrafficBreakdown | None" = None
    overhead_per_useful_byte: float = 0.0
    metadata_bytes: int = 0
    useful_bytes: int = 0
    #: Measured MLP of uncovered off-chip reads.
    mlp: float = 0.0
    #: Prefetcher-internal counters (issued/useful/erroneous/...).
    prefetcher_stats: "PrefetcherStats | None" = None
    #: DRAM channel utilization over the measured phase.
    dram_utilization: float = 0.0
    #: Per-core off-chip miss-address sequences (when collected).
    miss_log: "list[list[int]] | None" = None

    @property
    def throughput(self) -> float:
        """Committed records per cycle — the paper's user-IPC proxy."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.measured_records / self.elapsed_cycles

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative performance vs. a baseline run of the same trace."""
        if baseline.measured_records != self.measured_records:
            raise ValueError(
                "speedup requires runs over the same measured records"
            )
        if self.elapsed_cycles <= 0:
            return 0.0
        return baseline.elapsed_cycles / self.elapsed_cycles
