"""Simulation results: coverage, timing, traffic, and MLP.

Definitions follow the paper:

* **Coverage** — fraction of off-chip read misses eliminated by the
  temporal prefetcher, *in excess of* the base system's stride
  prefetcher: stride-covered accesses appear in neither numerator nor
  denominator.
* **Fully covered** — the prefetched block had arrived before the demand
  reached it; **partially covered** — the prefetch was still in flight,
  so only part of the memory latency was hidden (Fig. 9 left splits
  these).
* **MLP** — average number of outstanding off-chip demand reads while at
  least one is outstanding, per core (Table 2).
* **Overhead traffic** — meta-data and erroneous-prefetch bytes per
  useful data byte (Figs. 7 and 8).
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field, fields

from repro.memory.traffic import TrafficBreakdown, TrafficCategory
from repro.prefetchers.base import PrefetcherStats


@dataclass
class CoverageCounts:
    """Raw coverage tallies collected during the measured phase."""

    fully_covered: int = 0
    partially_covered: int = 0
    uncovered: int = 0
    stride_covered: int = 0

    @property
    def temporal_eligible(self) -> int:
        """Off-chip read misses the temporal prefetcher could target."""
        return self.fully_covered + self.partially_covered + self.uncovered

    @property
    def coverage(self) -> float:
        """Total coverage (full + partial), the paper's headline metric."""
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return (self.fully_covered + self.partially_covered) / eligible

    @property
    def full_coverage(self) -> float:
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return self.fully_covered / eligible

    @property
    def partial_coverage(self) -> float:
        eligible = self.temporal_eligible
        if eligible == 0:
            return 0.0
        return self.partially_covered / eligible


@dataclass(slots=True)
class _IntervalAccumulator:
    """Online union/total tracker for one core's miss intervals.

    Intervals arrive in non-decreasing start order (the core clock is
    monotonic), so the union can be merged incrementally.
    """

    total: float = 0.0
    union: float = 0.0
    _current_start: float = -1.0
    _current_end: float = -1.0
    count: int = 0

    def add(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError("interval end precedes start")
        self.total += end - start
        self.count += 1
        if self._current_end < 0:
            self._current_start, self._current_end = start, end
            return
        if start <= self._current_end:
            self._current_end = max(self._current_end, end)
        else:
            self.union += self._current_end - self._current_start
            self._current_start, self._current_end = start, end

    def finish(self) -> None:
        if self._current_end >= 0:
            self.union += self._current_end - self._current_start
            self._current_start = self._current_end = -1.0

    @property
    def mlp(self) -> float:
        if self.union <= 0:
            return 1.0 if self.count else 0.0
        return self.total / self.union


class MlpTracker:
    """Per-core interval accumulation -> miss-weighted average MLP."""

    def __init__(self, cores: int) -> None:
        self._accumulators = [_IntervalAccumulator() for _ in range(cores)]

    def add(self, core: int, start: float, end: float) -> None:
        self._accumulators[core].add(start, end)

    def result(self) -> float:
        total_weighted = 0.0
        total_count = 0
        for accumulator in self._accumulators:
            accumulator.finish()
            if accumulator.count:
                total_weighted += accumulator.mlp * accumulator.count
                total_count += accumulator.count
        if total_count == 0:
            return 0.0
        return total_weighted / total_count

    def per_core(self) -> "list[float]":
        """Per-core MLP values (0.0 for cores with no off-chip misses).

        ``finish`` is idempotent, so this composes with :meth:`result`
        in either order.
        """
        values: "list[float]" = []
        for accumulator in self._accumulators:
            accumulator.finish()
            values.append(accumulator.mlp if accumulator.count else 0.0)
        return values


def snapshot_run_state(state) -> dict:
    """Deep snapshot of one engine run's observable machine state.

    Captures everything the differential-equivalence suite compares
    between the scalar reference engine and the batched engines: per-core
    clocks and cursors, cache/victim contents and counters, traffic
    bytes per category (which the batched path accumulates from segment
    sums), DRAM and MSHR state, stride-prefetcher tables, and — when the
    temporal prefetcher is STMS — the full off-chip metadata state:
    index-table buckets, history buffers (including un-spilled pack
    segments), bucket-buffer residency, stream engines, and sampler
    counters.

    L1 contents are compared as sorted ``(block, dirty)`` sets so the
    dict-backed and tag-array L1 models snapshot identically.
    """
    hierarchy = state.hierarchy
    snap: dict = {
        "clocks": list(state.clocks),
        "cursors": list(state.cursors),
        "measured_records": state.measured_records,
        "coverage": astuple(state.coverage),
        "demand_accesses": hierarchy.demand_accesses,
        "off_chip_reads": hierarchy.off_chip_reads,
        "l1": [
            (
                astuple(l1.stats),
                sorted(
                    (block, bool(l1.peek_dirty(block)))
                    for block in l1.resident_blocks()
                ),
            )
            for l1 in hierarchy.l1s
        ],
        "victims": [
            (victim.hits, list(victim._fifo.items()))
            for victim in hierarchy.victims
        ],
        "l2": (
            astuple(hierarchy.l2.stats),
            sorted(
                (block, bool(hierarchy.l2.peek_dirty(block)))
                for block in hierarchy.l2.resident_blocks()
            ),
        ),
        "l1_copies": dict(hierarchy._l1_copies),
        "traffic": {
            category.value: count
            for category, count in state.traffic._bytes.items()
        },
        "core_traffic": state.traffic.core_breakdown(),
        "demand_priority": [int(p) for p in state.demand_priority],
        "dram": (
            astuple(state.dram.stats),
            state.dram._busy_until_high,
            state.dram._busy_until_all,
        ),
        "mshr": (
            astuple(state.mshrs.stats),
            sorted(
                (entry.block, entry.complete_at, entry.waiters)
                for entry in state.mshrs._entries.values()
            ),
        ),
        "outstanding": [sorted(window) for window in state.outstanding],
        "core_coverage": [astuple(c) for c in state.core_coverage],
    }
    stride = state.stride
    if stride is not None:
        snap["stride"] = (
            astuple(stride.stats),
            [
                sorted((region, tuple(entry)) for region, entry
                       in tracker.items())
                for tracker in stride._trackers
            ],
            [
                (list(buffer._entries.items()),
                 dict(buffer._stream_counts))
                for buffer in stride.buffers
            ],
        )
    temporal = state.temporal
    if temporal is not None:
        snap["temporal_stats"] = astuple(temporal.stats)
        snap["temporal_buffers"] = [
            (list(buffer._entries.items()), dict(buffer._stream_counts))
            for buffer in temporal.buffers
        ]
        if hasattr(temporal, "bucket_buffer"):
            snap["stms"] = {
                "counters": astuple(temporal.counters),
                "sampler": (
                    temporal.sampler.flips,
                    temporal.sampler.accepted,
                ),
                "index": (
                    astuple(temporal.index.stats),
                    [
                        temporal.index.bucket_contents(bucket)
                        for bucket in range(temporal.index.buckets)
                    ],
                ),
                "histories": [
                    (
                        history.head,
                        astuple(history.stats),
                        list(history._blocks),
                        list(history._marks),
                        list(history._pend_blocks),
                        list(history._pend_marks),
                    )
                    for history in temporal.histories
                ],
                "bucket_buffer": (
                    astuple(temporal.bucket_buffer.stats),
                    list(temporal.bucket_buffer._resident.items()),
                    dict(temporal.bucket_buffer._dirty_core),
                ),
                "engines": [
                    (
                        engine.serial,
                        engine.active,
                        engine.source_core,
                        engine.next_fetch_sequence,
                        engine.paused_at,
                        list(engine._queue),
                        list(engine._issued.items()),
                        engine.last_consumed,
                        engine.consumed_count,
                    )
                    for engine in temporal.engines
                ],
            }
    return snap


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    workload: str
    prefetcher: str
    #: Trace records processed in the measured phase.
    measured_records: int
    #: Wall-clock cycles of the measured phase (max over cores).
    elapsed_cycles: float
    coverage: CoverageCounts = field(default_factory=CoverageCounts)
    #: Demand accesses that hit each level during measurement.
    l1_hits: int = 0
    victim_hits: int = 0
    l2_hits: int = 0
    #: Traffic normalization snapshot.
    traffic: "TrafficBreakdown | None" = None
    overhead_per_useful_byte: float = 0.0
    metadata_bytes: int = 0
    useful_bytes: int = 0
    #: Measured MLP of uncovered off-chip reads.
    mlp: float = 0.0
    #: Prefetcher-internal counters (issued/useful/erroneous/...).
    prefetcher_stats: "PrefetcherStats | None" = None
    #: DRAM channel utilization over the measured phase.
    dram_utilization: float = 0.0
    #: Per-core off-chip miss-address sequences (when collected).
    miss_log: "list[list[int]] | None" = None
    #: Per-core workload identity for multiprogrammed mixes (None when
    #: every core ran ``workload``).
    core_workloads: "list[str] | None" = None
    #: Per-core coverage tallies (sum equals :attr:`coverage`).
    core_coverage: "list[CoverageCounts] | None" = None
    #: Records each core committed during the measured phase.
    core_measured_records: "list[int] | None" = None
    #: Measured-phase cycles each core ran for.
    core_elapsed_cycles: "list[float] | None" = None
    #: Per-core MLP of uncovered off-chip reads.
    core_mlp: "list[float] | None" = None
    #: Per-core DRAM traffic attribution: one ``{category: bytes}`` dict
    #: per core (keys are :class:`TrafficCategory` values), charging
    #: every byte — demand fills, stream fetches, history reads/writes,
    #: index probes, write-backs — to the requesting core.  Summing over
    #: cores reproduces the global counters exactly (the conservation
    #: invariant the test suite enforces).
    core_traffic_bytes: "list[dict[str, int]] | None" = None

    def workload_of(self, core: int) -> str:
        """The workload that ran on ``core``."""
        if self.core_workloads is not None:
            return self.core_workloads[core]
        return self.workload

    def core_throughput(self, core: int) -> float:
        """One core's committed records per cycle (requires per-core
        accounting, i.e. a result produced by this repo's engines)."""
        assert self.core_measured_records is not None
        assert self.core_elapsed_cycles is not None
        elapsed = self.core_elapsed_cycles[core]
        if elapsed <= 0:
            return 0.0
        return self.core_measured_records[core] / elapsed

    @property
    def throughput(self) -> float:
        """Committed records per cycle — the paper's user-IPC proxy."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.measured_records / self.elapsed_cycles

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative performance vs. a baseline run of the same trace."""
        if baseline.measured_records != self.measured_records:
            raise ValueError(
                "speedup requires runs over the same measured records"
            )
        if self.elapsed_cycles <= 0:
            return 0.0
        return baseline.elapsed_cycles / self.elapsed_cycles


@dataclass
class WorkloadSlice:
    """One workload's share of a (possibly multiprogrammed) result."""

    workload: str
    cores: "list[int]" = field(default_factory=list)
    coverage: CoverageCounts = field(default_factory=CoverageCounts)
    measured_records: int = 0
    #: Sum over this workload's cores of per-core records/cycle — the
    #: co-run throughput its instances achieved together.
    throughput: float = 0.0
    #: Off-chip-miss-weighted mean MLP across this workload's cores.
    mlp: float = 0.0
    #: DRAM bytes attributed to this workload's cores, per traffic
    #: category (:class:`TrafficCategory` value -> bytes); empty when
    #: the result predates per-core attribution.
    traffic_bytes: "dict[str, int]" = field(default_factory=dict)

    @property
    def metadata_bytes(self) -> int:
        """Meta-data bytes this workload's misses caused (record streams
        + index updates + stream lookups)."""
        return sum(
            self.traffic_bytes.get(category.value, 0)
            for category in TrafficCategory
            if category.is_metadata
        )


def per_workload_breakdown(result: SimResult) -> "dict[str, WorkloadSlice]":
    """Group a result's per-core accounting by per-core workload.

    For a homogeneous trace this returns a single slice keyed by the
    result's workload name; for a mix, one slice per distinct component,
    which is how the contention experiments compare how each co-runner
    fared.  Requires per-core accounting (results simulated before the
    per-core counters existed are dropped by the store's schema stamp).
    """
    assert result.core_coverage is not None, "per-core accounting missing"
    assert result.core_measured_records is not None
    assert result.core_elapsed_cycles is not None
    slices: "dict[str, WorkloadSlice]" = {}
    mlp_weight: "dict[str, float]" = {}
    for core in range(len(result.core_coverage)):
        name = result.workload_of(core)
        piece = slices.get(name)
        if piece is None:
            piece = slices[name] = WorkloadSlice(workload=name)
            mlp_weight[name] = 0.0
        piece.cores.append(core)
        core_cov = result.core_coverage[core]
        for field_ in fields(CoverageCounts):
            setattr(
                piece.coverage,
                field_.name,
                getattr(piece.coverage, field_.name)
                + getattr(core_cov, field_.name),
            )
        piece.measured_records += result.core_measured_records[core]
        piece.throughput += result.core_throughput(core)
        if result.core_traffic_bytes is not None:
            for category, count in result.core_traffic_bytes[core].items():
                piece.traffic_bytes[category] = (
                    piece.traffic_bytes.get(category, 0) + count
                )
        if result.core_mlp is not None and core_cov.uncovered > 0:
            piece.mlp += result.core_mlp[core] * core_cov.uncovered
            mlp_weight[name] += core_cov.uncovered
    for name, piece in slices.items():
        if mlp_weight[name] > 0:
            piece.mlp /= mlp_weight[name]
    return slices
