"""Zero-copy shared-memory trace plane for the parallel runner.

The process-pool data plane used to be pickle-shaped: the parent
shipped a :class:`~repro.sim.store.TraceRef` and every worker re-read
the ``.npz`` from disk (or regenerated the trace outright) and then
re-derived the STMS metadata classification for its cells.  For the
two-level scheduler — which fans the *cells* of one trace's grid across
many workers — that re-derivation multiplies with the worker count
while the underlying bytes are identical everywhere.

This module separates the data plane from the compute plane: the parent
exports a trace's NumPy columns, plus the stacked per-geometry metadata
columns already classified for the sweep
(:func:`repro.core.index_table.stacked_metadata_arrays`), into one
``multiprocessing.shared_memory`` segment per sharded trace group.
Workers attach the segment and build **read-only ndarray views** over
it — zero bytes copied, one classification pass total, regardless of
how many shards the grid splits into.

Ownership and cleanup are strict, because leaked ``/dev/shm`` segments
outlive the process:

* :class:`TracePlane` is a context manager owning every segment of one
  runner fan-out; *every* exit path of the ``with`` block — normal
  completion, a worker exception propagating, the platform-degradation
  serial fallback — unlinks them.
* A module-level ``atexit`` sweep unlinks anything still registered if
  the process dies inside the block.
* Workers only ever *attach*; they never create or unlink.

``REPRO_SHM=off`` disables the plane entirely (workers fall back to
the TraceRef pickle path); export failures (an exhausted or missing
``/dev/shm``) degrade to the same fallback silently.  The plane is a
pure transport: attached traces carry the parent-computed fingerprint,
so cache keys — and therefore every per-cell result — are bit-identical
with or without it.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None  # type: ignore[assignment]


def shm_enabled() -> bool:
    """Whether the runner exports the trace plane into shared memory."""
    if _shared_memory is None:  # pragma: no cover - platform dependent
        return False
    return os.environ.get("REPRO_SHM", "on") != "off"


#: Segment offsets are aligned for safe typed views.
_ALIGN = 8


@dataclass(frozen=True)
class ArraySpec:
    """Location of one ndarray inside a segment (picklable)."""

    dtype: str
    shape: "tuple[int, ...]"
    offset: int


@dataclass(frozen=True)
class TracePayload:
    """Picklable description of one exported trace segment.

    Workers rebuild the trace (and the sweep's per-geometry metadata
    columns) from this without touching the segment bytes: ``columns``
    lists one ``(blocks, work, dep, write)`` spec quadruple per core,
    ``metadata`` one ``(geometry, bucket_specs, tag_specs | None)``
    triple per classified index geometry.  ``meta`` carries the trace's
    scalar fields plus its parent-computed content fingerprint, so the
    attach side never re-hashes the columns.
    """

    segment: str
    total_bytes: int
    meta: "tuple[tuple[str, object], ...]"
    columns: "tuple[tuple[ArraySpec, ArraySpec, ArraySpec, ArraySpec], ...]"
    metadata: "tuple[tuple[tuple, tuple[ArraySpec, ...], tuple[ArraySpec, ...] | None], ...]"


#: Segments created by this process and not yet unlinked, by name.
_OWNED: "dict[str, object]" = {}


def _release(name: str) -> None:
    """Close and unlink one owned segment (idempotent, error-tolerant)."""
    segment = _OWNED.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - defensive
        pass


def _sweep_owned() -> None:
    """atexit backstop: unlink every segment still owned."""
    for name in list(_OWNED):
        _release(name)


atexit.register(_sweep_owned)


class TracePlane:
    """Owns the shared-memory segments of one runner fan-out.

    Use as a context manager around the whole pool lifetime — submit,
    collection, and any fallback re-run — so segments live exactly as
    long as workers can attach them and are unlinked on every exit
    path.  The module ``atexit`` sweep catches a process dying inside
    the block.
    """

    def __init__(self) -> None:
        self._names: "list[str]" = []

    def __enter__(self) -> "TracePlane":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Unlink every segment this plane created."""
        for name in self._names:
            _release(name)
        self._names.clear()

    def export(
        self,
        trace,
        metadata_arrays: "dict[tuple, tuple[list, list | None]] | None" = None,
    ) -> "TracePayload | None":
        """Export one trace (+ optional metadata columns) to a segment.

        Returns the picklable payload workers attach from, or ``None``
        when shared memory is unavailable or the export fails — the
        caller falls back to the TraceRef path.
        """
        if _shared_memory is None:  # pragma: no cover - platform dependent
            return None
        from repro.sim.session import trace_fingerprint

        staged: "list[tuple[int, np.ndarray]]" = []
        offset = 0

        def stage(array: "np.ndarray") -> ArraySpec:
            nonlocal offset
            array = np.ascontiguousarray(array)
            spec = ArraySpec(str(array.dtype), tuple(array.shape), offset)
            staged.append((offset, array))
            offset += -(-array.nbytes // _ALIGN) * _ALIGN
            return spec

        columns = tuple(
            tuple(
                stage(np.asarray(column[core]))
                for column in (trace.blocks, trace.work, trace.dep,
                               trace.write)
            )
            for core in range(trace.cores)
        )
        metadata: "list[tuple[tuple, tuple, tuple | None]]" = []
        # Geometries sharing tag_bits share tag array objects — stage
        # each distinct list of tag columns once.
        staged_tags: "dict[int, tuple]" = {}
        if metadata_arrays:
            for geometry, (buckets, tags) in metadata_arrays.items():
                bucket_specs = tuple(stage(b) for b in buckets)
                if tags is None:
                    tag_specs = None
                else:
                    tag_specs = staged_tags.get(id(tags))
                    if tag_specs is None:
                        tag_specs = tuple(stage(t) for t in tags)
                        staged_tags[id(tags)] = tag_specs
                metadata.append((tuple(geometry), bucket_specs, tag_specs))
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=max(offset, 1)
            )
        except (OSError, ValueError):
            return None
        for start, array in staged:
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=segment.buf,
                offset=start,
            )
            view[...] = array
        _OWNED[segment.name] = segment
        self._names.append(segment.name)
        meta = trace.export_meta() + (
            ("fingerprint", trace_fingerprint(trace)),
        )
        return TracePayload(
            segment=segment.name,
            total_bytes=offset,
            meta=meta,
            columns=columns,
            metadata=tuple(metadata),
        )


def attach(payload: TracePayload):
    """Attach a payload read-only: ``(trace, metadata_arrays)`` or None.

    The returned trace's columns are zero-copy views into the segment
    (writes are rejected); the trace object keeps the
    ``SharedMemory`` handle alive for as long as it is referenced.
    ``metadata_arrays`` maps each exported geometry to its
    ``(bucket_columns, tag_columns | None)`` array views, in the shape
    :meth:`repro.sim.sweep.SweepShared.adopt_arrays` consumes.  A
    vanished or unreadable segment returns ``None`` and the caller
    falls back to the TraceRef path.
    """
    if _shared_memory is None:  # pragma: no cover - platform dependent
        return None
    from repro.workloads.trace import Trace

    try:
        segment = _shared_memory.SharedMemory(name=payload.segment)
    except (OSError, ValueError, FileNotFoundError):
        return None

    def view(spec: ArraySpec) -> np.ndarray:
        array = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        array.flags.writeable = False
        return array

    meta = dict(payload.meta)
    trace = Trace.from_buffers(
        payload.meta,
        blocks=[view(core[0]) for core in payload.columns],
        work=[view(core[1]) for core in payload.columns],
        dep=[view(core[2]) for core in payload.columns],
        write=[view(core[3]) for core in payload.columns],
    )
    trace._fingerprint = meta["fingerprint"]
    # The views borrow the segment's buffer: pin the handle on the
    # trace so the mapping survives as long as any consumer does.
    trace._shm = segment
    metadata_arrays: "dict[tuple, tuple[list, list | None]]" = {}
    for geometry, bucket_specs, tag_specs in payload.metadata:
        metadata_arrays[tuple(geometry)] = (
            [view(spec) for spec in bucket_specs],
            None
            if tag_specs is None
            else [view(spec) for spec in tag_specs],
        )
    return trace, metadata_arrays
