"""High-level experiment runners.

Convenience functions that wire a suite workload, a scaled machine
configuration, and a prefetcher choice into one call:

>>> from repro.sim import run_workload, PrefetcherKind
>>> result = run_workload("web-apache", PrefetcherKind.STMS, scale="test")
>>> 0.0 <= result.coverage.coverage <= 1.0
True
"""

from __future__ import annotations

from dataclasses import replace
from enum import Enum

from repro.core.config import StmsConfig
from repro.core.stms import StmsPrefetcher
from repro.memory.hierarchy import CmpConfig
from repro.prefetchers.fixed_depth import FixedDepthPrefetcher
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.sim.engine import SimConfig, Simulator, TemporalFactory
from repro.sim.metrics import SimResult
from repro.workloads.suite import ScalePreset, generate, get_scale
from repro.workloads.trace import Trace


class PrefetcherKind(Enum):
    """Prefetcher configurations the experiments compare."""

    #: Stride prefetcher only (the paper's base system).
    BASELINE = "baseline"
    #: Idealized TMS: magic on-chip meta-data (Section 5.2).
    IDEAL_TMS = "ideal-tms"
    #: The practical design: off-chip meta-data with hash-based lookup
    #: and probabilistic update.
    STMS = "stms"
    #: Single-table fixed-prefetch-depth design (Section 5.4 contrast).
    FIXED_DEPTH = "fixed-depth"
    #: Pair-wise Markov prefetcher (background baseline).
    MARKOV = "markov"


def make_sim_config(
    scale: "str | ScalePreset" = "bench",
    use_stride: bool = True,
) -> SimConfig:
    """Machine configuration scaled consistently with the workloads."""
    preset = get_scale(scale)
    return SimConfig(
        cmp=CmpConfig().scaled(preset.cache_scale),
        use_stride=use_stride,
    )


def make_stms_config(
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    **overrides: object,
) -> StmsConfig:
    """STMS configuration with meta-data capacities from the preset."""
    preset = get_scale(scale)
    parameters: dict[str, object] = {
        "cores": cores,
        "history_entries": preset.history_entries,
        "index_buckets": preset.index_buckets,
    }
    parameters.update(overrides)
    return StmsConfig(**parameters)  # type: ignore[arg-type]


def make_factory(
    kind: PrefetcherKind,
    stms_config: "StmsConfig | None" = None,
    depth: int = 4,
    lookup_rounds: int = 1,
    max_index_entries: "int | None" = None,
) -> "TemporalFactory | None":
    """Build the engine factory for a prefetcher kind."""
    if kind is PrefetcherKind.BASELINE:
        return None
    if kind is PrefetcherKind.IDEAL_TMS:
        return lambda cores, dram, traffic, resident: IdealTmsPrefetcher(
            cores,
            dram,
            traffic,
            residency_filter=resident,
            max_index_entries=max_index_entries,
        )
    if kind is PrefetcherKind.STMS:
        config = stms_config if stms_config is not None else StmsConfig()

        def _stms_factory(cores, dram, traffic, resident):
            cfg = (
                config
                if config.cores == cores
                else replace(config, cores=cores)
            )
            return StmsPrefetcher(
                cfg, dram, traffic, residency_filter=resident
            )

        return _stms_factory
    if kind is PrefetcherKind.FIXED_DEPTH:
        return lambda cores, dram, traffic, resident: FixedDepthPrefetcher(
            cores,
            dram,
            traffic,
            depth=depth,
            residency_filter=resident,
            lookup_rounds=lookup_rounds,
        )
    if kind is PrefetcherKind.MARKOV:
        return lambda cores, dram, traffic, resident: MarkovPrefetcher(
            cores, dram, traffic, residency_filter=resident
        )
    raise ValueError(f"unhandled prefetcher kind {kind!r}")


def run_trace(
    trace: Trace,
    kind: PrefetcherKind,
    scale: "str | ScalePreset" = "bench",
    stms_config: "StmsConfig | None" = None,
    sim_config: "SimConfig | None" = None,
    **factory_options: object,
) -> SimResult:
    """Simulate an already-generated trace with one prefetcher kind."""
    if sim_config is None:
        sim_config = make_sim_config(scale)
    if kind is PrefetcherKind.STMS and stms_config is None:
        stms_config = make_stms_config(scale, cores=trace.cores)
    factory = make_factory(kind, stms_config, **factory_options)  # type: ignore[arg-type]
    simulator = Simulator(sim_config)
    return simulator.run(trace, factory, label=kind.value)


def run_workload(
    workload: str,
    kind: PrefetcherKind,
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
    stms_config: "StmsConfig | None" = None,
    sim_config: "SimConfig | None" = None,
    trace: "Trace | None" = None,
    **factory_options: object,
) -> SimResult:
    """Generate (or reuse) a suite workload and simulate it."""
    if trace is None:
        trace = generate(
            workload,
            scale=scale,
            cores=cores,
            seed=seed,
            records_per_core=records_per_core,
        )
    return run_trace(
        trace,
        kind,
        scale=scale,
        stms_config=stms_config,
        sim_config=sim_config,
        **factory_options,
    )


def compare_prefetchers(
    workload: str,
    kinds: "list[PrefetcherKind] | None" = None,
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    seed: int = 7,
    stms_config: "StmsConfig | None" = None,
) -> dict[PrefetcherKind, SimResult]:
    """Run several prefetchers over the *same* generated trace."""
    if kinds is None:
        kinds = [
            PrefetcherKind.BASELINE,
            PrefetcherKind.IDEAL_TMS,
            PrefetcherKind.STMS,
        ]
    trace = generate(workload, scale=scale, cores=cores, seed=seed)
    results: dict[PrefetcherKind, SimResult] = {}
    for kind in kinds:
        results[kind] = run_trace(
            trace,
            kind,
            scale=scale,
            stms_config=stms_config,
        )
    return results
