"""High-level experiment runners.

Three layers sit above the engine:

* Convenience functions (:func:`run_workload`, :func:`run_trace`,
  :func:`compare_prefetchers`) that wire a suite workload, a scaled
  machine configuration, and a prefetcher choice into one call — all
  routed through the process-wide :class:`~repro.sim.session.SimSession`
  so repeated simulations are free.
* :class:`SimJob` — a picklable description of one simulation over the
  (workload x config x prefetcher) grid.
* :class:`ExperimentRunner` — maps job lists onto a process pool with
  a two-level decomposition: trace groups first (each worker acquires
  a trace once), then strided *cell* shards of the larger groups when
  workers would otherwise idle — split groups travel over the
  zero-copy shared-memory trace plane (:mod:`repro.sim.shm`) instead
  of being re-read or re-derived per worker.  Falls back to in-process
  execution on single-CPU machines or when the platform refuses
  subprocesses.

>>> from repro.sim import run_workload, PrefetcherKind
>>> result = run_workload("web-apache", PrefetcherKind.STMS, scale="test")
>>> 0.0 <= result.coverage.coverage <= 1.0
True
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Sequence

import numpy as np

from repro.core.config import StmsConfig
from repro.core.index_table import stacked_metadata_arrays
from repro.core.stms import StmsPrefetcher
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import CmpConfig
from repro.prefetchers.fixed_depth import FixedDepthPrefetcher
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.sim.engine import SimConfig, TemporalFactory
from repro.sim.metrics import SimResult
from repro.sim.session import (
    SessionStats,
    SimSession,
    _freeze,
    get_session,
    trace_recipe_key,
)
from repro.sim.shm import TracePayload, TracePlane, shm_enabled
from repro.sim.shm import attach as shm_attach
from repro.sim.store import ArtifactStore, TraceRef, trace_digest
from repro.sim.sweep import (
    SweepShared,
    job_geometries,
    run_sweep,
    sweep_enabled,
)
from repro.workloads.suite import ScalePreset, get_scale
from repro.workloads.trace import Trace


class PrefetcherKind(Enum):
    """Prefetcher configurations the experiments compare."""

    #: Stride prefetcher only (the paper's base system).
    BASELINE = "baseline"
    #: Idealized TMS: magic on-chip meta-data (Section 5.2).
    IDEAL_TMS = "ideal-tms"
    #: The practical design: off-chip meta-data with hash-based lookup
    #: and probabilistic update.
    STMS = "stms"
    #: Single-table fixed-prefetch-depth design (Section 5.4 contrast).
    FIXED_DEPTH = "fixed-depth"
    #: Pair-wise Markov prefetcher (background baseline).
    MARKOV = "markov"


def make_sim_config(
    scale: "str | ScalePreset" = "bench",
    use_stride: bool = True,
    cmp_overrides: "tuple[tuple[str, object], ...]" = (),
    dram_overrides: "tuple[tuple[str, object], ...]" = (),
) -> SimConfig:
    """Machine configuration scaled consistently with the workloads.

    ``cmp_overrides`` / ``dram_overrides`` replace individual fields of
    the scaled :class:`CmpConfig` / :class:`DramConfig` (absolute
    values, applied *after* preset scaling) — the contention sweeps use
    them to vary shared-L2 capacity and DRAM bandwidth per job.
    """
    preset = get_scale(scale)
    cmp = CmpConfig().scaled(preset.cache_scale)
    if cmp_overrides:
        cmp = replace(cmp, **dict(cmp_overrides))
    dram = DramConfig()
    if dram_overrides:
        dram = replace(dram, **dict(dram_overrides))
    return SimConfig(cmp=cmp, dram=dram, use_stride=use_stride)


def make_stms_config(
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    **overrides: object,
) -> StmsConfig:
    """STMS configuration with meta-data capacities from the preset."""
    preset = get_scale(scale)
    parameters: dict[str, object] = {
        "cores": cores,
        "history_entries": preset.history_entries,
        "index_buckets": preset.index_buckets,
    }
    parameters.update(overrides)
    return StmsConfig(**parameters)  # type: ignore[arg-type]


def make_factory(
    kind: PrefetcherKind,
    stms_config: "StmsConfig | None" = None,
    depth: int = 4,
    lookup_rounds: int = 1,
    max_index_entries: "int | None" = None,
) -> "TemporalFactory | None":
    """Build the engine factory for a prefetcher kind."""
    if kind is PrefetcherKind.BASELINE:
        return None
    if kind is PrefetcherKind.IDEAL_TMS:
        return lambda cores, dram, traffic, resident: IdealTmsPrefetcher(
            cores,
            dram,
            traffic,
            residency_filter=resident,
            max_index_entries=max_index_entries,
        )
    if kind is PrefetcherKind.STMS:
        config = stms_config if stms_config is not None else StmsConfig()

        def _stms_factory(cores, dram, traffic, resident):
            cfg = (
                config
                if config.cores == cores
                else replace(config, cores=cores)
            )
            return StmsPrefetcher(
                cfg, dram, traffic, residency_filter=resident
            )

        return _stms_factory
    if kind is PrefetcherKind.FIXED_DEPTH:
        return lambda cores, dram, traffic, resident: FixedDepthPrefetcher(
            cores,
            dram,
            traffic,
            depth=depth,
            residency_filter=resident,
            lookup_rounds=lookup_rounds,
        )
    if kind is PrefetcherKind.MARKOV:
        return lambda cores, dram, traffic, resident: MarkovPrefetcher(
            cores, dram, traffic, residency_filter=resident
        )
    raise ValueError(f"unhandled prefetcher kind {kind!r}")


def run_trace(
    trace: Trace,
    kind: PrefetcherKind,
    scale: "str | ScalePreset" = "bench",
    stms_config: "StmsConfig | None" = None,
    sim_config: "SimConfig | None" = None,
    session: "SimSession | None" = None,
    **factory_options: object,
) -> SimResult:
    """Simulate an already-generated trace with one prefetcher kind.

    Routed through the session layer: an identical (trace, machine,
    prefetcher) combination simulates once per process.
    """
    if sim_config is None:
        sim_config = make_sim_config(scale)
    if kind is PrefetcherKind.STMS and stms_config is None:
        stms_config = make_stms_config(scale, cores=trace.cores)
    factory = make_factory(kind, stms_config, **factory_options)  # type: ignore[arg-type]
    if session is None:
        session = get_session()
    temporal_key = (
        kind.value,
        _freeze(stms_config),
        tuple(sorted(factory_options.items())),
    )
    return session.simulate(
        trace, sim_config, temporal_key, factory, label=kind.value
    )


def run_workload(
    workload: str,
    kind: PrefetcherKind,
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
    stms_config: "StmsConfig | None" = None,
    sim_config: "SimConfig | None" = None,
    trace: "Trace | None" = None,
    session: "SimSession | None" = None,
    **factory_options: object,
) -> SimResult:
    """Generate (or reuse) a suite workload and simulate it."""
    if session is None:
        session = get_session()
    if trace is None:
        trace = session.trace(
            workload,
            scale=scale,
            cores=cores,
            seed=seed,
            records_per_core=records_per_core,
        )
    return run_trace(
        trace,
        kind,
        scale=scale,
        stms_config=stms_config,
        sim_config=sim_config,
        session=session,
        **factory_options,
    )


def compare_prefetchers(
    workload: str,
    kinds: "list[PrefetcherKind] | None" = None,
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    seed: int = 7,
    stms_config: "StmsConfig | None" = None,
    session: "SimSession | None" = None,
) -> dict[PrefetcherKind, SimResult]:
    """Run several prefetchers over the *same* generated trace."""
    if kinds is None:
        kinds = [
            PrefetcherKind.BASELINE,
            PrefetcherKind.IDEAL_TMS,
            PrefetcherKind.STMS,
        ]
    if session is None:
        session = get_session()
    trace = session.trace(workload, scale=scale, cores=cores, seed=seed)
    results: dict[PrefetcherKind, SimResult] = {}
    for kind in kinds:
        results[kind] = run_trace(
            trace,
            kind,
            scale=scale,
            stms_config=stms_config,
            session=session,
        )
    return results


# ----------------------------------------------------------------------
# The fan-out layer: job descriptions and the parallel runner.
# ----------------------------------------------------------------------


def job_options(**options: object) -> "tuple[tuple[str, object], ...]":
    """Normalize keyword options into a hashable, picklable tuple."""
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class SimJob:
    """One cell of the (workload x config x prefetcher) grid.

    Jobs are picklable value objects: the parallel runner ships them to
    worker processes, and their fields feed the session cache keys, so
    equal jobs never simulate twice in one process.
    """

    workload: str
    kind: PrefetcherKind
    scale: "str | ScalePreset" = "bench"
    cores: int = 4
    seed: int = 7
    records_per_core: "int | None" = None
    use_stride: bool = True
    collect_miss_log: bool = False
    #: Overrides applied to ``make_stms_config`` (STMS jobs only).
    stms_overrides: "tuple[tuple[str, object], ...]" = ()
    #: Extra ``make_factory`` options (depth, lookup_rounds, ...).
    factory_options: "tuple[tuple[str, object], ...]" = ()
    #: Machine-geometry overrides (absolute ``CmpConfig`` field values,
    #: e.g. ``(("l2_size_bytes", 131072),)`` for a contention sweep).
    cmp_overrides: "tuple[tuple[str, object], ...]" = ()
    #: DRAM-channel overrides (absolute ``DramConfig`` field values).
    dram_overrides: "tuple[tuple[str, object], ...]" = ()
    #: Caller correlation tag (ignored by execution and caching).
    tag: "object | None" = field(default=None, compare=False)

    def trace_key(self) -> tuple:
        """Grouping key: jobs sharing it simulate the same trace."""
        return trace_recipe_key(
            self.workload,
            get_scale(self.scale),
            self.cores,
            self.seed,
            self.records_per_core,
        )


def _job_configs(
    job: SimJob, cores: int
) -> "tuple[SimConfig, StmsConfig | None]":
    """The machine and (for STMS) prefetcher configuration of one job.

    Factored out of :func:`run_job` so the store-aware scheduler can
    compute a job's exact cache key without executing it.
    """
    sim_config = make_sim_config(
        job.scale,
        use_stride=job.use_stride,
        cmp_overrides=job.cmp_overrides,
        dram_overrides=job.dram_overrides,
    )
    if job.collect_miss_log:
        sim_config = replace(sim_config, collect_miss_log=True)
    stms_config = None
    if job.kind is PrefetcherKind.STMS:
        stms_config = make_stms_config(
            job.scale, cores=cores, **dict(job.stms_overrides)
        )
    return sim_config, stms_config


def job_result_key(job: SimJob, trace: Trace) -> tuple:
    """The session/store content key ``run_job`` would cache under."""
    sim_config, stms_config = _job_configs(job, trace.cores)
    temporal_key = (
        job.kind.value,
        _freeze(stms_config),
        tuple(sorted(dict(job.factory_options).items())),
    )
    return SimSession.result_key(
        trace, sim_config, temporal_key, job.kind.value
    )


def run_job(job: SimJob, session: "SimSession | None" = None) -> SimResult:
    """Execute one job through the (process-local) session."""
    if session is None:
        session = get_session()
    trace = session.trace(
        job.workload,
        scale=job.scale,
        cores=job.cores,
        seed=job.seed,
        records_per_core=job.records_per_core,
    )
    sim_config, stms_config = _job_configs(job, trace.cores)
    return run_trace(
        trace,
        job.kind,
        scale=job.scale,
        stms_config=stms_config,
        sim_config=sim_config,
        session=session,
        **dict(job.factory_options),
    )


def _run_group(
    jobs: "list[SimJob]",
    session: "SimSession | None" = None,
    preshared: "SweepShared | None" = None,
) -> "list[SimResult]":
    """Run jobs sharing one trace: a sweep invocation when it pays.

    Two or more cells over one trace are pushed through the
    config-parallel sweep engine (:mod:`repro.sim.sweep`) so the
    config-independent precomputation — trace materialization and the
    stacked STMS metadata classification — happens once for the whole
    group.  A single job (or ``REPRO_SWEEP=off``) takes the plain
    per-cell path; results are bit-identical either way.

    ``preshared`` is a shard's shared-memory-attached precomputation
    (trace + adopted metadata columns): even a single-cell shard routes
    through the sweep engine then, so nothing attached is re-derived.
    """
    if sweep_enabled() and (len(jobs) >= 2 or preshared is not None):
        return run_sweep(jobs, session, shared=preshared)
    return [run_job(job, session) for job in jobs]


def _run_bundle(
    jobs: "list[SimJob]",
    store_root: "str | None" = None,
    trace_ref: "TraceRef | None" = None,
    enabled: bool = True,
    plane_payload: "TracePayload | None" = None,
) -> "tuple[list[SimResult], dict, dict]":
    """Worker entry point: run a bundle of jobs sharing one trace.

    The parent ships the caller session's ``enabled`` state (a
    disabled session must force full recomputation in workers too, not
    fall back to the fork-inherited global memo) and the shared
    artifact store's root (so this worker reads and writes the same
    persistent tier instead of regenerating traces and re-simulating
    shared baselines) plus a :class:`~repro.sim.store.TraceRef` — hash
    and path of the bundle's trace — which seeds the session directly
    when the file exists.

    ``plane_payload`` (set for the cell shards of a split trace group)
    points at the parent's shared-memory trace plane
    (:mod:`repro.sim.shm`): this worker attaches the segment read-only,
    adopts the zero-copy trace into its session, and seeds a
    :class:`~repro.sim.sweep.SweepShared` with the parent-classified
    metadata columns — no npz re-read, no re-generation, no
    re-classification per shard.  A failed attach (or a disabled
    session) falls back to the TraceRef path.

    Besides the ordered results, the worker ships back its session's
    result-cache entries (so the parent can adopt them — without this,
    cross-``map()`` memoization would only exist on the serial path)
    and its cache-counter deltas, which the parent folds into its own
    stats so hit/miss observability spans the whole fan-out.
    """
    if not enabled:
        session = SimSession(enabled=False)
    else:
        session = get_session()
        if not session.enabled:
            # The caller's session is enabled but this process's global
            # one is not (e.g. inherited REPRO_SIM_CACHE=0): honor the
            # caller with a local enabled session.
            session = SimSession(enabled=True, store=None)
        if store_root is not None and (
            session.store is None
            or session.store.root != os.path.abspath(store_root)
        ):
            try:
                session.attach_store(ArtifactStore(store_root))
            except OSError:
                pass
    before = replace(session.stats)
    preshared = None
    if plane_payload is not None and enabled and jobs:
        attached = shm_attach(plane_payload)
        if attached is not None:
            shm_trace, metadata_arrays = attached
            first = jobs[0]
            session.adopt_shm_trace(
                first.workload,
                first.scale,
                first.cores,
                first.seed,
                first.records_per_core,
                shm_trace,
                plane_payload.total_bytes,
            )
            preshared = SweepShared(shm_trace)
            if metadata_arrays:
                preshared.adopt_arrays(metadata_arrays)
    if preshared is None and trace_ref is not None and jobs:
        first = jobs[0]
        session.prime_trace(
            first.workload,
            first.scale,
            first.cores,
            first.seed,
            first.records_per_core,
            trace_ref,
        )
    results = _run_group(jobs, session, preshared)
    if session.store is not None and session.store.remote is not None:
        # Drain the write-back queue at the bundle boundary (the worker
        # process may be reaped right after returning) and fold remote
        # counters so they ride the generic stats delta.
        session.store.remote.flush()
        session.fold_remote_stats()
    stats_delta = {
        f.name: getattr(session.stats, f.name) - getattr(before, f.name)
        for f in fields(SessionStats)
    }
    return results, session.export_results(), stats_delta


#: One warning per process for a malformed REPRO_JOBS value.
_JOBS_WARNING_EMITTED = False


def _default_workers() -> "tuple[int, bool]":
    """(max_workers, parallel) from REPRO_JOBS or the CPU count.

    A malformed or non-positive ``REPRO_JOBS`` used to degrade to one
    worker silently; it now warns once per process so a typo'd
    environment can't quietly serialize a fleet.
    """
    global _JOBS_WARNING_EMITTED
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            workers = 0
        if workers < 1:
            if not _JOBS_WARNING_EMITTED:
                _JOBS_WARNING_EMITTED = True
                warnings.warn(
                    f"invalid REPRO_JOBS={env!r} (expected a positive "
                    "integer); running with 1 worker",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return 1, False
        return workers, workers > 1
    cpus = os.cpu_count() or 1
    return cpus, cpus > 1


#: One warning per process for a malformed REPRO_SHARD_MIN_CELLS value.
_SHARD_MIN_CELLS_WARNING_EMITTED = False


def _shard_min_cells() -> int:
    """Smallest pending-cell count at which a trace group may be split.

    ``REPRO_SHARD_MIN_CELLS`` (default 2, floor 2) raises the level-2
    threshold for grids whose per-cell cost is too small to amortize a
    shard's attach overhead.  A malformed value used to fall back to
    the default silently (while the equivalent ``REPRO_JOBS`` misparse
    warned); it now warns once per process too.  Numeric values below
    the floor are clamped without a warning — that floor is documented
    behaviour, not a typo.
    """
    global _SHARD_MIN_CELLS_WARNING_EMITTED
    env = os.environ.get("REPRO_SHARD_MIN_CELLS")
    if env is None:
        return 2
    try:
        value = int(env)
    except ValueError:
        if not _SHARD_MIN_CELLS_WARNING_EMITTED:
            _SHARD_MIN_CELLS_WARNING_EMITTED = True
            warnings.warn(
                f"invalid REPRO_SHARD_MIN_CELLS={env!r} (expected an "
                "integer >= 2); using the default of 2",
                RuntimeWarning,
                stacklevel=2,
            )
        return 2
    return max(2, value)


def _ref_bytes(ref: "TraceRef | None") -> int:
    """On-disk size of a shipped TraceRef (0 when absent/unreadable).

    This is what a worker re-reads on the pickle/npz fallback path —
    the denominator of the zero-copy-vs-pickled contrast in
    ``cache stats``.
    """
    if ref is None:
        return 0
    try:
        return os.stat(ref.path).st_size
    except OSError:
        return 0


def _shard_groups(
    groups: "dict[tuple, list[int]]",
    workers: int,
    min_cells: int,
) -> "list[tuple[tuple, list[int]]]":
    """Two-level decomposition of trace groups into worker shards.

    Level 1 is the existing unit — one shard per trace group.  When
    that leaves workers idle (fewer groups than workers), level 2
    repeatedly halves the largest splittable shard until the pool is
    over-decomposed (two shards per worker): the surplus lets the
    executor steal work when cells cost unevenly, and the strided
    ``[0::2]``/``[1::2]`` halving spreads each shard across the grid's
    cost gradient instead of handing one worker the expensive end.
    Groups below ``min_cells`` pending cells never split.
    """
    shards = [(key, list(indices)) for key, indices in groups.items()]
    if workers <= len(shards):
        return shards
    target = workers * 2
    floor = max(2, min_cells)
    while len(shards) < target:
        largest = max(
            range(len(shards)), key=lambda i: len(shards[i][1])
        )
        key, indices = shards[largest]
        if len(indices) < floor:
            break
        shards[largest:largest + 1] = [
            (key, indices[0::2]),
            (key, indices[1::2]),
        ]
    return shards


class ExperimentRunner:
    """Maps simulation jobs over worker processes, two levels deep.

    Jobs are grouped by trace recipe so each worker acquires every
    trace exactly once and shares baselines across its bundle via its
    process-local session; when the groups are fewer than the workers,
    the larger groups additionally split into strided *cell* shards
    (``_shard_groups``) so a single big grid still saturates the pool.
    Split groups ship over the zero-copy shared-memory trace plane
    (:mod:`repro.sim.shm`, ``REPRO_SHM=off`` to disable): the parent
    exports the trace columns and the grid's stacked metadata
    classification once, and every shard attaches read-only views.  On
    a single-CPU machine (or with ``REPRO_JOBS=1``) everything runs
    in-process through the *global* session — which is strictly better
    for cache reuse, just not concurrent.  Subprocess failures of the
    platform kind (sandboxes without fork, missing semaphores) degrade
    to the serial path; segment cleanup is guaranteed on that path too.
    """

    def __init__(
        self,
        max_workers: "int | None" = None,
        parallel: "bool | None" = None,
    ) -> None:
        default_workers, default_parallel = _default_workers()
        self.max_workers = (
            max(1, max_workers) if max_workers is not None
            else default_workers
        )
        self.parallel = (
            parallel if parallel is not None else default_parallel
        ) and self.max_workers > 1

    def map(
        self,
        jobs: "Sequence[SimJob]",
        session: "SimSession | None" = None,
    ) -> "list[SimResult]":
        """Run all jobs, preserving order; duplicates are free.

        ``session`` (default: the process-global one) provides both
        cache tiers.  When it carries an artifact store, worker
        processes open the same store and receive trace references
        instead of regenerating traces, so warm runs are served from
        disk across process boundaries.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if session is None:
            session = get_session()
        groups: "dict[tuple, list[int]]" = {}
        for index, job in enumerate(jobs):
            groups.setdefault(job.trace_key(), []).append(index)
        results: "list[SimResult | None]" = [None] * len(jobs)
        store = session.store if session.enabled else None
        # Store-aware scheduling: persisted results are served straight
        # from the store; a bundle that hits entirely is skipped (no
        # worker, no trace regeneration), a partial hit shrinks to its
        # missing jobs so nothing persisted is ever computed — or read
        # from disk — twice.
        if store is not None:
            skipped = 0
            for trace_key in list(groups):
                indices = groups[trace_key]
                probe = self._probe_bundle(
                    session, trace_key, [jobs[i] for i in indices]
                )
                if probe is None:
                    continue
                missing = []
                for i, result in zip(indices, probe):
                    if result is None:
                        missing.append(i)
                    else:
                        results[i] = result
                if missing:
                    groups[trace_key] = missing
                else:
                    del groups[trace_key]
                    skipped += 1
            if skipped:
                session.stats.bundle_skips += skipped
                store.bump_counter("bundle_skips", skipped)
        if not groups:
            return results  # type: ignore[return-value]
        # Two-level decomposition: shards are the scheduling unit — one
        # per trace group while groups outnumber workers, and strided
        # *cell* partitions of the larger groups when workers would
        # otherwise idle (a single big grid then uses every core).
        shards = (
            _shard_groups(groups, self.max_workers, _shard_min_cells())
            if self.parallel
            else []
        )
        if len(shards) < 2:
            # Serial path: each trace group becomes one sweep
            # invocation (config-independent work shared across cells).
            for indices in groups.values():
                group_results = _run_group(
                    [jobs[i] for i in indices], session
                )
                for i, result in zip(indices, group_results):
                    results[i] = result
            return results  # type: ignore[return-value]
        store_root = store.root if store is not None else None
        stats_before = replace(session.stats)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        shard_counts: "dict[tuple, int]" = {}
        for trace_key, _ in shards:
            shard_counts[trace_key] = shard_counts.get(trace_key, 0) + 1
        exports = 0
        pickled_bytes = 0
        with TracePlane() as plane:
            # Zero-copy data plane: each *split* group's trace (and its
            # grid's stacked metadata classification) is materialized
            # once here and exported to shared memory, so its cell
            # shards attach instead of re-deriving per process.
            # Unsplit groups keep the cheap TraceRef path — exporting
            # them would serialize trace generation in the parent that
            # the workers do in parallel today.
            payloads: "dict[tuple, TracePayload]" = {}
            if shm_enabled() and session.enabled:
                for trace_key, count in shard_counts.items():
                    if count < 2:
                        continue
                    indices = groups[trace_key]
                    first = jobs[indices[0]]
                    trace = session.trace(
                        first.workload,
                        scale=first.scale,
                        cores=first.cores,
                        seed=first.seed,
                        records_per_core=first.records_per_core,
                    )
                    geometries = job_geometries(
                        [jobs[i] for i in indices], trace.cores
                    )
                    arrays = (
                        stacked_metadata_arrays(
                            [np.asarray(b) for b in trace.blocks],
                            geometries,
                        )
                        if geometries
                        else None
                    )
                    payload = plane.export(trace, arrays)
                    if payload is not None:
                        payloads[trace_key] = payload
                        exports += 1
            try:
                workers = min(self.max_workers, len(shards))
                with ProcessPoolExecutor(
                    workers, mp_context=context
                ) as pool:
                    futures = []
                    for trace_key, indices in shards:
                        payload = payloads.get(trace_key)
                        ref = (
                            store.trace_ref(trace_digest(trace_key))
                            if store is not None
                            else None
                        )
                        if payload is None:
                            pickled_bytes += _ref_bytes(ref)
                        futures.append((indices, pool.submit(
                            _run_bundle,
                            [jobs[i] for i in indices],
                            store_root,
                            ref,
                            session.enabled,
                            payload,
                        )))
                    for indices, future in futures:
                        bundle_results, cache_entries, stats_delta = (
                            future.result()
                        )
                        # Adopt the workers' memo entries so later
                        # serial runs (and later map() calls) reuse
                        # this work, and fold their counters in so this
                        # session's stats describe the whole fan-out.
                        session.adopt_results(cache_entries)
                        for name, delta in stats_delta.items():
                            setattr(
                                session.stats,
                                name,
                                getattr(session.stats, name, 0) + delta,
                            )
                        for i, result in zip(indices, bundle_results):
                            results[i] = result
            except (OSError, PermissionError, RuntimeError, ImportError):
                # Platform refused subprocesses; run everything here.
                # Any worker deltas already folded in would
                # double-count once the serial pass re-tallies the same
                # jobs — roll them back (adopted results stay: they are
                # valid and make the serial pass cheaper).  The plane's
                # segments are unlinked by the enclosing context
                # manager on this path too.
                session.stats = stats_before
                for indices in groups.values():
                    group_results = _run_group(
                        [jobs[i] for i in indices], session
                    )
                    for i, result in zip(indices, group_results):
                        results[i] = result
                return results  # type: ignore[return-value]
        session.stats.shm_exports += exports
        session.stats.shm_bytes_pickled += pickled_bytes
        if store is not None:
            store.bump_counters({
                "shm_segments_created": exports,
                "shm_segments_attached": (
                    session.stats.shm_attaches
                    - stats_before.shm_attaches
                ),
                "shm_bytes_zero_copy": (
                    session.stats.shm_bytes_zero_copy
                    - stats_before.shm_bytes_zero_copy
                ),
                "shm_bytes_pickled": pickled_bytes,
            })
        return results  # type: ignore[return-value]

    @staticmethod
    def _probe_bundle(
        session: SimSession, trace_key: tuple, bundle_jobs: "list[SimJob]"
    ) -> "list[SimResult | None] | None":
        """Per-job cache probe of one bundle (None entries = misses).

        Returns None outright when the bundle's trace is in neither
        tier — without it no result key can be computed, and the bundle
        runs normally.
        """
        store = session.store
        if store is None:
            return None
        trace = session.cached_trace(trace_key)
        if trace is None:
            trace = store.load_trace(trace_digest(trace_key))
            if trace is None:
                return None
            session.adopt_trace(trace_key, trace)
        return [
            session.lookup_result(job_result_key(job, trace))
            for job in bundle_jobs
        ]

    def run_grid(
        self,
        workloads: "Sequence[str]",
        kinds: "Sequence[PrefetcherKind]",
        scale: "str | ScalePreset" = "bench",
        cores: int = 4,
        seed: int = 7,
        session: "SimSession | None" = None,
        **job_fields: object,
    ) -> "dict[tuple[str, PrefetcherKind], SimResult]":
        """Fan the (workload x kind) grid out and collect results."""
        jobs = [
            SimJob(
                workload=workload,
                kind=kind,
                scale=scale,
                cores=cores,
                seed=seed,
                **job_fields,  # type: ignore[arg-type]
            )
            for workload in workloads
            for kind in kinds
        ]
        results = self.map(jobs, session=session)
        return {
            (job.workload, job.kind): result
            for job, result in zip(jobs, results)
        }
