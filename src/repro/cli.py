"""Command-line interface: run workloads, comparisons, and experiments.

Examples::

    python -m repro list-workloads
    python -m repro run --workload oltp-db2 --prefetcher stms --scale demo
    python -m repro compare --workload sci-em3d --scale demo
    python -m repro experiment fig9 --scale bench --output fig9.txt
    python -m repro sweep-sampling --workload web-apache --scale demo
    python -m repro cache warm fig4 --scale bench
    python -m repro cache stats

Every simulation command works through the persistent artifact store
(``--store-dir``, default ``$REPRO_STORE_DIR`` or ``~/.cache/
repro-stms``), so a figure regenerated twice — even across separate
invocations — is served from disk the second time.  ``--no-cache``
forces full recomputation.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from typing import Sequence

from repro.analysis.report import format_percent, format_table
from repro.experiments import EXPERIMENTS, run_experiment
from repro.sim.metrics import SimResult
from repro.sim.runner import (
    PrefetcherKind,
    compare_prefetchers,
    make_stms_config,
    run_workload,
)
from repro.sim.session import SimSession, set_session
from repro.sim.store import ArtifactStore, default_store_dir
from repro.workloads.mix import MIX_PRESETS, MixRecipe, is_mix
from repro.workloads.suite import SCALES, WORKLOADS, workload_names


def _workload_arg(value: str) -> str:
    """Validate a workload argument: suite name, mix preset, or spec.

    Mixes are accepted everywhere a homogeneous workload is (``run``,
    ``compare``, ``cache warm``): ``mix:2xoltp-db2+2xdss-db2`` assigns
    components to cores round-robin.  Components may carry asymmetric
    scheduling decorations — ``*S`` time-sliced instances, ``@R`` rate
    weight, ``!low`` demand-priority class — e.g.
    ``mix:oltp-db2*2+web-apache@0.5!low``.
    """
    if value in WORKLOADS:
        return value
    if is_mix(value):
        try:
            MixRecipe.parse(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
        return value
    raise argparse.ArgumentTypeError(
        f"unknown workload {value!r}; choose a suite workload "
        f"({', '.join(sorted(WORKLOADS))}), a mix preset "
        f"({', '.join(sorted(MIX_PRESETS))}), or a "
        "'mix:<w>[*S][@rate][!prio]+<w>...' spec"
    )


@contextlib.contextmanager
def _session_scope(args: argparse.Namespace):
    """Install the CLI-selected session (store + enabled) globally.

    ``--no-cache`` (or ``REPRO_SIM_CACHE=0``) disables both cache tiers;
    otherwise the artifact store at ``--store-dir`` backs the session.
    The choice is exported through the environment so pool workers of
    the parallel runner join the same store, and both the environment
    and the previous global session are restored on exit.
    """
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_SIM_CACHE", "REPRO_STORE_DIR")
    }
    no_cache = (
        getattr(args, "no_cache", False)
        or os.environ.get("REPRO_SIM_CACHE", "1") == "0"
    )
    if no_cache:
        os.environ["REPRO_SIM_CACHE"] = "0"
        session = SimSession(enabled=False)
    else:
        store_dir = getattr(args, "store_dir", None) or default_store_dir()
        os.environ["REPRO_STORE_DIR"] = store_dir
        session = SimSession(enabled=True, store=ArtifactStore(store_dir))
    previous = set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _result_rows(results: "dict[PrefetcherKind, SimResult]") -> list:
    baseline = results.get(PrefetcherKind.BASELINE)
    rows = []
    for kind, result in results.items():
        speedup = (
            f"{result.speedup_over(baseline):.3f}x"
            if baseline is not None
            else "-"
        )
        rows.append(
            [
                kind.value,
                format_percent(result.coverage.coverage),
                format_percent(result.coverage.partial_coverage),
                speedup,
                f"{result.overhead_per_useful_byte:.3f}",
                f"{result.mlp:.2f}",
            ]
        )
    return rows


def _print_results(
    workload: str, results: "dict[PrefetcherKind, SimResult]"
) -> None:
    print(
        format_table(
            ["prefetcher", "coverage", "partial", "speedup",
             "overhead/byte", "mlp"],
            _result_rows(results),
            title=f"{workload}",
        )
    )
    mix_rows = []
    for kind, result in results.items():
        if result.core_workloads is None:
            continue
        from repro.sim.metrics import per_workload_breakdown

        for name, piece in sorted(per_workload_breakdown(result).items()):
            mix_rows.append(
                [
                    kind.value,
                    name,
                    len(piece.cores),
                    format_percent(piece.coverage.coverage),
                    f"{piece.throughput:.4f}",
                    f"{piece.mlp:.2f}",
                ]
            )
    if mix_rows:
        print(
            format_table(
                ["prefetcher", "workload", "cores", "coverage",
                 "throughput", "mlp"],
                mix_rows,
                title="Per-workload split (multiprogrammed mix)",
            )
        )


def cmd_list_workloads(_: argparse.Namespace) -> int:
    rows = [
        [
            name,
            WORKLOADS[name].category,
            WORKLOADS[name].display,
            WORKLOADS[name].paper_mlp,
            format_percent(WORKLOADS[name].paper_ideal_coverage),
        ]
        for name in workload_names()
    ]
    print(
        format_table(
            ["name", "category", "display", "paper MLP",
             "paper ideal coverage"],
            rows,
            title="Paper workload suite (scaled synthetic analogues)",
        )
    )
    return 0


def cmd_list_experiments(_: argparse.Namespace) -> int:
    rows = [[name] for name in sorted(EXPERIMENTS)]
    print(format_table(["experiment"], rows, title="Available experiments"))
    return 0


def cmd_list_mixes(_: argparse.Namespace) -> int:
    rows = [
        [name, spec, " ".join(MixRecipe.parse(spec).assign(4))]
        for name, spec in sorted(MIX_PRESETS.items())
    ]
    print(
        format_table(
            ["preset", "spec", "4-core assignment"],
            rows,
            title="Multiprogrammed mix presets (or give any "
            "'mix:<w>+<w>...' spec; components take *S time slices, "
            "@R rate, !low priority — e.g. "
            "mix:oltp-db2*2+web-apache@0.5!low)",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    kind = PrefetcherKind(args.prefetcher)
    stms_config = None
    if kind is PrefetcherKind.STMS:
        stms_config = make_stms_config(
            args.scale,
            cores=args.cores,
            sampling_probability=args.sampling,
        )
    with _session_scope(args) as session:
        result = run_workload(
            args.workload,
            kind,
            scale=args.scale,
            cores=args.cores,
            seed=args.seed,
            stms_config=stms_config,
            session=session,
        )
    _print_results(args.workload, {kind: result})
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with _session_scope(args) as session:
        results = compare_prefetchers(
            args.workload, scale=args.scale, cores=args.cores,
            seed=args.seed, session=session,
        )
    _print_results(args.workload, results)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    options: dict = {"scale": args.scale}
    if args.jobs is not None:
        from repro.sim.runner import ExperimentRunner

        options["runner"] = ExperimentRunner(
            max_workers=args.jobs, parallel=args.jobs > 1
        )
    with _session_scope(args) as session:
        result = run_experiment(args.name, session=session, **options)
    rendered = result.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0 if result.passed else 1


def cmd_sweep_sampling(args: argparse.Namespace) -> int:
    from repro.experiments import fig8_sampling

    with _session_scope(args) as session:
        result = fig8_sampling.run(
            scale=args.scale, cores=args.cores, seed=args.seed,
            workloads=(args.workload,), session=session,
        )
    print(result.render())
    return 0 if result.passed else 1


# ----------------------------------------------------------------------
# The `cache` subcommand group: ls / stats / gc / warm.
# ----------------------------------------------------------------------


def _open_store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(args.store_dir or default_store_dir())


def _format_size(count: int) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.1f}M"
    if count >= 1024:
        return f"{count / 1024:.1f}K"
    return f"{count}B"


def _entry_label(entry) -> str:
    """Human tag for one store entry (best-effort, never raises)."""
    try:
        if entry.kind == "result":
            import json

            with open(entry.path, "rb") as handle:
                record = json.load(handle)
            return (
                f"{record.get('workload', '?')} / "
                f"{record.get('prefetcher', '?')}"
            )
        import numpy as np

        return str(np.load(entry.path)["meta_name"][0])
    except Exception:
        return "(unreadable)"


def cmd_cache_ls(args: argparse.Namespace) -> int:
    store = _open_store(args)
    entries = store.entries()
    now = time.time()
    rows = [
        [
            entry.kind,
            entry.digest[:12],
            _format_size(entry.size_bytes),
            f"{max(0.0, now - entry.mtime):.0f}s",
            _entry_label(entry),
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["kind", "digest", "size", "age", "artifact"],
            rows,
            title=f"{store.root} ({len(entries)} entries, LRU first)",
        )
    )
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    info = store.describe()
    cap = (
        _format_size(info["max_bytes"])
        if info["max_bytes"] is not None
        else "unbounded"
    )
    rows = [
        ["store", info["root"]],
        ["schema", str(info["schema"])],
        ["traces", f"{info['traces']} ({_format_size(info['trace_bytes'])})"],
        [
            "results",
            f"{info['results']} ({_format_size(info['result_bytes'])})",
        ],
        ["total", _format_size(info["total_bytes"])],
        ["size cap", cap],
    ]
    counters = info["counters"]
    for name, value in sorted(counters.items()):
        rows.append([name.replace("_", " "), str(value)])
    # Grid-grouping effectiveness: average cells served per sweep
    # invocation (versus per-cell fallbacks, reported above) makes
    # silent de-vectorization of sweep grids visible.
    invocations = counters.get("sweep_invocations", 0)
    if invocations:
        cells = counters.get("sweep_grouped_cells", 0)
        rows.append(["cells per sweep", f"{cells / invocations:.1f}"])
    # Data-plane effectiveness: how much of the bytes shipped to pool
    # workers travelled as zero-copy shared-memory views versus the
    # pickle/npz fallback path.
    zero_copy = counters.get("shm_bytes_zero_copy", 0)
    pickled = counters.get("shm_bytes_pickled", 0)
    if zero_copy or pickled:
        rows.append([
            "shm zero-copy share",
            f"{zero_copy / (zero_copy + pickled):.0%} "
            f"({_format_size(zero_copy)} shm vs "
            f"{_format_size(pickled)} pickled)",
        ])
    print(format_table(["field", "value"], rows, title="Artifact store"))
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
        return 0
    max_bytes = (
        int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
    )
    if max_bytes is None and store.max_bytes is None:
        print(
            "no size cap given: pass --max-mb N (or --clear, or set "
            "REPRO_STORE_MAX_MB)"
        )
        return 1
    evicted = store.gc(max_bytes)
    print(
        f"evicted {evicted} entries; {_format_size(store.total_bytes())} "
        f"remain in {store.root}"
    )
    return 0


def cmd_cache_warm(args: argparse.Namespace) -> int:
    """Populate the store by running a figure or workload once."""
    started = time.perf_counter()
    with _session_scope(args) as session:
        if args.target in EXPERIMENTS:
            options: dict = {
                "scale": args.scale,
                "cores": args.cores,
                "seed": args.seed,
                "session": session,
            }
            if args.jobs is not None:
                from repro.sim.runner import ExperimentRunner

                options["runner"] = ExperimentRunner(
                    max_workers=args.jobs, parallel=args.jobs > 1
                )
            run_experiment(args.target, **options)
        else:
            compare_prefetchers(
                args.target,
                scale=args.scale,
                cores=args.cores,
                seed=args.seed,
                session=session,
            )
        elapsed = time.perf_counter() - started
        stats = session.stats
        store = session.store
    print(
        f"warmed {args.target} @ {args.scale} in {elapsed:.1f}s: "
        f"{stats.sim_misses} simulated, {stats.sim_hits} memory hits, "
        f"{stats.sim_store_hits} store hits "
        f"({stats.trace_store_hits} trace store hits, "
        f"{stats.bundle_skips} bundles skipped, "
        f"{stats.shm_attaches} shm attaches)"
    )
    if store is not None:
        print(
            f"store {store.root}: {store.stats.writes} writes, "
            f"{_format_size(store.total_bytes())} total"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STMS (HPCA 2009) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale", default="demo", choices=sorted(SCALES),
            help="scale preset (default: demo)",
        )
        sub.add_argument("--cores", type=int, default=4)
        sub.add_argument("--seed", type=int, default=7)
        add_cache_options(sub)

    def add_cache_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--no-cache", action="store_true",
            help="bypass the session memo and the artifact store "
            "(forces full recomputation)",
        )
        add_store_dir(sub)

    def add_store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store-dir", default=None, metavar="DIR",
            help="artifact-store directory (default: $REPRO_STORE_DIR "
            "or ~/.cache/repro-stms)",
        )

    sub = subparsers.add_parser(
        "list-workloads", help="show the workload suite"
    )
    sub.set_defaults(entry=cmd_list_workloads)

    sub = subparsers.add_parser(
        "list-experiments", help="show available experiments"
    )
    sub.set_defaults(entry=cmd_list_experiments)

    sub = subparsers.add_parser(
        "list-mixes", help="show multiprogrammed mix presets"
    )
    sub.set_defaults(entry=cmd_list_mixes)

    sub = subparsers.add_parser("run", help="simulate one prefetcher")
    sub.add_argument(
        "--workload", required=True, type=_workload_arg,
        metavar="WORKLOAD|MIX",
        help="suite workload, mix preset, or 'mix:<w>+<w>...' spec",
    )
    sub.add_argument(
        "--prefetcher",
        default="stms",
        choices=[kind.value for kind in PrefetcherKind],
    )
    sub.add_argument(
        "--sampling", type=float, default=0.125,
        help="STMS index-update sampling probability",
    )
    add_common(sub)
    sub.set_defaults(entry=cmd_run)

    sub = subparsers.add_parser(
        "compare", help="baseline vs ideal vs STMS on one workload"
    )
    sub.add_argument(
        "--workload", required=True, type=_workload_arg,
        metavar="WORKLOAD|MIX",
        help="suite workload, mix preset, or 'mix:<w>+<w>...' spec",
    )
    add_common(sub)
    sub.set_defaults(entry=cmd_compare)

    sub = subparsers.add_parser(
        "experiment", help="regenerate one paper figure/table"
    )
    sub.add_argument("name", choices=sorted(EXPERIMENTS))
    sub.add_argument("--output", help="write the rendered figure here")
    sub.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="scale preset (default: bench)",
    )
    sub.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulation grid "
        "(default: REPRO_JOBS or the CPU count)",
    )
    add_cache_options(sub)
    sub.set_defaults(entry=cmd_experiment)

    sub = subparsers.add_parser(
        "sweep-sampling", help="Fig. 8 sweep on one workload"
    )
    sub.add_argument("--workload", required=True,
                     choices=sorted(WORKLOADS))
    add_common(sub)
    sub.set_defaults(entry=cmd_sweep_sampling)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage the persistent artifact store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    sub = cache_sub.add_parser(
        "ls", help="list persisted artifacts (least recently used first)"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_ls)

    sub = cache_sub.add_parser(
        "stats", help="entry counts and sizes of the store"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_stats)

    sub = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries past a size cap"
    )
    sub.add_argument(
        "--max-mb", type=float, default=None,
        help="target size in MiB (default: REPRO_STORE_MAX_MB)",
    )
    sub.add_argument(
        "--clear", action="store_true", help="remove every entry"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_gc)

    sub = cache_sub.add_parser(
        "warm", help="populate the store by running a figure or workload"
    )
    def _warm_target(value: str) -> str:
        if value in EXPERIMENTS:
            return value
        if is_mix(value):
            # A mix spec with a bad component gets the specific
            # diagnosis, not the generic target list.
            return _workload_arg(value)
        try:
            return _workload_arg(value)
        except argparse.ArgumentTypeError:
            raise argparse.ArgumentTypeError(
                f"unknown warm target {value!r}; choose an experiment "
                f"({', '.join(sorted(EXPERIMENTS))}), a suite workload, "
                "a mix preset, or a 'mix:<w>+<w>' spec"
            ) from None

    sub.add_argument(
        "target",
        type=_warm_target,
        metavar="EXPERIMENT|WORKLOAD|MIX",
        help="experiment id (all its simulations) or workload/mix name "
        "(baseline/ideal/STMS comparison)",
    )
    sub.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="scale preset (default: bench)",
    )
    sub.add_argument("--cores", type=int, default=4)
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for experiment targets",
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_warm)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
