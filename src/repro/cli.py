"""Command-line interface: run workloads, comparisons, and experiments.

Examples::

    python -m repro list-workloads
    python -m repro run --workload oltp-db2 --prefetcher stms --scale demo
    python -m repro compare --workload sci-em3d --scale demo
    python -m repro experiment fig9 --scale bench --output fig9.txt
    python -m repro sweep-sampling --workload web-apache --scale demo
    python -m repro cache warm fig4 --scale bench
    python -m repro cache stats
    python -m repro serve --port 8023
    python -m repro client submit --workload oltp-db2 --scale test

Every simulation command works through the persistent artifact store
(``--store-dir``, default ``$REPRO_STORE_DIR`` or ``~/.cache/
repro-stms``), so a figure regenerated twice — even across separate
invocations — is served from disk the second time.  ``--no-cache``
forces full recomputation.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from typing import Sequence

from repro.analysis.report import format_percent, format_table
from repro.experiments import (
    EXPERIMENTS,
    SAMPLED_EXPERIMENTS,
    run_experiment,
)
from repro.experiments.common import (
    add_sampling_arguments,
    sampling_spec_from_args,
)
from repro.sim.metrics import SimResult
from repro.sim.runner import (
    PrefetcherKind,
    compare_prefetchers,
    make_stms_config,
    run_workload,
)
from repro.sim.session import SimSession, set_session
from repro.sim.store import ArtifactStore, default_store_dir
from repro.workloads.mix import MIX_PRESETS, MixRecipe, is_mix
from repro.workloads.suite import SCALES, WORKLOADS, workload_names


def _workload_arg(value: str) -> str:
    """Validate a workload argument: suite name, mix preset, or spec.

    Mixes are accepted everywhere a homogeneous workload is (``run``,
    ``compare``, ``cache warm``): ``mix:2xoltp-db2+2xdss-db2`` assigns
    components to cores round-robin.  Components may carry asymmetric
    scheduling decorations — ``*S`` time-sliced instances, ``@R`` rate
    weight, ``!low`` demand-priority class — e.g.
    ``mix:oltp-db2*2+web-apache@0.5!low``.
    """
    if value in WORKLOADS:
        return value
    if is_mix(value):
        try:
            MixRecipe.parse(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
        return value
    raise argparse.ArgumentTypeError(
        f"unknown workload {value!r}; choose a suite workload "
        f"({', '.join(sorted(WORKLOADS))}), a mix preset "
        f"({', '.join(sorted(MIX_PRESETS))}), or a "
        "'mix:<w>[*S][@rate][!prio]+<w>...' spec"
    )


@contextlib.contextmanager
def _session_scope(args: argparse.Namespace):
    """Install the CLI-selected session (store + enabled) globally.

    ``--no-cache`` (or ``REPRO_SIM_CACHE=0``) disables both cache tiers;
    otherwise the artifact store at ``--store-dir`` backs the session,
    optionally read-through/write-back against a remote peer
    (``--remote-url`` or ``REPRO_REMOTE_URL``).  The choice is exported
    through the environment so pool workers of the parallel runner join
    the same store (and remote), and both the environment and the
    previous global session are restored on exit.
    """
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_SIM_CACHE", "REPRO_STORE_DIR", "REPRO_REMOTE_URL")
    }
    no_cache = (
        getattr(args, "no_cache", False)
        or os.environ.get("REPRO_SIM_CACHE", "1") == "0"
    )
    if no_cache:
        os.environ["REPRO_SIM_CACHE"] = "0"
        session = SimSession(enabled=False)
    else:
        store_dir = getattr(args, "store_dir", None) or default_store_dir()
        os.environ["REPRO_STORE_DIR"] = store_dir
        remote_url = getattr(args, "remote_url", None)
        if remote_url:
            os.environ["REPRO_REMOTE_URL"] = remote_url
        session = SimSession(enabled=True, store=ArtifactStore(store_dir))
    previous = set_session(session)
    try:
        yield session
    finally:
        store = session.store
        if store is not None and store.remote is not None:
            # Drain queued write-backs before the process exits, fold
            # the tier's counters into this run's stats, and publish
            # them persistently for ``cache stats``.
            store.remote.flush()
            session.fold_remote_stats()
            store.close_remote()
        set_session(previous)
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _result_rows(results: "dict[PrefetcherKind, SimResult]") -> list:
    baseline = results.get(PrefetcherKind.BASELINE)
    rows = []
    for kind, result in results.items():
        speedup = (
            f"{result.speedup_over(baseline):.3f}x"
            if baseline is not None
            else "-"
        )
        rows.append(
            [
                kind.value,
                format_percent(result.coverage.coverage),
                format_percent(result.coverage.partial_coverage),
                speedup,
                f"{result.overhead_per_useful_byte:.3f}",
                f"{result.mlp:.2f}",
            ]
        )
    return rows


def _print_results(
    workload: str, results: "dict[PrefetcherKind, SimResult]"
) -> None:
    print(
        format_table(
            ["prefetcher", "coverage", "partial", "speedup",
             "overhead/byte", "mlp"],
            _result_rows(results),
            title=f"{workload}",
        )
    )
    mix_rows = []
    for kind, result in results.items():
        if result.core_workloads is None:
            continue
        from repro.sim.metrics import per_workload_breakdown

        for name, piece in sorted(per_workload_breakdown(result).items()):
            mix_rows.append(
                [
                    kind.value,
                    name,
                    len(piece.cores),
                    format_percent(piece.coverage.coverage),
                    f"{piece.throughput:.4f}",
                    f"{piece.mlp:.2f}",
                ]
            )
    if mix_rows:
        print(
            format_table(
                ["prefetcher", "workload", "cores", "coverage",
                 "throughput", "mlp"],
                mix_rows,
                title="Per-workload split (multiprogrammed mix)",
            )
        )


def cmd_list_workloads(_: argparse.Namespace) -> int:
    rows = [
        [
            name,
            WORKLOADS[name].category,
            WORKLOADS[name].display,
            WORKLOADS[name].paper_mlp,
            format_percent(WORKLOADS[name].paper_ideal_coverage),
        ]
        for name in workload_names()
    ]
    print(
        format_table(
            ["name", "category", "display", "paper MLP",
             "paper ideal coverage"],
            rows,
            title="Paper workload suite (scaled synthetic analogues)",
        )
    )
    return 0


def cmd_list_experiments(_: argparse.Namespace) -> int:
    rows = [[name] for name in sorted(EXPERIMENTS)]
    print(format_table(["experiment"], rows, title="Available experiments"))
    return 0


def cmd_list_mixes(_: argparse.Namespace) -> int:
    rows = [
        [name, spec, " ".join(MixRecipe.parse(spec).assign(4))]
        for name, spec in sorted(MIX_PRESETS.items())
    ]
    print(
        format_table(
            ["preset", "spec", "4-core assignment"],
            rows,
            title="Multiprogrammed mix presets (or give any "
            "'mix:<w>+<w>...' spec; components take *S time slices, "
            "@R rate, !low priority — e.g. "
            "mix:oltp-db2*2+web-apache@0.5!low)",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    kind = PrefetcherKind(args.prefetcher)
    stms_config = None
    if kind is PrefetcherKind.STMS:
        stms_config = make_stms_config(
            args.scale,
            cores=args.cores,
            sampling_probability=args.sampling,
        )
    with _session_scope(args) as session:
        result = run_workload(
            args.workload,
            kind,
            scale=args.scale,
            cores=args.cores,
            seed=args.seed,
            stms_config=stms_config,
            session=session,
        )
    _print_results(args.workload, {kind: result})
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with _session_scope(args) as session:
        results = compare_prefetchers(
            args.workload, scale=args.scale, cores=args.cores,
            seed=args.seed, session=session,
        )
    _print_results(args.workload, results)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    options: dict = {"scale": args.scale}
    spec = sampling_spec_from_args(args)
    if spec.active:
        if args.name not in SAMPLED_EXPERIMENTS:
            print(
                f"error: --budget/--ci-width need a sampled-capable "
                f"experiment ({', '.join(sorted(SAMPLED_EXPERIMENTS))}), "
                f"not {args.name}",
                file=sys.stderr,
            )
            return 2
        options.update(
            budget=spec.budget,
            confidence=spec.confidence,
            ci_width=spec.ci_width,
        )
    if args.jobs is not None:
        from repro.sim.runner import ExperimentRunner

        options["runner"] = ExperimentRunner(
            max_workers=args.jobs, parallel=args.jobs > 1
        )
    with _session_scope(args) as session:
        result = run_experiment(args.name, session=session, **options)
    rendered = result.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0 if result.passed else 1


def cmd_sweep_sampling(args: argparse.Namespace) -> int:
    from repro.experiments import fig8_sampling

    with _session_scope(args) as session:
        result = fig8_sampling.run(
            scale=args.scale, cores=args.cores, seed=args.seed,
            workloads=(args.workload,), session=session,
        )
    print(result.render())
    return 0 if result.passed else 1


# ----------------------------------------------------------------------
# The `cache` subcommand group: ls / stats / gc / warm.
# ----------------------------------------------------------------------


def _open_store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(args.store_dir or default_store_dir())


def _format_size(count: int) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.1f}M"
    if count >= 1024:
        return f"{count / 1024:.1f}K"
    return f"{count}B"


def _entry_label(entry) -> str:
    """Human tag for one store entry (best-effort, never raises)."""
    try:
        if entry.kind == "result":
            import json

            with open(entry.path, "rb") as handle:
                record = json.load(handle)
            return (
                f"{record.get('workload', '?')} / "
                f"{record.get('prefetcher', '?')}"
            )
        if entry.kind == "estimate":
            import json

            with open(entry.path, "rb") as handle:
                payload = json.load(handle).get("payload", {})
            return (
                f"{payload.get('experiment', '?')} sampled "
                f"{payload.get('budget', '?')}/{payload.get('total', '?')}"
            )
        import numpy as np

        return str(np.load(entry.path)["meta_name"][0])
    except Exception:
        return "(unreadable)"


def cmd_cache_ls(args: argparse.Namespace) -> int:
    store = _open_store(args)
    entries = store.entries()
    now = time.time()
    rows = [
        [
            entry.kind,
            entry.digest[:12],
            _format_size(entry.size_bytes),
            f"{max(0.0, now - entry.mtime):.0f}s",
            _entry_label(entry),
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["kind", "digest", "size", "age", "artifact"],
            rows,
            title=f"{store.root} ({len(entries)} entries, LRU first)",
        )
    )
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    info = store.describe()
    cap = (
        _format_size(info["max_bytes"])
        if info["max_bytes"] is not None
        else "unbounded"
    )
    rows = [
        ["store", info["root"]],
        ["schema", str(info["schema"])],
        ["traces", f"{info['traces']} ({_format_size(info['trace_bytes'])})"],
        [
            "results",
            f"{info['results']} ({_format_size(info['result_bytes'])})",
        ],
        [
            "estimates",
            f"{info['estimates']} ({_format_size(info['estimate_bytes'])})",
        ],
        ["total", _format_size(info["total_bytes"])],
        ["size cap", cap],
    ]
    counters = info["counters"]
    for name, value in sorted(counters.items()):
        rows.append([name.replace("_", " "), str(value)])
    # Grid-grouping effectiveness: average cells served per sweep
    # invocation (versus per-cell fallbacks, reported above) makes
    # silent de-vectorization of sweep grids visible.
    invocations = counters.get("sweep_invocations", 0)
    if invocations:
        cells = counters.get("sweep_grouped_cells", 0)
        rows.append(["cells per sweep", f"{cells / invocations:.1f}"])
    # Data-plane effectiveness: how much of the bytes shipped to pool
    # workers travelled as zero-copy shared-memory views versus the
    # pickle/npz fallback path.
    zero_copy = counters.get("shm_bytes_zero_copy", 0)
    pickled = counters.get("shm_bytes_pickled", 0)
    if zero_copy or pickled:
        rows.append([
            "shm zero-copy share",
            f"{zero_copy / (zero_copy + pickled):.0%} "
            f"({_format_size(zero_copy)} shm vs "
            f"{_format_size(pickled)} pickled)",
        ])
    # Sampling effectiveness: what share of sweep cells ran under a
    # budget (with bootstrap intervals) versus the exact full grid, and
    # how much refinement re-runs reused instead of re-simulating.
    sampled = counters.get("sampling_sampled_cells", 0)
    exact = counters.get("sampling_exact_cells", 0)
    if sampled or exact:
        rows.append([
            "sampled cell share",
            f"{sampled / (sampled + exact):.0%} "
            f"({sampled} sampled vs {exact} exact)",
        ])
    reused = counters.get("sampling_reused_cells", 0)
    if reused:
        rows.append([
            "refinement reuse",
            f"{reused} cells answered by the store across re-runs",
        ])
    # Service effectiveness: per-endpoint hit rate and mean latency
    # derived from the daemon's persisted request counters.
    submits = counters.get("service_submit_requests", 0)
    if submits:
        warm = counters.get("service_warm_hits", 0)
        rows.append([
            "service warm hit rate",
            f"{warm / submits:.0%} ({warm}/{submits} submits)",
        ])
    for endpoint in ("submit", "status", "fetch"):
        requests = counters.get(f"service_{endpoint}_requests", 0)
        ms_total = counters.get(f"service_{endpoint}_ms_total", 0)
        if requests:
            rows.append([
                f"service {endpoint} mean latency",
                f"{ms_total / requests:.0f}ms over {requests} requests",
            ])
    # Remote-tier effectiveness: read-through hit rate against the
    # fleet's shared peer, plus outage behaviour (errors are failed
    # requests, skips are requests the open breaker never sent).
    remote_reads = counters.get("remote_hits", 0) + counters.get(
        "remote_misses", 0
    )
    if remote_reads:
        hits = counters.get("remote_hits", 0)
        rows.append([
            "remote hit rate",
            f"{hits / remote_reads:.0%} ({hits}/{remote_reads} probes)",
        ])
    if info.get("remote") is not None:
        remote = info["remote"]
        breaker = "open" if remote["breaker_open"] else "closed"
        verified = {
            True: "verified", False: "MISMATCH", None: "unverified"
        }[remote["schema_verified"]]
        rows.append([
            "remote peer",
            f"{remote['url']} (schema {verified}, breaker {breaker}, "
            f"{remote['pending_writebacks']} pending write-backs)",
        ])
    print(format_table(["field", "value"], rows, title="Artifact store"))
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.clear:
        removed = store.clear()
        skipped = store.stats.pinned_skipped
        pinned = (
            f" ({skipped} kept: pinned by pending write-backs)"
            if skipped
            else ""
        )
        print(f"cleared {removed} entries from {store.root}{pinned}")
        return 0
    max_bytes = (
        int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
    )
    if max_bytes is None and store.max_bytes is None:
        print(
            "no size cap given: pass --max-mb N (or --clear, or set "
            "REPRO_STORE_MAX_MB)"
        )
        return 1
    evicted = store.gc(max_bytes)
    print(
        f"evicted {evicted} entries; {_format_size(store.total_bytes())} "
        f"remain in {store.root}"
    )
    return 0


def cmd_cache_warm(args: argparse.Namespace) -> int:
    """Populate the store by running a figure or workload once."""
    started = time.perf_counter()
    with _session_scope(args) as session:
        if args.target in EXPERIMENTS:
            options: dict = {
                "scale": args.scale,
                "cores": args.cores,
                "seed": args.seed,
                "session": session,
            }
            if args.jobs is not None:
                from repro.sim.runner import ExperimentRunner

                options["runner"] = ExperimentRunner(
                    max_workers=args.jobs, parallel=args.jobs > 1
                )
            run_experiment(args.target, **options)
        else:
            compare_prefetchers(
                args.target,
                scale=args.scale,
                cores=args.cores,
                seed=args.seed,
                session=session,
            )
        elapsed = time.perf_counter() - started
        stats = session.stats
        store = session.store
    print(
        f"warmed {args.target} @ {args.scale} in {elapsed:.1f}s: "
        f"{stats.sim_misses} simulated, {stats.sim_hits} memory hits, "
        f"{stats.sim_store_hits} store hits "
        f"({stats.trace_store_hits} trace store hits, "
        f"{stats.bundle_skips} bundles skipped, "
        f"{stats.shm_attaches} shm attaches)"
    )
    if store is not None:
        print(
            f"store {store.root}: {store.stats.writes} writes, "
            f"{_format_size(store.total_bytes())} total"
        )
    if (
        stats.remote_hits or stats.remote_misses or stats.remote_errors
        or stats.remote_skipped or stats.remote_writebacks
    ):
        print(
            f"remote: {stats.remote_hits} remote hits, "
            f"{stats.remote_misses} remote misses, "
            f"{stats.remote_writebacks} write-backs, "
            f"{stats.remote_errors} remote errors, "
            f"{stats.remote_skipped} skipped"
        )
    return 0


# ----------------------------------------------------------------------
# The service: `serve` (daemon) and `client` (submit/status/fetch).
# ----------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service daemon until interrupted."""
    import asyncio

    from repro.service import ServiceConfig, ServiceDaemon

    kwargs: dict = {
        "host": args.host,
        "store_dir": args.store_dir or default_store_dir(),
    }
    if args.port is not None:
        kwargs["port"] = args.port
    if args.timeout is not None:
        kwargs["timeout_s"] = args.timeout
    if args.retries is not None:
        kwargs["retries"] = args.retries
    if args.workers is not None:
        kwargs["max_concurrent"] = max(1, args.workers)
    daemon = ServiceDaemon(ServiceConfig(**kwargs))

    async def _serve() -> None:
        host, port = await daemon.start()
        print(
            f"repro service listening on http://{host}:{port} "
            f"(store {daemon.store.root})",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("repro service stopped")
    return 0


def cmd_store_serve(args: argparse.Namespace) -> int:
    """Serve the artifact store to remote peers until interrupted."""
    import asyncio

    from repro.service import ObjectStoreDaemon

    daemon = ObjectStoreDaemon(
        args.store_dir or default_store_dir(),
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        host, port = await daemon.start()
        print(
            f"repro object store listening on http://{host}:{port} "
            f"(store {daemon.store.root})",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print("repro object store stopped")
    return 0


def _client_spec(args: argparse.Namespace) -> dict:
    from repro.service.client import job_spec

    overrides = None
    if getattr(args, "sampling", None) is not None:
        overrides = {"sampling_probability": args.sampling}
    return job_spec(
        args.workload,
        kind=args.prefetcher,
        scale=args.scale,
        cores=args.cores,
        seed=args.seed,
        records_per_core=args.records_per_core,
        stms_overrides=overrides,
    )


def _client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _print_submit_response(tag: str, response: dict) -> None:
    parts = [
        f"state={response.get('state', '?')}",
        f"warm={response.get('warm', False)}",
    ]
    if response.get("timed_out"):
        parts.append("timed_out=True")
    parts.append(f"key={response.get('key', '?')}")
    print(f"{tag} " + " ".join(parts))


def cmd_client_submit(args: argparse.Namespace) -> int:
    import concurrent.futures
    import json

    from repro.service import ServiceError

    client = _client(args)
    spec = _client_spec(args)
    fan_out = max(1, args.concurrent)

    def _one(index: int) -> dict:
        return client.submit(
            spec, wait=not args.no_wait, timeout_s=args.timeout
        )

    failed = 0
    if fan_out == 1:
        try:
            responses = [_one(0)]
        except ServiceError as error:
            print(f"submit failed: {error}", file=sys.stderr)
            return 1
    else:
        # Concurrent fan-out from one client: N parallel submits of the
        # SAME spec demonstrate (and let CI assert) the daemon's
        # single-flight — one simulation feeds every waiter.
        with concurrent.futures.ThreadPoolExecutor(fan_out) as pool:
            futures = [pool.submit(_one, i) for i in range(fan_out)]
            responses = []
            for future in futures:
                try:
                    responses.append(future.result())
                except ServiceError as error:
                    failed += 1
                    print(f"submit failed: {error}", file=sys.stderr)
    for index, response in enumerate(responses):
        _print_submit_response(f"[{index}]", response)
    if args.output and responses and responses[0].get("result"):
        with open(args.output, "w") as handle:
            json.dump(responses[0]["result"], handle, sort_keys=True)
        print(f"wrote {args.output}")
    done = sum(1 for r in responses if r.get("state") == "done")
    print(
        f"{done}/{fan_out} done "
        f"({sum(1 for r in responses if r.get('warm'))} warm)"
    )
    return 1 if failed else 0


def cmd_client_status(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError

    try:
        payload = _client(args).status(_client_spec(args))
    except ServiceError as error:
        print(f"status failed: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, sort_keys=True))
    return 0


def cmd_client_fetch(args: argparse.Namespace) -> int:
    from repro.service import ServiceError

    try:
        raw = _client(args).fetch_bytes(_client_spec(args))
    except ServiceError as error:
        print(f"fetch failed: {error}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(raw)
        print(f"wrote {args.output} ({len(raw)} bytes)")
    else:
        sys.stdout.write(raw.decode("utf-8"))
    return 0


def cmd_client_ping(args: argparse.Namespace) -> int:
    client = _client(args)
    if client.wait_until_ready(args.deadline):
        print(f"service at {client.url} is up")
        return 0
    print(f"service at {client.url} did not answer", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STMS (HPCA 2009) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale", default="demo", choices=sorted(SCALES),
            help="scale preset (default: demo)",
        )
        sub.add_argument("--cores", type=int, default=4)
        sub.add_argument("--seed", type=int, default=7)
        add_cache_options(sub)

    def add_cache_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--no-cache", action="store_true",
            help="bypass the session memo and the artifact store "
            "(forces full recomputation)",
        )
        add_store_dir(sub)
        add_remote_url(sub)

    def add_remote_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--remote-url", default=None, metavar="URL",
            help="remote object-store peer for read-through/write-back "
            "(default: $REPRO_REMOTE_URL; REPRO_REMOTE=off disables)",
        )

    def add_store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store-dir", default=None, metavar="DIR",
            help="artifact-store directory (default: $REPRO_STORE_DIR "
            "or ~/.cache/repro-stms)",
        )

    sub = subparsers.add_parser(
        "list-workloads", help="show the workload suite"
    )
    sub.set_defaults(entry=cmd_list_workloads)

    sub = subparsers.add_parser(
        "list-experiments", help="show available experiments"
    )
    sub.set_defaults(entry=cmd_list_experiments)

    sub = subparsers.add_parser(
        "list-mixes", help="show multiprogrammed mix presets"
    )
    sub.set_defaults(entry=cmd_list_mixes)

    sub = subparsers.add_parser("run", help="simulate one prefetcher")
    sub.add_argument(
        "--workload", required=True, type=_workload_arg,
        metavar="WORKLOAD|MIX",
        help="suite workload, mix preset, or 'mix:<w>+<w>...' spec",
    )
    sub.add_argument(
        "--prefetcher",
        default="stms",
        choices=[kind.value for kind in PrefetcherKind],
    )
    sub.add_argument(
        "--sampling", type=float, default=0.125,
        help="STMS index-update sampling probability",
    )
    add_common(sub)
    sub.set_defaults(entry=cmd_run)

    sub = subparsers.add_parser(
        "compare", help="baseline vs ideal vs STMS on one workload"
    )
    sub.add_argument(
        "--workload", required=True, type=_workload_arg,
        metavar="WORKLOAD|MIX",
        help="suite workload, mix preset, or 'mix:<w>+<w>...' spec",
    )
    add_common(sub)
    sub.set_defaults(entry=cmd_compare)

    sub = subparsers.add_parser(
        "experiment", help="regenerate one paper figure/table"
    )
    sub.add_argument("name", choices=sorted(EXPERIMENTS))
    sub.add_argument("--output", help="write the rendered figure here")
    sub.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="scale preset (default: bench)",
    )
    sub.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulation grid "
        "(default: REPRO_JOBS or the CPU count)",
    )
    add_sampling_arguments(sub)
    add_cache_options(sub)
    sub.set_defaults(entry=cmd_experiment)

    sub = subparsers.add_parser(
        "sweep-sampling", help="Fig. 8 sweep on one workload"
    )
    sub.add_argument("--workload", required=True,
                     choices=sorted(WORKLOADS))
    add_common(sub)
    sub.set_defaults(entry=cmd_sweep_sampling)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage the persistent artifact store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    sub = cache_sub.add_parser(
        "ls", help="list persisted artifacts (least recently used first)"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_ls)

    sub = cache_sub.add_parser(
        "stats", help="entry counts and sizes of the store"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_stats)

    sub = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries past a size cap"
    )
    sub.add_argument(
        "--max-mb", type=float, default=None,
        help="target size in MiB (default: REPRO_STORE_MAX_MB)",
    )
    sub.add_argument(
        "--clear", action="store_true", help="remove every entry"
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_cache_gc)

    sub = cache_sub.add_parser(
        "warm", help="populate the store by running a figure or workload"
    )
    def _warm_target(value: str) -> str:
        if value in EXPERIMENTS:
            return value
        if is_mix(value):
            # A mix spec with a bad component gets the specific
            # diagnosis, not the generic target list.
            return _workload_arg(value)
        try:
            return _workload_arg(value)
        except argparse.ArgumentTypeError:
            raise argparse.ArgumentTypeError(
                f"unknown warm target {value!r}; choose an experiment "
                f"({', '.join(sorted(EXPERIMENTS))}), a suite workload, "
                "a mix preset, or a 'mix:<w>+<w>' spec"
            ) from None

    sub.add_argument(
        "target",
        type=_warm_target,
        metavar="EXPERIMENT|WORKLOAD|MIX",
        help="experiment id (all its simulations) or workload/mix name "
        "(baseline/ideal/STMS comparison)",
    )
    sub.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="scale preset (default: bench)",
    )
    sub.add_argument("--cores", type=int, default=4)
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for experiment targets",
    )
    add_store_dir(sub)
    add_remote_url(sub)
    sub.set_defaults(entry=cmd_cache_warm)

    sub = subparsers.add_parser(
        "serve",
        help="run the simulation service daemon over the shared store",
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument(
        "--port", type=int, default=None,
        help="listen port (default: REPRO_SERVE_PORT or 8023; 0 for "
        "an ephemeral port)",
    )
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request wait bound in seconds "
        "(default: REPRO_SERVE_TIMEOUT_S or 300)",
    )
    sub.add_argument(
        "--retries", type=int, default=None,
        help="re-executions after a worker failure "
        "(default: REPRO_SERVE_RETRIES or 1)",
    )
    sub.add_argument(
        "--workers", type=int, default=None,
        help="concurrent simulations "
        "(default: REPRO_SERVE_WORKERS or 2)",
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_serve)

    store = subparsers.add_parser(
        "store",
        help="serve the artifact store to remote peers",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    sub = store_sub.add_parser(
        "serve",
        help="run the object-store daemon (the fleet's remote tier)",
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: an ephemeral port, printed on start)",
    )
    add_store_dir(sub)
    sub.set_defaults(entry=cmd_store_serve)

    client = subparsers.add_parser(
        "client", help="talk to a running simulation service daemon"
    )
    client_sub = client.add_subparsers(
        dest="client_command", required=True
    )

    def add_client_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url", default=None,
            help="service URL (default: REPRO_SERVE_URL or "
            "http://127.0.0.1:$REPRO_SERVE_PORT)",
        )

    def add_client_job(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workload", required=True, type=_workload_arg,
            metavar="WORKLOAD|MIX",
        )
        sub.add_argument(
            "--prefetcher", default="stms",
            choices=[kind.value for kind in PrefetcherKind],
        )
        sub.add_argument(
            "--scale", default="bench", choices=sorted(SCALES),
        )
        sub.add_argument("--cores", type=int, default=4)
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument(
            "--records-per-core", type=int, default=None,
        )
        sub.add_argument(
            "--sampling", type=float, default=None,
            help="STMS index-update sampling probability override",
        )
        add_client_common(sub)

    sub = client_sub.add_parser(
        "submit", help="submit a job (warm-served or single-flighted)"
    )
    add_client_job(sub)
    sub.add_argument(
        "--no-wait", action="store_true",
        help="return immediately; poll `client status` for completion",
    )
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request wait bound (overrides the daemon default)",
    )
    sub.add_argument(
        "--concurrent", type=int, default=1, metavar="N",
        help="fire N parallel submits of the same spec (single-flight "
        "demo: the daemon runs one simulation for all of them)",
    )
    sub.add_argument("--output", help="write the result record here")
    sub.set_defaults(entry=cmd_client_submit)

    sub = client_sub.add_parser(
        "status", help="request state for a job spec"
    )
    add_client_job(sub)
    sub.set_defaults(entry=cmd_client_status)

    sub = client_sub.add_parser(
        "fetch", help="download the persisted result record for a spec"
    )
    add_client_job(sub)
    sub.add_argument("--output", help="write the raw record here")
    sub.set_defaults(entry=cmd_client_fetch)

    sub = client_sub.add_parser(
        "ping", help="wait until the daemon answers /healthz"
    )
    add_client_common(sub)
    sub.add_argument(
        "--deadline", type=float, default=15.0, metavar="S",
        help="give up after this many seconds (default 15)",
    )
    sub.set_defaults(entry=cmd_client_ping)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
