"""Command-line interface: run workloads, comparisons, and experiments.

Examples::

    python -m repro list-workloads
    python -m repro run --workload oltp-db2 --prefetcher stms --scale demo
    python -m repro compare --workload sci-em3d --scale demo
    python -m repro experiment fig9 --scale bench --output fig9.txt
    python -m repro sweep-sampling --workload web-apache --scale demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.report import format_percent, format_table
from repro.experiments import EXPERIMENTS, run_experiment
from repro.sim.metrics import SimResult
from repro.sim.runner import (
    PrefetcherKind,
    compare_prefetchers,
    make_stms_config,
    run_workload,
)
from repro.workloads.suite import SCALES, WORKLOADS, workload_names


def _result_rows(results: "dict[PrefetcherKind, SimResult]") -> list:
    baseline = results.get(PrefetcherKind.BASELINE)
    rows = []
    for kind, result in results.items():
        speedup = (
            f"{result.speedup_over(baseline):.3f}x"
            if baseline is not None
            else "-"
        )
        rows.append(
            [
                kind.value,
                format_percent(result.coverage.coverage),
                format_percent(result.coverage.partial_coverage),
                speedup,
                f"{result.overhead_per_useful_byte:.3f}",
                f"{result.mlp:.2f}",
            ]
        )
    return rows


def _print_results(
    workload: str, results: "dict[PrefetcherKind, SimResult]"
) -> None:
    print(
        format_table(
            ["prefetcher", "coverage", "partial", "speedup",
             "overhead/byte", "mlp"],
            _result_rows(results),
            title=f"{workload}",
        )
    )


def cmd_list_workloads(_: argparse.Namespace) -> int:
    rows = [
        [
            name,
            WORKLOADS[name].category,
            WORKLOADS[name].display,
            WORKLOADS[name].paper_mlp,
            format_percent(WORKLOADS[name].paper_ideal_coverage),
        ]
        for name in workload_names()
    ]
    print(
        format_table(
            ["name", "category", "display", "paper MLP",
             "paper ideal coverage"],
            rows,
            title="Paper workload suite (scaled synthetic analogues)",
        )
    )
    return 0


def cmd_list_experiments(_: argparse.Namespace) -> int:
    rows = [[name] for name in sorted(EXPERIMENTS)]
    print(format_table(["experiment"], rows, title="Available experiments"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    kind = PrefetcherKind(args.prefetcher)
    stms_config = None
    if kind is PrefetcherKind.STMS:
        stms_config = make_stms_config(
            args.scale,
            cores=args.cores,
            sampling_probability=args.sampling,
        )
    result = run_workload(
        args.workload,
        kind,
        scale=args.scale,
        cores=args.cores,
        seed=args.seed,
        stms_config=stms_config,
    )
    _print_results(args.workload, {kind: result})
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    results = compare_prefetchers(
        args.workload, scale=args.scale, cores=args.cores, seed=args.seed
    )
    _print_results(args.workload, results)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    options: dict = {"scale": args.scale}
    if args.jobs is not None:
        from repro.sim.runner import ExperimentRunner

        options["runner"] = ExperimentRunner(
            max_workers=args.jobs, parallel=args.jobs > 1
        )
    result = run_experiment(args.name, **options)
    rendered = result.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0 if result.passed else 1


def cmd_sweep_sampling(args: argparse.Namespace) -> int:
    from repro.experiments import fig8_sampling

    result = fig8_sampling.run(
        scale=args.scale, cores=args.cores, seed=args.seed,
        workloads=(args.workload,),
    )
    print(result.render())
    return 0 if result.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STMS (HPCA 2009) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale", default="demo", choices=sorted(SCALES),
            help="scale preset (default: demo)",
        )
        sub.add_argument("--cores", type=int, default=4)
        sub.add_argument("--seed", type=int, default=7)

    sub = subparsers.add_parser(
        "list-workloads", help="show the workload suite"
    )
    sub.set_defaults(entry=cmd_list_workloads)

    sub = subparsers.add_parser(
        "list-experiments", help="show available experiments"
    )
    sub.set_defaults(entry=cmd_list_experiments)

    sub = subparsers.add_parser("run", help="simulate one prefetcher")
    sub.add_argument("--workload", required=True,
                     choices=sorted(WORKLOADS))
    sub.add_argument(
        "--prefetcher",
        default="stms",
        choices=[kind.value for kind in PrefetcherKind],
    )
    sub.add_argument(
        "--sampling", type=float, default=0.125,
        help="STMS index-update sampling probability",
    )
    add_common(sub)
    sub.set_defaults(entry=cmd_run)

    sub = subparsers.add_parser(
        "compare", help="baseline vs ideal vs STMS on one workload"
    )
    sub.add_argument("--workload", required=True,
                     choices=sorted(WORKLOADS))
    add_common(sub)
    sub.set_defaults(entry=cmd_compare)

    sub = subparsers.add_parser(
        "experiment", help="regenerate one paper figure/table"
    )
    sub.add_argument("name", choices=sorted(EXPERIMENTS))
    sub.add_argument("--output", help="write the rendered figure here")
    sub.add_argument(
        "--scale", default="bench", choices=sorted(SCALES),
        help="scale preset (default: bench)",
    )
    sub.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the simulation grid "
        "(default: REPRO_JOBS or the CPU count)",
    )
    sub.set_defaults(entry=cmd_experiment)

    sub = subparsers.add_parser(
        "sweep-sampling", help="Fig. 8 sweep on one workload"
    )
    sub.add_argument("--workload", required=True,
                     choices=sorted(WORKLOADS))
    add_common(sub)
    sub.set_defaults(entry=cmd_sweep_sampling)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
