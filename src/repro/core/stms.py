"""Sampled Temporal Memory Streaming: the practical off-chip prefetcher.

:class:`StmsPrefetcher` wires the paper's Figure 2 together:

* per-core **history buffers** and a shared **index table**, both living
  in a reserved region of simulated main memory (every access charged to
  the DRAM channel at low priority);
* a shared on-chip **bucket buffer** (8 KB) caching index buckets between
  lookup, update, and write-back;
* per-core **stream engines** with FIFO address queues feeding per-core
  **prefetch buffers** (2 KB each).

Operation on an off-chip read miss:

1. If the miss matches an end-of-stream pause, streaming resumes.
2. Otherwise the miss address is hashed and its bucket fetched (one
   memory access unless buffered); a tag match yields a history pointer.
3. The miss is recorded in the core's history buffer; with probability
   ``sampling_probability`` the index entry is (re)pointed at it.
4. On a pointer hit, the stream engine fetches the history block at the
   pointer (second memory access) and starts streaming: the address
   queue issues prefetches, maintaining ``lookahead`` in flight, and
   refills itself with further history blocks as the core consumes.

Total off-chip lookup cost: two round trips, amortized over an
arbitrarily long stream — the paper's central practicality claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bucket_buffer import BucketBuffer
from repro.core.codec import HISTORY_ENTRIES_PER_BLOCK
from repro.core.config import StmsConfig
from repro.core.history_buffer import HistoryBuffer, HistoryPointer
from repro.core.index_table import IndexTable
from repro.core.sampling import ProbabilisticSampler
from repro.core.stream_engine import StreamEngine
from repro.memory.address import BLOCK_BYTES, AddressSpace
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.base import ResidencyFilter, TemporalPrefetcher


@dataclass
class StmsCounters:
    """STMS-specific event counters (beyond PrefetcherStats)."""

    resumes: int = 0
    annotations: int = 0
    stale_pointers: int = 0
    candidate_updates: int = 0
    applied_updates: int = 0


class StmsPrefetcher(TemporalPrefetcher):
    """The paper's practical design with off-chip meta-data."""

    def __init__(
        self,
        config: StmsConfig,
        dram: DramChannel,
        traffic: TrafficMeter,
        address_space: "AddressSpace | None" = None,
        residency_filter: ResidencyFilter | None = None,
    ) -> None:
        super().__init__(
            config.cores,
            dram,
            traffic,
            residency_filter,
            config.prefetch_buffer_blocks,
        )
        self.config = config
        self.counters = StmsCounters()
        if address_space is None:
            address_space = AddressSpace(3 * 1024 ** 3)
        self.address_space = address_space

        index_region = address_space.reserve(config.index_buckets * BLOCK_BYTES)
        self.index = IndexTable(
            buckets=config.index_buckets,
            bucket_entries=config.bucket_entries,
            region=index_region,
            tag_bits=config.tag_bits,
        )
        self.histories: list[HistoryBuffer] = []
        history_blocks = -(-config.history_entries // HISTORY_ENTRIES_PER_BLOCK)
        for core in range(config.cores):
            region = address_space.reserve(history_blocks * BLOCK_BYTES)
            self.histories.append(
                HistoryBuffer(
                    core=core,
                    capacity_entries=config.history_entries,
                    region=region,
                    dram=dram,
                    traffic=traffic,
                )
            )
        self.bucket_buffer = BucketBuffer(
            capacity=config.bucket_buffer_entries, dram=dram, traffic=traffic
        )
        self.sampler = ProbabilisticSampler(
            config.sampling_probability, seed=config.seed
        )
        self.engines = [
            StreamEngine(
                core=core,
                queue_capacity=config.address_queue_entries,
                refill_threshold=config.queue_refill_threshold,
            )
            for core in range(config.cores)
        ]

    # ------------------------------------------------------------------
    # Trigger path.
    # ------------------------------------------------------------------

    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        engine = self.engines[core]

        # An annotated stream end pauses streaming; it resumes only when
        # the core explicitly requests the annotated address (Section 4.5).
        if engine.confirm_resume(block):
            self.counters.resumes += 1
            self._record(core, block, now)
            self._refill(core, now)
            self._issue(core, now)
            return

        # Index lookup: one bucket fetch (single memory access when the
        # bucket buffer misses), linear search on chip.
        self.stats.lookups += 1
        bucket = self.index.bucket_of(block)
        bucket_ready = self.bucket_buffer.access(
            bucket, now, charge=TrafficCategory.LOOKUP_STREAMS
        )
        pointer = self.index.lookup(block)

        # Record the miss after the lookup so the lookup observes the
        # *previous* occurrence, not the one being recorded.
        self._record(core, block, now)

        if pointer is None:
            # No stream found: any active stream keeps flowing (the miss
            # may be unrelated noise interleaved with the stream).
            return
        if not self.histories[pointer.core].is_valid(pointer.sequence):
            # The logged occurrence was overwritten (stale index entry —
            # expected under probabilistic update and circular logging).
            self.counters.stale_pointers += 1
            return

        self.stats.lookup_hits += 1
        self._annotate_abandoned(core, now)
        engine.begin(
            source_core=pointer.core,
            next_fetch_sequence=pointer.sequence + 1,
        )
        # The stream's first history block can only be fetched once the
        # bucket arrives: two dependent round trips total.
        self._refill(core, bucket_ready)
        self._issue(core, bucket_ready)

    # ------------------------------------------------------------------
    # Prefetched-hit path.
    # ------------------------------------------------------------------

    def _on_prefetch_hit(self, core: int, block: int, now: float) -> None:
        self.engines[core].on_consumed(block)
        self._record(core, block, now)
        self._refill(core, now)
        self._issue(core, now)

    # ------------------------------------------------------------------
    # Recording and sampled index update.
    # ------------------------------------------------------------------

    def _record(self, core: int, block: int, now: float) -> None:
        """Append to the history log; maybe apply the index update."""
        sequence = self.histories[core].append(block, now)
        self.counters.candidate_updates += 1
        if not self.sampler.should_update():
            return
        self.counters.applied_updates += 1
        bucket = self.index.bucket_of(block)
        self.bucket_buffer.access(
            bucket, now, dirty=True, charge=TrafficCategory.UPDATE_INDEX
        )
        self.index.update(block, HistoryPointer(core=core, sequence=sequence))

    # ------------------------------------------------------------------
    # Streaming mechanics.
    # ------------------------------------------------------------------

    def _refill(self, core: int, now: float) -> None:
        """Keep the address queue fed from the source history buffer."""
        engine = self.engines[core]
        while engine.needs_refill() and engine.queue_free > 0:
            source = self.histories[engine.source_core]
            entries, arrival = source.read_block(
                engine.next_fetch_sequence, now
            )
            if not entries:
                # Caught up with the recording head, or the stream was
                # overwritten: nothing more to follow.
                engine.active = False
                break
            engine.enqueue_entries(entries, arrival)
            if engine.paused_at is not None:
                break

    def _issue(self, core: int, now: float) -> None:
        """Issue prefetches, maintaining ``lookahead`` blocks in flight.

        The bound applies to the *current* stream generation: buffered
        leftovers of abandoned streams age out of the FIFO prefetch
        buffer instead of throttling the live stream.
        """
        engine = self.engines[core]
        buffer = self.buffers[core]
        budget = self.config.lookahead - buffer.outstanding(engine.serial)
        while budget > 0:
            entry = engine.pop_for_prefetch()
            if entry is None:
                break
            issued = self._issue_prefetch(
                core,
                entry.block,
                max(now, entry.ready_at),
                stream=engine.serial,
            )
            if issued:
                budget -= 1

    def _annotate_abandoned(self, core: int, now: float) -> None:
        """Mark the end of a stream the core stopped consuming.

        Called when switching to a freshly located stream while the old
        one still has unconsumed entries: the entry following the last
        contiguous successfully prefetched address gets the mark.
        """
        engine = self.engines[core]
        if not self.config.annotate_stream_ends:
            return
        if engine.consumed_count == 0:
            return
        if not (engine.queue_depth > 0 or engine.active):
            return
        target = engine.annotation_target()
        if target is None:
            return
        source_core, sequence = target
        if self.histories[source_core].annotate(sequence, now):
            self.counters.annotations += 1

    # ------------------------------------------------------------------
    # Shutdown.
    # ------------------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Flush pack buffers, write back dirty buckets, drain buffers."""
        for history in self.histories:
            history.flush(now)
        self.bucket_buffer.drain(now)
        super().finalize(now)
