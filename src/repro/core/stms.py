"""Sampled Temporal Memory Streaming: the practical off-chip prefetcher.

:class:`StmsPrefetcher` wires the paper's Figure 2 together:

* per-core **history buffers** and a shared **index table**, both living
  in a reserved region of simulated main memory (every access charged to
  the DRAM channel at low priority);
* a shared on-chip **bucket buffer** (8 KB) caching index buckets between
  lookup, update, and write-back;
* per-core **stream engines** with FIFO address queues feeding per-core
  **prefetch buffers** (2 KB each).

Operation on an off-chip read miss:

1. If the miss matches an end-of-stream pause, streaming resumes.
2. Otherwise the miss address is hashed and its bucket fetched (one
   memory access unless buffered); a tag match yields a history pointer.
3. The miss is recorded in the core's history buffer; with probability
   ``sampling_probability`` the index entry is (re)pointed at it.
4. On a pointer hit, the stream engine fetches the history block at the
   pointer (second memory access) and starts streaming: the address
   queue issues prefetches, maintaining ``lookahead`` in flight, and
   refills itself with further history blocks as the core consumes.

Total off-chip lookup cost: two round trips, amortized over an
arbitrarily long stream — the paper's central practicality claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bucket_buffer import BucketBuffer
from repro.core.codec import HISTORY_ENTRIES_PER_BLOCK
from repro.core.config import StmsConfig
from repro.core.history_buffer import HistoryBuffer, HistoryPointer
from repro.core.index_table import IndexTable
from repro.core.sampling import ProbabilisticSampler
from repro.core.stream_engine import StreamEngine
from repro.memory.address import BLOCK_BYTES, AddressSpace
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.base import (
    PrefetchedBlock,
    ResidencyFilter,
    TemporalPrefetcher,
)


@dataclass
class StmsCounters:
    """STMS-specific event counters (beyond PrefetcherStats)."""

    resumes: int = 0
    annotations: int = 0
    stale_pointers: int = 0
    candidate_updates: int = 0
    applied_updates: int = 0


class StmsPrefetcher(TemporalPrefetcher):
    """The paper's practical design with off-chip meta-data."""

    __slots__ = ('config', 'counters', 'address_space', 'index', 'histories', 'bucket_buffer', 'sampler', 'engines')

    def __init__(
        self,
        config: StmsConfig,
        dram: DramChannel,
        traffic: TrafficMeter,
        address_space: "AddressSpace | None" = None,
        residency_filter: ResidencyFilter | None = None,
    ) -> None:
        super().__init__(
            config.cores,
            dram,
            traffic,
            residency_filter,
            config.prefetch_buffer_blocks,
        )
        self.config = config
        self.counters = StmsCounters()
        if address_space is None:
            address_space = AddressSpace(3 * 1024 ** 3)
        self.address_space = address_space

        index_region = address_space.reserve(config.index_buckets * BLOCK_BYTES)
        self.index = IndexTable(
            buckets=config.index_buckets,
            bucket_entries=config.bucket_entries,
            region=index_region,
            tag_bits=config.tag_bits,
        )
        self.histories: list[HistoryBuffer] = []
        history_blocks = -(-config.history_entries // HISTORY_ENTRIES_PER_BLOCK)
        for core in range(config.cores):
            region = address_space.reserve(history_blocks * BLOCK_BYTES)
            self.histories.append(
                HistoryBuffer(
                    core=core,
                    capacity_entries=config.history_entries,
                    region=region,
                    dram=dram,
                    traffic=traffic,
                )
            )
        self.bucket_buffer = BucketBuffer(
            capacity=config.bucket_buffer_entries, dram=dram, traffic=traffic
        )
        self.sampler = ProbabilisticSampler(
            config.sampling_probability, seed=config.seed
        )
        self.engines = [
            StreamEngine(
                core=core,
                queue_capacity=config.address_queue_entries,
                refill_threshold=config.queue_refill_threshold,
            )
            for core in range(config.cores)
        ]

    # ------------------------------------------------------------------
    # Trigger path.
    # ------------------------------------------------------------------

    def metadata_geometry(self) -> "tuple[int, int | None]":
        """The index parameters :meth:`metadata_columns` depends on.

        The sweep engine keys its shared, config-axis-stacked
        bucket/tag columns by this pair: cells whose geometries match
        reuse one precomputed classification instead of re-deriving it
        per cell (see :mod:`repro.sim.sweep`).
        """
        return (self.config.index_buckets, self.config.tag_bits)

    def metadata_columns(
        self, blocks_arrays: "list"
    ) -> "tuple[list, list]":
        """Pre-classify whole block columns into index buckets and tags.

        The batched engine hands in one NumPy block column per core and
        gets back native-typed bucket/tag columns, computed in one
        vectorized pass each, to feed :meth:`on_demand_miss_hashed` and
        :meth:`_prefetch_hit_hashed` — the scalar per-record hash
        disappears from the event path.  With full-address tags (``tag_bits is
        None``) the tag element is ``None``: the caller reuses its block
        columns as the tag columns.
        """
        index = self.index
        buckets = [
            index.bucket_of_array(blocks).tolist()
            for blocks in blocks_arrays
        ]
        if self.config.tag_bits is None:
            # Full-address tags: the caller can alias its block columns.
            return buckets, None
        tags = [
            index.tag_of_array(blocks).tolist() for blocks in blocks_arrays
        ]
        return buckets, tags

    def on_demand_miss(self, core: int, block: int, now: float) -> None:
        self.on_demand_miss_hashed(
            core,
            block,
            now,
            self.index.bucket_of(block),
            self.index.tag_of(block),
        )

    def on_demand_miss_hashed(
        self, core: int, block: int, now: float, bucket: int, tag: int
    ) -> None:
        """:meth:`on_demand_miss` with the bucket/tag precomputed."""
        engine = self.engines[core]

        # An annotated stream end pauses streaming; it resumes only when
        # the core explicitly requests the annotated address
        # (Section 4.5; StreamEngine.confirm_resume inlined).
        paused = engine.paused_at
        if paused is not None and paused.block == block:
            engine.paused_at = None
            engine.last_consumed = paused
            engine.consumed_count += 1
            self.counters.resumes += 1
            self._record_hashed(core, block, now, bucket, tag)
            self._refill(core, now)
            self._issue(core, now)
            return

        # Index lookup: one bucket fetch (single memory access when the
        # bucket buffer misses), linear search on chip.
        self.stats.lookups += 1
        bucket_buffer = self.bucket_buffer
        bucket_ready = bucket_buffer.access(
            bucket, now, charge=TrafficCategory.LOOKUP_STREAMS, core=core
        )
        pointer = self.index.probe(bucket, tag)

        # Record the miss after the lookup so the lookup observes the
        # *previous* occurrence, not the one being recorded
        # (HistoryBuffer.append inlined; spill at the packed-block
        # boundary).
        history = self.histories[core]
        sequence = history.head
        pending = history._pend_blocks
        pending.append(block)
        history._pend_marks.append(False)
        history.head = sequence + 1
        history.stats.appends += 1
        if len(pending) >= HISTORY_ENTRIES_PER_BLOCK:
            history._spill(now)
        counters = self.counters
        counters.candidate_updates += 1
        if self.sampler.should_update():
            counters.applied_updates += 1
            # The lookup above just fetched this very bucket, so the
            # update's bucket access is a guaranteed MRU hit: touch it
            # dirty in place (same stats, order, and timing as
            # ``bucket_buffer.access(..., dirty=True, core=core)``).
            bucket_buffer.stats.hits += 1
            bucket_buffer._resident[bucket] = True
            bucket_buffer._dirty_core[bucket] = core
            self.index.commit(
                bucket, tag, tuple.__new__(HistoryPointer, (core, sequence))
            )

        if pointer is None:
            # No stream found: any active stream keeps flowing (the miss
            # may be unrelated noise interleaved with the stream).
            return
        if not self.histories[pointer.core].is_valid(pointer.sequence):
            # The logged occurrence was overwritten (stale index entry —
            # expected under probabilistic update and circular logging).
            self.counters.stale_pointers += 1
            return

        self.stats.lookup_hits += 1
        self._annotate_abandoned(core, now)
        engine.begin(
            source_core=pointer.core,
            next_fetch_sequence=pointer.sequence + 1,
        )
        # The stream's first history block can only be fetched once the
        # bucket arrives: two dependent round trips total.
        self._refill(core, bucket_ready)
        self._issue(core, bucket_ready)

    # ------------------------------------------------------------------
    # Prefetched-hit path.
    # ------------------------------------------------------------------

    def _on_prefetch_hit(self, core: int, block: int, now: float) -> None:
        self._prefetch_hit_hashed(
            core,
            block,
            now,
            self.index.bucket_of(block),
            self.index.tag_of(block),
        )

    def _prefetch_hit_hashed(
        self, core: int, block: int, now: float, bucket: int, tag: int
    ) -> None:
        # Inlined StreamEngine.on_consumed.
        engine = self.engines[core]
        entry = engine._issued.pop(block, None)
        if entry is not None:
            engine.last_consumed = entry
            engine.consumed_count += 1
            paused = engine.paused_at
            if paused is not None and entry.sequence >= paused.sequence:
                # The annotated address was explicitly requested: resume.
                engine.paused_at = None
        self._record_hashed(core, block, now, bucket, tag)
        self._refill(core, now)
        self._issue(core, now)

    # ------------------------------------------------------------------
    # Recording and sampled index update.
    # ------------------------------------------------------------------

    def _record(self, core: int, block: int, now: float) -> None:
        """Append to the history log; maybe apply the index update."""
        self._record_hashed(
            core,
            block,
            now,
            self.index.bucket_of(block),
            self.index.tag_of(block),
        )

    def _record_hashed(
        self, core: int, block: int, now: float, bucket: int, tag: int
    ) -> None:
        # Inlined HistoryBuffer.append (spill at the packed boundary).
        history = self.histories[core]
        sequence = history.head
        pending = history._pend_blocks
        pending.append(block)
        history._pend_marks.append(False)
        history.head = sequence + 1
        history.stats.appends += 1
        if len(pending) >= HISTORY_ENTRIES_PER_BLOCK:
            history._spill(now)
        self.counters.candidate_updates += 1
        if not self.sampler.should_update():
            return
        self.counters.applied_updates += 1
        self.bucket_buffer.access(
            bucket, now, dirty=True, charge=TrafficCategory.UPDATE_INDEX,
            core=core,
        )
        self.index.commit(
            bucket, tag, tuple.__new__(HistoryPointer, (core, sequence))
        )

    # ------------------------------------------------------------------
    # Streaming mechanics.
    # ------------------------------------------------------------------

    def _refill(self, core: int, now: float) -> None:
        """Keep the address queue fed from the source history buffer.

        History blocks arrive as whole segments
        (:meth:`~repro.core.history_buffer.HistoryBuffer.read_segment`)
        and enter the queue through the engine's bulk
        :meth:`~repro.core.stream_engine.StreamEngine.enqueue_segment` —
        the stream-follow path never materializes per-entry objects.
        """
        engine = self.engines[core]
        queue = engine._queue
        refill_threshold = engine.refill_threshold
        capacity = engine.queue_capacity
        # Inlined engine.needs_refill() and engine.queue_free.
        while (
            engine.active
            and engine.paused_at is None
            and len(queue) <= refill_threshold
            and len(queue) < capacity
        ):
            source = self.histories[engine.source_core]
            first, blocks, marks, arrival = source.read_segment(
                engine.next_fetch_sequence, now, reader=core
            )
            if not blocks:
                # Caught up with the recording head, or the stream was
                # overwritten: nothing more to follow.
                engine.active = False
                break
            engine.enqueue_segment(first, blocks, marks, arrival)
            if engine.paused_at is not None:
                break

    def _issue(self, core: int, now: float) -> None:
        """Issue prefetches, maintaining ``lookahead`` blocks in flight.

        The bound applies to the *current* stream generation: buffered
        leftovers of abandoned streams age out of the FIFO prefetch
        buffer instead of throttling the live stream.

        The loop hand-inlines
        :meth:`~repro.core.stream_engine.StreamEngine.pop_for_prefetch`
        and :meth:`~repro.prefetchers.base.TemporalPrefetcher._issue_prefetch`
        operation-for-operation — it runs once per streamed address, the
        hottest metadata loop in an STMS run; any change there must be
        replicated here (the differential suite catches drift).
        """
        engine = self.engines[core]
        buffer = self.buffers[core]
        serial = engine.serial
        counts = buffer._stream_counts
        budget = self.config.lookahead - counts.get(serial, 0)
        if budget <= 0:
            return
        queue = engine._queue
        paused = engine.paused_at
        pause_sequence = -1 if paused is None else paused.sequence
        issued_map = engine._issued
        entries = buffer._entries
        capacity = buffer.capacity
        stats = self.stats
        residency = self._filter
        filter_sets = self._filter_sets
        filter_mask = self._filter_mask
        dram = self.dram
        dram_stats = dram.stats
        service = dram._transfer_cycles
        latency = dram._access_latency_cycles
        backlog_limit = self._backlog_limit
        traffic = self.traffic
        core_traffic = traffic._core_bytes[core]
        tuple_new = tuple.__new__
        while budget > 0:
            # Inlined StreamEngine.pop_for_prefetch.
            if not queue:
                break
            head = queue[0]
            if paused is not None and head.sequence > pause_sequence:
                break
            queue.popleft()
            block = head.block
            issued_map[block] = head
            # Inlined TemporalPrefetcher._issue_prefetch.
            if block in entries:
                continue
            if filter_sets is not None:
                if block in filter_sets[block & filter_mask]:
                    stats.filtered += 1
                    continue
            elif residency is not None and residency(block):
                stats.filtered += 1
                continue
            ready = head.ready_at
            issue_at = now if now > ready else ready
            busy = dram._busy_until_all
            if busy - issue_at > backlog_limit:
                stats.dropped += 1
                continue
            start = issue_at if issue_at > busy else busy
            dram._busy_until_all = start + service
            dram_stats.low_priority_requests += 1
            dram_stats.requests += 1
            dram_stats.busy_cycles += service
            dram_stats.queue_cycles += start - issue_at
            arrival = start + latency + service
            if len(entries) >= capacity:
                displaced = entries.pop(next(iter(entries)))
                buffer._forget(displaced)
                stats.erroneous += 1
                traffic._bytes[
                    TrafficCategory.ERRONEOUS_PREFETCH
                ] += BLOCK_BYTES
                core_traffic[
                    TrafficCategory.ERRONEOUS_PREFETCH
                ] += BLOCK_BYTES
            entries[block] = tuple_new(
                PrefetchedBlock, (block, issue_at, arrival, serial)
            )
            counts[serial] = counts.get(serial, 0) + 1
            stats.issued += 1
            budget -= 1

    def _annotate_abandoned(self, core: int, now: float) -> None:
        """Mark the end of a stream the core stopped consuming.

        Called when switching to a freshly located stream while the old
        one still has unconsumed entries: the entry following the last
        contiguous successfully prefetched address gets the mark.
        """
        engine = self.engines[core]
        if not self.config.annotate_stream_ends:
            return
        if engine.consumed_count == 0:
            return
        if not (engine.queue_depth > 0 or engine.active):
            return
        target = engine.annotation_target()
        if target is None:
            return
        source_core, sequence = target
        if self.histories[source_core].annotate(
            sequence, now, requester=core
        ):
            self.counters.annotations += 1

    # ------------------------------------------------------------------
    # Shutdown.
    # ------------------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Flush pack buffers, write back dirty buckets, drain buffers."""
        for history in self.histories:
            history.flush(now)
        self.bucket_buffer.drain(now)
        super().finalize(now)
