"""Per-core stream engine: the on-chip FIFO address queue and stream state.

Each core's stream engine holds the addresses read from the (possibly
remote) history buffer, issues them to the prefetch path in order, and
tracks how far the core has successfully consumed the stream so stream
ends can be annotated and divergence detected.

The engine is deliberately *state only* — all memory traffic (history
block fetches, prefetch fills) is orchestrated by
:class:`repro.core.stms.StmsPrefetcher`, which owns the shared resources.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.core.history_buffer import HistoryEntry


class QueuedAddress(NamedTuple):
    """One address waiting in the FIFO queue.

    ``ready_at`` is when the history block it came from arrives on chip;
    a prefetch for it cannot issue earlier.  A NamedTuple: the stream
    follower creates one per enqueued history entry, so construction cost
    is on the metadata hot path.
    """

    source_core: int
    sequence: int
    block: int
    marked: bool
    ready_at: float


class StreamEngine:
    """FIFO address queue plus active-stream bookkeeping for one core."""

    __slots__ = ('core', 'queue_capacity', 'refill_threshold', 'serial', '_queue', 'active', 'source_core', 'next_fetch_sequence', 'paused_at', '_issued', 'last_consumed', 'consumed_count')

    def __init__(
        self,
        core: int,
        queue_capacity: int,
        refill_threshold: int,
    ) -> None:
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if not 0 <= refill_threshold <= queue_capacity:
            raise ValueError("refill_threshold must fit within the queue")
        self.core = core
        self.queue_capacity = queue_capacity
        self.refill_threshold = refill_threshold
        #: Monotonic stream generation; prefetches are tagged with it so
        #: in-flight counts apply per stream, not per buffer.
        self.serial = 0
        self._queue: deque[QueuedAddress] = deque()
        #: Whether a stream is being followed and where its next unread
        #: history entry lives.
        self.active = False
        self.source_core = -1
        self.next_fetch_sequence = 0
        #: Marked entry the engine paused at, awaiting explicit demand.
        self.paused_at: QueuedAddress | None = None
        #: In-flight / buffered prefetches of this stream, by block.
        self._issued: dict[int, QueuedAddress] = {}
        #: Most recent stream entry the core actually consumed.
        self.last_consumed: QueuedAddress | None = None
        #: Blocks consumed from the current stream (for annotation policy).
        self.consumed_count = 0

    # ------------------------------------------------------------------
    # Stream lifecycle.
    # ------------------------------------------------------------------

    def begin(self, source_core: int, next_fetch_sequence: int) -> None:
        """Start following a stream; clears prior queue state."""
        self.reset()
        self.serial += 1
        self.active = True
        self.source_core = source_core
        self.next_fetch_sequence = next_fetch_sequence

    def reset(self) -> None:
        """Abandon the current stream (queue and consumption tracking)."""
        self._queue.clear()
        self._issued.clear()
        self.active = False
        self.source_core = -1
        self.next_fetch_sequence = 0
        self.paused_at = None
        self.last_consumed = None
        self.consumed_count = 0

    # ------------------------------------------------------------------
    # Queue management.
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def queue_free(self) -> int:
        return self.queue_capacity - len(self._queue)

    def enqueue_entries(
        self, entries: list[HistoryEntry], ready_at: float
    ) -> int:
        """Feed history entries into the queue; stops at a marked entry.

        A marked entry is queued (the annotated address itself may still
        be requested) but nothing beyond it, and the engine pauses.
        Returns the number of entries accepted.
        """
        if not self.active:
            return 0
        accepted = 0
        for entry in entries:
            if len(self._queue) >= self.queue_capacity:
                break
            queued = QueuedAddress(
                source_core=self.source_core,
                sequence=entry.sequence,
                block=entry.block,
                marked=entry.marked,
                ready_at=ready_at,
            )
            self._queue.append(queued)
            self.next_fetch_sequence = entry.sequence + 1
            accepted += 1
            if entry.marked:
                self.paused_at = queued
                break
        return accepted

    def enqueue_segment(
        self,
        first_sequence: int,
        blocks: "list[int]",
        marks: "list[bool]",
        ready_at: float,
    ) -> int:
        """Bulk :meth:`enqueue_entries` over one history-block segment.

        Takes the parallel column lists a
        :meth:`~repro.core.history_buffer.HistoryBuffer.read_segment`
        returns (consecutive sequences from ``first_sequence``) without
        materializing per-entry objects.  Accept/pause semantics are
        identical to :meth:`enqueue_entries`.
        """
        if not self.active:
            return 0
        queue = self._queue
        capacity = self.queue_capacity
        depth = len(queue)
        source_core = self.source_core
        sequence = first_sequence
        accepted = 0
        tuple_new = tuple.__new__
        for block, marked in zip(blocks, marks):
            if depth >= capacity:
                break
            queued = tuple_new(
                QueuedAddress,
                (source_core, sequence, block, marked, ready_at),
            )
            queue.append(queued)
            depth += 1
            self.next_fetch_sequence = sequence + 1
            accepted += 1
            if marked:
                self.paused_at = queued
                break
            sequence += 1
        return accepted

    def pop_for_prefetch(self) -> QueuedAddress | None:
        """Next address to prefetch, honouring an end-of-stream pause.

        A marked entry is returned once (so its data can be staged) but
        the stream will not advance past it until :meth:`confirm_resume`.
        """
        if not self._queue:
            return None
        head = self._queue[0]
        if (
            self.paused_at is not None
            and head.sequence > self.paused_at.sequence
        ):
            return None
        self._queue.popleft()
        self._issued[head.block] = head
        return head

    def needs_refill(self) -> bool:
        """True when the queue is low and the stream can keep going."""
        return (
            self.active
            and self.paused_at is None
            and len(self._queue) <= self.refill_threshold
        )

    # ------------------------------------------------------------------
    # Consumption tracking.
    # ------------------------------------------------------------------

    def on_consumed(self, block: int) -> QueuedAddress | None:
        """The core consumed a prefetched block; advance stream state."""
        entry = self._issued.pop(block, None)
        if entry is None:
            return None
        self.last_consumed = entry
        self.consumed_count += 1
        if (
            self.paused_at is not None
            and entry.sequence >= self.paused_at.sequence
        ):
            # The annotated address was explicitly requested: resume.
            self.paused_at = None
        return entry

    def confirm_resume(self, block: int) -> bool:
        """A demand miss matched the paused address: resume streaming."""
        if self.paused_at is None or self.paused_at.block != block:
            return False
        paused = self.paused_at
        self.paused_at = None
        self.last_consumed = paused
        self.consumed_count += 1
        return True

    def annotation_target(self) -> "tuple[int, int] | None":
        """Where an end-of-stream mark belongs: entry after the last
        contiguous successfully prefetched address.

        Returns ``(source_core, sequence)`` or None when the stream never
        made progress (nothing learned about its end).
        """
        if self.last_consumed is None or self.consumed_count == 0:
            return None
        return (
            self.last_consumed.source_core,
            self.last_consumed.sequence + 1,
        )
