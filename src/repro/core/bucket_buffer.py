"""On-chip bucket buffer: 8 KB of index-table bucket storage.

The paper places a small buffer between the stream engines and the
main-memory index table "to facilitate index table updates and to delay
writeback until memory bandwidth is available".  Behaviourally it is a
tiny fully-associative write-back cache of 64-byte buckets:

* a lookup that hits the buffer costs no memory access;
* an update dirties the buffered bucket instead of writing through;
* dirty buckets are written back lazily (on eviction or drain) as
  low-priority traffic, after reshuffling entries into LRU order — which
  the :class:`~repro.core.index_table.IndexTable` maintains implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import BLOCK_BYTES
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter


@dataclass
class BucketBufferStats:
    """Hit/miss/write-back counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0


class BucketBuffer:
    """LRU cache of index-table buckets with lazy dirty write-back."""

    __slots__ = ('capacity', 'dram', 'traffic', 'stats', '_resident', '_dirty_core', '_traffic_bytes', '_core_traffic_bytes')

    def __init__(
        self,
        capacity: int,
        dram: DramChannel,
        traffic: TrafficMeter,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dram = dram
        self.traffic = traffic
        self.stats = BucketBufferStats()
        # bucket id -> dirty flag, LRU order (oldest first).  A plain
        # dict: insertion order is recency order, refreshed by
        # pop-and-reinsert — cheaper than an OrderedDict on the per-miss
        # metadata path.
        self._resident: dict[int, bool] = {}
        #: bucket id -> core that last dirtied it; the eventual lazy
        #: write-back is attributed to that core (it caused the bytes).
        self._dirty_core: dict[int, int] = {}
        self._traffic_bytes = traffic._bytes
        self._core_traffic_bytes = traffic._core_bytes

    def __contains__(self, bucket: int) -> bool:
        return bucket in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def access(
        self,
        bucket: int,
        now: float,
        dirty: bool = False,
        charge: TrafficCategory = TrafficCategory.LOOKUP_STREAMS,
        core: int = 0,
    ) -> float:
        """Bring ``bucket`` on chip (if needed) and return its ready time.

        ``charge`` names the traffic category of the bucket *read* when
        one is required: lookups charge to stream-lookup traffic, updates
        to index-update traffic, matching the paper's Figure 7 split.
        Setting ``dirty`` marks the bucket for eventual write-back.
        ``core`` is the requesting core every byte is attributed to.
        """
        resident = self._resident
        was_dirty = resident.pop(bucket, None)
        if was_dirty is not None:
            self.stats.hits += 1
            resident[bucket] = was_dirty or dirty
            if dirty:
                self._dirty_core[bucket] = core
            return now
        self.stats.misses += 1
        self._traffic_bytes[charge] += BLOCK_BYTES
        self._core_traffic_bytes[core][charge] += BLOCK_BYTES
        # Inlined DramChannel.request_low.
        dram = self.dram
        service = dram._transfer_cycles
        busy = dram._busy_until_all
        start = now if now > busy else busy
        dram._busy_until_all = start + service
        dram_stats = dram.stats
        dram_stats.low_priority_requests += 1
        dram_stats.requests += 1
        dram_stats.busy_cycles += service
        dram_stats.queue_cycles += start - now
        arrival = start + dram._access_latency_cycles + service
        if len(resident) >= self.capacity:
            victim = next(iter(resident))
            if resident.pop(victim):
                self._write_back(now, self._dirty_core.pop(victim, 0))
            else:
                self._dirty_core.pop(victim, None)
        resident[bucket] = dirty
        if dirty:
            self._dirty_core[bucket] = core
        return arrival

    def mark_dirty(self, bucket: int, core: int = 0) -> None:
        """Dirty an already-resident bucket (after an in-place update)."""
        if bucket not in self._resident:
            raise KeyError(f"bucket {bucket} is not resident")
        del self._resident[bucket]
        self._resident[bucket] = True
        self._dirty_core[bucket] = core

    def _evict_one(self, now: float) -> None:
        victim = next(iter(self._resident))
        dirty = self._resident.pop(victim)
        if dirty:
            self._write_back(now, self._dirty_core.pop(victim, 0))
        else:
            self._dirty_core.pop(victim, None)

    def _write_back(self, now: float, core: int = 0) -> None:
        """One low-priority bucket write (index maintenance traffic),
        attributed to the core that last dirtied the bucket."""
        self.stats.writebacks += 1
        self._traffic_bytes[TrafficCategory.UPDATE_INDEX] += BLOCK_BYTES
        self._core_traffic_bytes[core][
            TrafficCategory.UPDATE_INDEX
        ] += BLOCK_BYTES
        self.dram.request_low(now)

    def drain(self, now: float) -> int:
        """Write back every dirty bucket (end of simulation).

        Returns the number of write-backs performed.
        """
        drained = 0
        for bucket, dirty in list(self._resident.items()):
            if dirty:
                self._write_back(now, self._dirty_core.pop(bucket, 0))
            else:
                self._dirty_core.pop(bucket, None)
            del self._resident[bucket]
            drained += dirty
        return drained
