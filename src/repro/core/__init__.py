"""Sampled Temporal Memory Streaming (STMS) — the paper's contribution.

The subpackage implements the three mechanisms that make off-chip
prefetcher meta-data practical:

* :mod:`repro.core.index_table` — a hardware-managed, bucketized hash
  table in main memory whose buckets fit one 64-byte memory block
  (12 entries, in-bucket LRU), giving single-access lookup.
* :mod:`repro.core.sampling` — probabilistic update: index-table writes
  are applied with a configurable sampling probability, trading a small
  coverage loss for a proportional bandwidth reduction.
* :mod:`repro.core.history_buffer` — per-core circular miss logs with
  packed block-granularity writes and end-of-stream annotations; split
  from the index so one lookup can feed arbitrarily long streams.

:class:`repro.core.stms.StmsPrefetcher` wires these together with the
on-chip bucket buffer (:mod:`repro.core.bucket_buffer`) and per-core
stream engines (:mod:`repro.core.stream_engine`).
"""

from repro.core.bucket_buffer import BucketBuffer
from repro.core.codec import (
    HISTORY_ENTRIES_PER_BLOCK,
    INDEX_ENTRIES_PER_BUCKET,
    pack_history_block,
    pack_index_bucket,
    unpack_history_block,
    unpack_index_bucket,
)
from repro.core.config import StmsConfig
from repro.core.history_buffer import HistoryBuffer, HistoryEntry, HistoryPointer
from repro.core.index_table import IndexTable
from repro.core.index_variants import (
    ChainedIndexTable,
    OpenAddressIndexTable,
    compare_organizations,
)
from repro.core.sampling import ProbabilisticSampler
from repro.core.stms import StmsPrefetcher
from repro.core.stream_engine import StreamEngine

__all__ = [
    "BucketBuffer",
    "HISTORY_ENTRIES_PER_BLOCK",
    "INDEX_ENTRIES_PER_BUCKET",
    "pack_history_block",
    "pack_index_bucket",
    "unpack_history_block",
    "unpack_index_bucket",
    "StmsConfig",
    "HistoryBuffer",
    "HistoryEntry",
    "HistoryPointer",
    "IndexTable",
    "ChainedIndexTable",
    "OpenAddressIndexTable",
    "compare_organizations",
    "ProbabilisticSampler",
    "StmsPrefetcher",
    "StreamEngine",
]
