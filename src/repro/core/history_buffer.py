"""Per-core circular history buffer in simulated main memory.

The history buffer logs the core's off-chip miss addresses (and prefetched
hits) in program order.  Key properties from the paper:

* **Packed writes.** Appends accumulate in a cache-block-sized on-chip
  buffer and spill to memory as one 64-byte write per twelve entries, so
  recording traffic is negligible (one write per ~12 misses).
* **Circular reuse.** The buffer wraps; an index-table pointer is valid
  only while its target has not been overwritten.
* **End-of-stream marks.** The entry *after* the last contiguous
  successfully prefetched address can be annotated so later followers
  pause instead of streaming garbage past a stream boundary.

Pointers are monotonically increasing sequence numbers; sequence ``s``
lives in packed block ``s // 12`` of the buffer's memory region.

Segment-committed appends
=========================

The on-chip pack buffer is materialized as plain Python lists
(``_pend_blocks`` / ``_pend_marks``): an append is a list append, and the
backing NumPy arrays are only written when the pack buffer spills — one
sliced (vectorized) commit per twelve entries instead of one NumPy scalar
store per append.  Because the capacity is a whole number of packed
blocks and spills happen exactly on packed-block boundaries, the pack
buffer always covers one *aligned* packed block: any ``read_block`` /
``read_segment`` request is therefore served either entirely from the
committed arrays or entirely from the pack buffer, never a mix.  All
traffic and DRAM charges happen at the same times, with the same
categories and counts, as the per-record reference behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


from repro.core.codec import HISTORY_ENTRIES_PER_BLOCK
from repro.memory.address import Region
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter


class _HistoryPointerFields(NamedTuple):
    core: int
    sequence: int


class HistoryPointer(_HistoryPointerFields):
    """A location inside some core's history buffer.

    A validated NamedTuple: one is created per *applied* (sampled) index
    update, so construction cost sits on the metadata hot path.
    """

    __slots__ = ()

    def __new__(cls, core: int, sequence: int) -> "HistoryPointer":
        if core < 0:
            raise ValueError("core must be non-negative")
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        return tuple.__new__(cls, (core, sequence))


class HistoryEntry(NamedTuple):
    """One logged miss: where it sits, what it was, and its mark bit."""

    sequence: int
    block: int
    marked: bool


@dataclass
class HistoryStats:
    """Traffic-relevant history-buffer counters."""

    appends: int = 0
    packed_writes: int = 0
    block_reads: int = 0
    on_chip_reads: int = 0
    annotations: int = 0
    stale_reads: int = 0


class HistoryBuffer:
    """One core's circular miss log with write-combining and marks."""

    __slots__ = ('core', 'capacity', 'region', 'dram', 'traffic', 'stats', 'head', '_blocks', '_marks', '_pend_blocks', '_pend_marks')

    def __init__(
        self,
        core: int,
        capacity_entries: int,
        region: Region,
        dram: DramChannel,
        traffic: TrafficMeter,
    ) -> None:
        if capacity_entries < HISTORY_ENTRIES_PER_BLOCK:
            raise ValueError(
                "capacity must be at least one packed block "
                f"({HISTORY_ENTRIES_PER_BLOCK} entries)"
            )
        needed_blocks = -(-capacity_entries // HISTORY_ENTRIES_PER_BLOCK)
        if region.blocks < needed_blocks:
            raise ValueError(
                f"region holds {region.blocks} blocks; "
                f"{needed_blocks} needed for {capacity_entries} entries"
            )
        self.core = core
        # Round capacity down to whole packed blocks.
        self.capacity = (
            capacity_entries // HISTORY_ENTRIES_PER_BLOCK
        ) * HISTORY_ENTRIES_PER_BLOCK
        self.region = region
        self.dram = dram
        self.traffic = traffic
        traffic.ensure_cores(core + 1)
        self.stats = HistoryStats()
        #: Total entries ever appended; next append gets this sequence.
        self.head = 0
        # Plain lists: the pack buffer commits whole aligned segments by
        # slice assignment, and stream reads slice whole segments back
        # out — native values both ways.
        self._blocks: list[int] = [0] * self.capacity
        self._marks: list[bool] = [False] * self.capacity
        #: The on-chip pack buffer: appends not yet committed/spilled.
        #: Always covers the aligned packed block ``head`` is in.
        self._pend_blocks: list[int] = []
        self._pend_marks: list[bool] = []

    # ------------------------------------------------------------------
    # Validity.
    # ------------------------------------------------------------------

    @property
    def oldest_valid(self) -> int:
        """Smallest sequence number not yet overwritten."""
        return max(0, self.head - self.capacity)

    def is_valid(self, sequence: int) -> bool:
        """True while ``sequence`` is still resident in the buffer."""
        head = self.head
        return (
            head > sequence >= head - self.capacity and sequence >= 0
        )

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def append(self, block: int, now: float) -> int:
        """Log ``block``; returns its sequence number.

        Every :data:`~repro.core.codec.HISTORY_ENTRIES_PER_BLOCK` appends,
        the pack buffer spills as one low-priority packed write.
        """
        sequence = self.head
        pending = self._pend_blocks
        pending.append(block)
        self._pend_marks.append(False)
        self.head = sequence + 1
        self.stats.appends += 1
        if len(pending) >= HISTORY_ENTRIES_PER_BLOCK:
            self._spill(now)
        return sequence

    def _commit_pending(self) -> None:
        """Slice the pack buffer into the circular arrays (one segment).

        After a mid-run partial :meth:`flush` the pack buffer is no
        longer packed-block aligned, so a commit may wrap the circular
        boundary; split the splice in that case.
        """
        pending = self._pend_blocks
        n = len(pending)
        if not n:
            return
        capacity = self.capacity
        start = (self.head - n) % capacity
        end = start + n
        if end <= capacity:
            self._blocks[start:end] = pending
            self._marks[start:end] = self._pend_marks
        else:
            split = capacity - start
            self._blocks[start:] = pending[:split]
            self._marks[start:] = self._pend_marks[:split]
            self._blocks[: end - capacity] = pending[split:]
            self._marks[: end - capacity] = self._pend_marks[split:]
        pending.clear()
        self._pend_marks.clear()

    def _spill(self, now: float) -> None:
        self._commit_pending()
        self.stats.packed_writes += 1
        # Recording traffic is the owning core's: it logs its own misses.
        self.traffic.add_block(TrafficCategory.RECORD_STREAMS, self.core)
        self.dram.request_low(now)

    def flush(self, now: float) -> None:
        """Force any partially filled pack buffer out (simulation end)."""
        if self._pend_blocks:
            self._spill(now)

    def annotate(
        self, sequence: int, now: float, requester: "int | None" = None
    ) -> bool:
        """Set the end-of-stream mark on ``sequence`` if still valid.

        The mark is an in-place read-modify-write of one packed history
        block; modeled as a single low-priority write attributed to
        ``requester`` (the annotating core; default: the owning core).
        """
        if not self.is_valid(sequence):
            return False
        first_pending = self.head - len(self._pend_blocks)
        if sequence >= first_pending:
            self._pend_marks[sequence - first_pending] = True
        else:
            self._marks[sequence % self.capacity] = True
        self.stats.annotations += 1
        self.traffic.add_block(
            TrafficCategory.RECORD_STREAMS,
            self.core if requester is None else requester,
        )
        self.dram.request_low(now)
        return True

    # ------------------------------------------------------------------
    # Stream reads.
    # ------------------------------------------------------------------

    def read_segment(
        self, sequence: int, now: float, reader: "int | None" = None
    ) -> "tuple[int, list[int], list[bool], float]":
        """Fetch the packed-block segment containing ``sequence``.

        Returns ``(first_sequence, blocks, marks, arrival)`` where the
        parallel ``blocks``/``marks`` lists cover the consecutive valid
        sequences ``first_sequence ..`` up to the end of the packed block
        (at most :data:`HISTORY_ENTRIES_PER_BLOCK` entries).  Entries
        newer than the last spill are still on chip, so reading the
        packed block that overlaps the pack buffer costs nothing.  The
        off-chip read is attributed to ``reader`` — the *streaming* core
        following this history, which may differ from the owning core —
        defaulting to the owner.
        """
        if not self.is_valid(sequence):
            self.stats.stale_reads += 1
            return sequence, [], [], now
        block_start = (
            sequence // HISTORY_ENTRIES_PER_BLOCK
        ) * HISTORY_ENTRIES_PER_BLOCK
        block_end = min(block_start + HISTORY_ENTRIES_PER_BLOCK, self.head)
        first = max(sequence, self.head - self.capacity)

        first_pending = self.head - len(self._pend_blocks)
        if block_end > first_pending:
            # Some (or all) of the packed block is still in the pack
            # buffer: serve it on chip.  A mid-run partial flush can
            # leave the pack buffer unaligned, so the block may be part
            # committed arrays, part pending lists.
            self.stats.on_chip_reads += 1
            pending_end = block_end - first_pending
            if first >= first_pending:
                offset = first - first_pending
                return (
                    first,
                    self._pend_blocks[offset:pending_end],
                    self._pend_marks[offset:pending_end],
                    now,
                )
            # ``first .. first_pending`` is committed and lies inside
            # one aligned packed block (contiguous slots); the rest is
            # the head of the pack buffer.
            slot = first % self.capacity
            committed = first_pending - first
            return (
                first,
                self._blocks[slot:slot + committed]
                + self._pend_blocks[:pending_end],
                self._marks[slot:slot + committed]
                + self._pend_marks[:pending_end],
                now,
            )
        self.stats.block_reads += 1
        self.traffic.add_block(
            TrafficCategory.LOOKUP_STREAMS,
            self.core if reader is None else reader,
        )
        arrival = self.dram.request_low(now)
        # ``first .. block_end`` lies inside one aligned packed block and
        # the capacity is a whole number of packed blocks, so the slots
        # are contiguous: one sliced read covers the segment.
        slot = first % self.capacity
        count = block_end - first
        return (
            first,
            self._blocks[slot:slot + count],
            self._marks[slot:slot + count],
            arrival,
        )

    def read_block(
        self, sequence: int, now: float, reader: "int | None" = None
    ) -> tuple[list[HistoryEntry], float]:
        """Fetch the packed block containing ``sequence``.

        :class:`HistoryEntry` view over :meth:`read_segment` — identical
        stats, traffic, and timing.
        """
        first, blocks, marks, arrival = self.read_segment(
            sequence, now, reader
        )
        entries = [
            HistoryEntry(first + k, block, marked)
            for k, (block, marked) in enumerate(zip(blocks, marks))
        ]
        return entries, arrival

    def peek(self, sequence: int) -> HistoryEntry | None:
        """Inspect one entry without timing or traffic (tests/debug)."""
        if not self.is_valid(sequence):
            return None
        first_pending = self.head - len(self._pend_blocks)
        if sequence >= first_pending:
            offset = sequence - first_pending
            return HistoryEntry(
                sequence=sequence,
                block=self._pend_blocks[offset],
                marked=self._pend_marks[offset],
            )
        slot = sequence % self.capacity
        return HistoryEntry(
            sequence=sequence,
            block=self._blocks[slot],
            marked=self._marks[slot],
        )
