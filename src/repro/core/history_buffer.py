"""Per-core circular history buffer in simulated main memory.

The history buffer logs the core's off-chip miss addresses (and prefetched
hits) in program order.  Key properties from the paper:

* **Packed writes.** Appends accumulate in a cache-block-sized on-chip
  buffer and spill to memory as one 64-byte write per twelve entries, so
  recording traffic is negligible (one write per ~12 misses).
* **Circular reuse.** The buffer wraps; an index-table pointer is valid
  only while its target has not been overwritten.
* **End-of-stream marks.** The entry *after* the last contiguous
  successfully prefetched address can be annotated so later followers
  pause instead of streaming garbage past a stream boundary.

Pointers are monotonically increasing sequence numbers; sequence ``s``
lives in packed block ``s // 12`` of the buffer's memory region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codec import HISTORY_ENTRIES_PER_BLOCK
from repro.memory.address import Region
from repro.memory.dram import DramChannel, Priority
from repro.memory.traffic import TrafficCategory, TrafficMeter


@dataclass(frozen=True)
class HistoryPointer:
    """A location inside some core's history buffer."""

    core: int
    sequence: int

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ValueError("core must be non-negative")
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")


@dataclass(frozen=True)
class HistoryEntry:
    """One logged miss: where it sits, what it was, and its mark bit."""

    sequence: int
    block: int
    marked: bool


@dataclass
class HistoryStats:
    """Traffic-relevant history-buffer counters."""

    appends: int = 0
    packed_writes: int = 0
    block_reads: int = 0
    on_chip_reads: int = 0
    annotations: int = 0
    stale_reads: int = 0


class HistoryBuffer:
    """One core's circular miss log with write-combining and marks."""

    def __init__(
        self,
        core: int,
        capacity_entries: int,
        region: Region,
        dram: DramChannel,
        traffic: TrafficMeter,
    ) -> None:
        if capacity_entries < HISTORY_ENTRIES_PER_BLOCK:
            raise ValueError(
                "capacity must be at least one packed block "
                f"({HISTORY_ENTRIES_PER_BLOCK} entries)"
            )
        needed_blocks = -(-capacity_entries // HISTORY_ENTRIES_PER_BLOCK)
        if region.blocks < needed_blocks:
            raise ValueError(
                f"region holds {region.blocks} blocks; "
                f"{needed_blocks} needed for {capacity_entries} entries"
            )
        self.core = core
        # Round capacity down to whole packed blocks.
        self.capacity = (
            capacity_entries // HISTORY_ENTRIES_PER_BLOCK
        ) * HISTORY_ENTRIES_PER_BLOCK
        self.region = region
        self.dram = dram
        self.traffic = traffic
        self.stats = HistoryStats()
        #: Total entries ever appended; next append gets this sequence.
        self.head = 0
        self._blocks = np.zeros(self.capacity, dtype=np.int64)
        self._marks = np.zeros(self.capacity, dtype=bool)
        #: Appends not yet spilled to memory (the on-chip pack buffer).
        self._pending = 0

    # ------------------------------------------------------------------
    # Validity.
    # ------------------------------------------------------------------

    @property
    def oldest_valid(self) -> int:
        """Smallest sequence number not yet overwritten."""
        return max(0, self.head - self.capacity)

    def is_valid(self, sequence: int) -> bool:
        """True while ``sequence`` is still resident in the buffer."""
        return self.oldest_valid <= sequence < self.head

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def append(self, block: int, now: float) -> int:
        """Log ``block``; returns its sequence number.

        Every :data:`~repro.core.codec.HISTORY_ENTRIES_PER_BLOCK` appends,
        the pack buffer spills as one low-priority packed write.
        """
        sequence = self.head
        slot = sequence % self.capacity
        self._blocks[slot] = block
        self._marks[slot] = False
        self.head += 1
        self._pending += 1
        self.stats.appends += 1
        if self._pending >= HISTORY_ENTRIES_PER_BLOCK:
            self._spill(now)
        return sequence

    def _spill(self, now: float) -> None:
        self._pending = 0
        self.stats.packed_writes += 1
        self.traffic.add_blocks(TrafficCategory.RECORD_STREAMS)
        self.dram.request(now, Priority.LOW)

    def flush(self, now: float) -> None:
        """Force any partially filled pack buffer out (simulation end)."""
        if self._pending > 0:
            self._spill(now)

    def annotate(self, sequence: int, now: float) -> bool:
        """Set the end-of-stream mark on ``sequence`` if still valid.

        The mark is an in-place read-modify-write of one packed history
        block; modeled as a single low-priority write.
        """
        if not self.is_valid(sequence):
            return False
        self._marks[sequence % self.capacity] = True
        self.stats.annotations += 1
        self.traffic.add_blocks(TrafficCategory.RECORD_STREAMS)
        self.dram.request(now, Priority.LOW)
        return True

    # ------------------------------------------------------------------
    # Stream reads.
    # ------------------------------------------------------------------

    def read_block(
        self, sequence: int, now: float
    ) -> tuple[list[HistoryEntry], float]:
        """Fetch the packed block containing ``sequence``.

        Returns the valid entries from ``sequence`` to the end of that
        packed block (at most 12) and the time the data arrives.  Entries
        newer than the last spill are still on chip, so reading a block
        that overlaps the pack buffer costs nothing.
        """
        if not self.is_valid(sequence):
            self.stats.stale_reads += 1
            return [], now
        block_start = (
            sequence // HISTORY_ENTRIES_PER_BLOCK
        ) * HISTORY_ENTRIES_PER_BLOCK
        block_end = min(block_start + HISTORY_ENTRIES_PER_BLOCK, self.head)

        first_unspilled = self.head - self._pending
        if block_end > first_unspilled:
            # Some requested entries are still in the on-chip pack buffer.
            arrival = now
            self.stats.on_chip_reads += 1
        else:
            self.stats.block_reads += 1
            self.traffic.add_blocks(TrafficCategory.LOOKUP_STREAMS)
            arrival = self.dram.request(now, Priority.LOW)

        entries = []
        for seq in range(max(sequence, self.oldest_valid), block_end):
            slot = seq % self.capacity
            entries.append(
                HistoryEntry(
                    sequence=seq,
                    block=int(self._blocks[slot]),
                    marked=bool(self._marks[slot]),
                )
            )
        return entries, arrival

    def peek(self, sequence: int) -> HistoryEntry | None:
        """Inspect one entry without timing or traffic (tests/debug)."""
        if not self.is_valid(sequence):
            return None
        slot = sequence % self.capacity
        return HistoryEntry(
            sequence=sequence,
            block=int(self._blocks[slot]),
            marked=bool(self._marks[slot]),
        )
