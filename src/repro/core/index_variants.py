"""Alternative index-table organizations (paper Sections 4.3 / 5.4).

The paper reports: "We examined many possible structures (e.g.,
red-black trees, open address hash tables, direct-mapped tables),
however these structures have unacceptable latency, bandwidth, or
storage characteristics" and "we performed an extensive analysis of
alternative organizations for the index table (e.g., open address
hashing, larger hash bucket chains, tree structures), and found that
these organizations were either less storage efficient or sacrificed
additional coverage due to increased lookup latency."

This module implements two of those rejected organizations with the same
interface as the single-block bucketized table, each reporting how many
*memory-block accesses* its operations require, so the design-space
trade can be measured rather than asserted:

* :class:`ChainedIndexTable` — buckets overflow into linked chains of
  64-byte blocks: never loses an entry, but a lookup may walk several
  blocks (extra round trips before prefetching can start).
* :class:`OpenAddressIndexTable` — one entry per 12-slot probe group,
  linear probing across groups: simple, but clustering makes both the
  probe length and the displacement behaviour degrade as load rises.

The bucketized design caps every lookup at exactly one block access by
sacrificing old entries (in-bucket LRU) — the paper's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.codec import INDEX_ENTRIES_PER_BUCKET
from repro.core.history_buffer import HistoryPointer
from repro.core.index_table import _HASH_MULTIPLIER
from repro.memory.address import BLOCK_BYTES


@dataclass
class VariantStats:
    """Access accounting shared by all index organizations."""

    lookups: int = 0
    hits: int = 0
    #: Memory-block reads performed across all lookups.
    lookup_block_accesses: int = 0
    updates: int = 0
    #: Memory-block accesses performed across all updates (read+write).
    update_block_accesses: int = 0
    dropped_entries: int = 0

    @property
    def accesses_per_lookup(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.lookup_block_accesses / self.lookups

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ChainedIndexTable:
    """Hash table whose buckets chain extra 64-byte blocks on overflow.

    Storage grows without bound (no aging), and a lookup touching a long
    chain pays one memory access per block walked — the latency the
    split-table STMS design cannot afford before its first prefetch.
    """

    def __init__(self, buckets: int) -> None:
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.buckets = buckets
        self.stats = VariantStats()
        # Each bucket: list of blocks; each block: up to 12 entries of
        # (address, pointer), newest block first.
        self._table: list[list[list[tuple[int, HistoryPointer]]]] = [
            [] for _ in range(buckets)
        ]

    def _bucket_of(self, block: int) -> int:
        return ((block * _HASH_MULTIPLIER) >> 11) % self.buckets

    def lookup(self, block: int) -> "HistoryPointer | None":
        self.stats.lookups += 1
        chain = self._table[self._bucket_of(block)]
        for chain_block in chain:
            self.stats.lookup_block_accesses += 1
            for address, pointer in chain_block:
                if address == block:
                    self.stats.hits += 1
                    return pointer
        if not chain:
            # An empty bucket still costs the initial block read.
            self.stats.lookup_block_accesses += 1
        return None

    def update(self, block: int, pointer: HistoryPointer) -> None:
        self.stats.updates += 1
        chain = self._table[self._bucket_of(block)]
        for depth, chain_block in enumerate(chain):
            self.stats.update_block_accesses += 1
            for i, (address, _) in enumerate(chain_block):
                if address == block:
                    chain_block[i] = (block, pointer)
                    self.stats.update_block_accesses += 1  # write back
                    return
        # Append to the newest block, or grow the chain.
        if chain and len(chain[0]) < INDEX_ENTRIES_PER_BUCKET:
            chain[0].append((block, pointer))
        else:
            chain.insert(0, [(block, pointer)])
        self.stats.update_block_accesses += 1  # write of modified block

    @property
    def storage_bytes(self) -> int:
        blocks = sum(
            max(1, len(chain)) for chain in self._table
        )
        return blocks * BLOCK_BYTES

    def max_chain_blocks(self) -> int:
        return max((len(chain) for chain in self._table), default=0)


class OpenAddressIndexTable:
    """Linear-probing open-address table over 12-entry probe groups.

    Bounded storage like the bucketized design, but displacement is
    global: when the probed neighbourhood is full, the *oldest entry in
    the final probe group* is overwritten, and failed lookups walk the
    full probe window.
    """

    def __init__(self, groups: int, probe_limit: int = 4) -> None:
        if groups <= 0:
            raise ValueError("groups must be positive")
        if probe_limit <= 0:
            raise ValueError("probe_limit must be positive")
        self.groups = groups
        self.probe_limit = probe_limit
        self.stats = VariantStats()
        self._table: list[list[tuple[int, HistoryPointer]]] = [
            [] for _ in range(groups)
        ]

    def _group_of(self, block: int) -> int:
        return ((block * _HASH_MULTIPLIER) >> 11) % self.groups

    def lookup(self, block: int) -> "HistoryPointer | None":
        self.stats.lookups += 1
        start = self._group_of(block)
        for probe in range(self.probe_limit):
            group = self._table[(start + probe) % self.groups]
            self.stats.lookup_block_accesses += 1
            for address, pointer in group:
                if address == block:
                    self.stats.hits += 1
                    return pointer
            if len(group) < INDEX_ENTRIES_PER_BUCKET:
                # An unfull group terminates the probe sequence.
                return None
        return None

    def update(self, block: int, pointer: HistoryPointer) -> None:
        self.stats.updates += 1
        start = self._group_of(block)
        for probe in range(self.probe_limit):
            index = (start + probe) % self.groups
            group = self._table[index]
            self.stats.update_block_accesses += 1
            for i, (address, _) in enumerate(group):
                if address == block:
                    group[i] = (block, pointer)
                    self.stats.update_block_accesses += 1
                    return
            if len(group) < INDEX_ENTRIES_PER_BUCKET:
                group.append((block, pointer))
                self.stats.update_block_accesses += 1
                return
        # Neighbourhood full: overwrite the oldest entry in the final
        # probed group (an approximation of global displacement).
        final = self._table[(start + self.probe_limit - 1) % self.groups]
        final.pop(0)
        final.append((block, pointer))
        self.stats.dropped_entries += 1
        self.stats.update_block_accesses += 1

    @property
    def storage_bytes(self) -> int:
        return self.groups * BLOCK_BYTES


@dataclass
class OrganizationComparison:
    """Result of driving several organizations with one event stream."""

    name: str
    accesses_per_lookup: float
    hit_rate: float
    storage_bytes: int
    dropped_entries: int = 0
    extra: dict = field(default_factory=dict)


def compare_organizations(
    events: "list[tuple[str, int, HistoryPointer | None]]",
    buckets: int,
) -> "list[OrganizationComparison]":
    """Drive bucketized / chained / open-address tables with one event
    stream (``("lookup", block, None)`` / ``("update", block, ptr)``).

    Returns per-organization access and storage statistics — the
    quantitative basis of the paper's §5.4 organization choice.
    """
    from repro.core.index_table import IndexTable

    bucketized = IndexTable(buckets=buckets)
    chained = ChainedIndexTable(buckets=buckets)
    open_address = OpenAddressIndexTable(groups=buckets)

    bucketized_lookups = 0
    bucketized_hits = 0
    for kind, block, pointer in events:
        if kind == "lookup":
            bucketized_lookups += 1
            if bucketized.lookup(block) is not None:
                bucketized_hits += 1
            chained.lookup(block)
            open_address.lookup(block)
        elif kind == "update":
            assert pointer is not None
            bucketized.update(block, pointer)
            chained.update(block, pointer)
            open_address.update(block, pointer)
        else:
            raise ValueError(f"unknown event kind {kind!r}")

    return [
        OrganizationComparison(
            name="bucketized (STMS)",
            accesses_per_lookup=1.0,
            hit_rate=(
                bucketized_hits / bucketized_lookups
                if bucketized_lookups
                else 0.0
            ),
            storage_bytes=buckets * BLOCK_BYTES,
            dropped_entries=bucketized.stats.replacements,
        ),
        OrganizationComparison(
            name="chained buckets",
            accesses_per_lookup=chained.stats.accesses_per_lookup,
            hit_rate=chained.stats.hit_rate,
            storage_bytes=chained.storage_bytes,
            extra={"max_chain_blocks": chained.max_chain_blocks()},
        ),
        OrganizationComparison(
            name="open addressing",
            accesses_per_lookup=open_address.stats.accesses_per_lookup,
            hit_rate=open_address.stats.hit_rate,
            storage_bytes=open_address.storage_bytes,
            dropped_entries=open_address.stats.dropped_entries,
        ),
    ]
