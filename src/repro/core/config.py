"""STMS configuration.

Defaults correspond to the paper's operating point, scaled: a 12.5 %
index-update sampling probability, 12-entry single-block hash buckets, an
8 KB on-chip bucket buffer, a 2 KB per-core prefetch buffer, and split
per-core history buffers with a shared index table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.memory.address import BLOCK_BYTES, is_power_of_two

#: Bytes of one packed history entry (42-bit address + mark bit, padded).
HISTORY_ENTRY_BYTES = 5
#: Bytes of one packed index entry (tag + history pointer).
INDEX_ENTRY_BYTES = 5


@dataclass(frozen=True)
class StmsConfig:
    """All STMS parameters in one immutable object."""

    #: Number of cores (each gets a history buffer and stream engine).
    cores: int = 4
    #: Per-core history-buffer capacity in entries.  The paper sizes the
    #: aggregate history at up to 32 MB; scaled presets shrink this while
    #: preserving the history/working-set ratio.
    history_entries: int = 32_768
    #: Shared index-table bucket count (power of two).  Each bucket
    #: occupies one 64-byte block; the paper's 16 MB table is 256 K
    #: buckets.
    index_buckets: int = 2_048
    #: {address, pointer} pairs per bucket (12 in the paper's design).
    bucket_entries: int = 12
    #: Probability that a candidate index-table update is applied.
    sampling_probability: float = 0.125
    #: On-chip bucket-buffer capacity in buckets (8 KB = 128 buckets).
    bucket_buffer_entries: int = 128
    #: Per-core prefetch-buffer capacity in blocks (2 KB = 32 blocks).
    prefetch_buffer_blocks: int = 32
    #: Prefetches kept in flight ahead of consumption.
    lookahead: int = 12
    #: FIFO address-queue capacity per core (<128 bytes on chip).
    address_queue_entries: int = 24
    #: Refill the address queue when it drains below this many entries.
    queue_refill_threshold: int = 6
    #: Index-entry tag width in bits; ``None`` stores full addresses
    #: (no aliasing).  Realistic hardware truncates (see DESIGN.md).
    tag_bits: "int | None" = None
    #: Write end-of-stream marks into the history buffer (Section 4.5).
    #: Disable for the ablation benchmark: without marks, streaming runs
    #: past stream boundaries and wastes bandwidth on erroneous blocks.
    annotate_stream_ends: bool = True
    #: Seed for the sampling coin flips.
    seed: int = 42

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.history_entries <= 0:
            raise ValueError("history_entries must be positive")
        if not is_power_of_two(self.index_buckets):
            raise ValueError(
                f"index_buckets must be a power of two, got "
                f"{self.index_buckets}"
            )
        if self.bucket_entries <= 0:
            raise ValueError("bucket_entries must be positive")
        if not 0.0 <= self.sampling_probability <= 1.0:
            raise ValueError("sampling_probability must be within [0, 1]")
        if self.bucket_buffer_entries <= 0:
            raise ValueError("bucket_buffer_entries must be positive")
        if self.prefetch_buffer_blocks <= 0:
            raise ValueError("prefetch_buffer_blocks must be positive")
        if self.lookahead <= 0:
            raise ValueError("lookahead must be positive")
        if self.address_queue_entries <= 0:
            raise ValueError("address_queue_entries must be positive")
        if not 0 <= self.queue_refill_threshold <= self.address_queue_entries:
            raise ValueError(
                "queue_refill_threshold must be within the queue capacity"
            )
        if self.tag_bits is not None and self.tag_bits <= 0:
            raise ValueError("tag_bits must be positive when given")

    # ------------------------------------------------------------------
    # Derived storage figures (used in reports and DESIGN.md checks).
    # ------------------------------------------------------------------

    @property
    def history_bytes_per_core(self) -> int:
        """Main-memory footprint of one core's history buffer."""
        return self.history_entries * HISTORY_ENTRY_BYTES

    @property
    def history_bytes_total(self) -> int:
        return self.history_bytes_per_core * self.cores

    @property
    def index_bytes(self) -> int:
        """Main-memory footprint of the shared index table."""
        return self.index_buckets * BLOCK_BYTES

    @property
    def metadata_bytes(self) -> int:
        """Total off-chip meta-data footprint."""
        return self.history_bytes_total + self.index_bytes

    @property
    def on_chip_bytes(self) -> int:
        """Total on-chip storage STMS adds (buffers and queues)."""
        prefetch = self.cores * self.prefetch_buffer_blocks * BLOCK_BYTES
        queues = self.cores * self.address_queue_entries * INDEX_ENTRY_BYTES
        bucket_buffer = self.bucket_buffer_entries * BLOCK_BYTES
        return prefetch + queues + bucket_buffer

    def with_sampling(self, probability: float) -> "StmsConfig":
        """Copy with a different sampling probability (Fig. 8 sweeps)."""
        return replace(self, sampling_probability=probability)

    def with_history(self, entries: int) -> "StmsConfig":
        """Copy with a different history capacity (Fig. 5 left sweeps)."""
        return replace(self, history_entries=entries)

    def with_index(self, buckets: int) -> "StmsConfig":
        """Copy with a different index size (Fig. 5 right sweeps)."""
        return replace(self, index_buckets=buckets)
