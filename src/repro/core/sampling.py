"""Probabilistic index-update sampling (paper Section 4.4).

"For every potential index table update, a coin flip, biased to a
predetermined sampling probability, determines whether the update will or
will not be performed."  Update bandwidth is directly proportional to the
sampling probability, while coverage decays only logarithmically — long
streams get an entry *somewhere* near their head, and frequent streams
get one within a few recurrences.

The coin flips come from a dedicated seeded generator so a sweep over
sampling probabilities (Fig. 8) changes nothing else about a run.
"""

from __future__ import annotations

import numpy as np


class ProbabilisticSampler:
    """A biased coin with batched pre-drawn randomness.

    Draws are generated in blocks to keep the per-call cost trivial; the
    sequence is a pure function of the seed, making every simulation
    reproducible.
    """

    _BATCH = 4096

    __slots__ = ('probability', '_rng', '_draws', '_cursor', 'flips', 'accepted')

    def __init__(self, probability: float, seed: int = 42) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability}"
            )
        self.probability = probability
        self._rng = np.random.default_rng(seed)
        self._draws = np.empty(0, dtype=bool)
        self._cursor = 0
        self.flips = 0
        self.accepted = 0

    def should_update(self) -> bool:
        """Flip the biased coin: True when the update must be applied."""
        self.flips += 1
        # Degenerate probabilities skip the generator entirely so p=1.0
        # (the paper's un-optimized comparison point) has zero overhead.
        if self.probability >= 1.0:
            self.accepted += 1
            return True
        if self.probability <= 0.0:
            return False
        if self._cursor >= len(self._draws):
            # Native bools: indexing a list returns a ready-made bool,
            # unlike NumPy scalar extraction on the hot path.
            self._draws = (
                self._rng.random(self._BATCH) < self.probability
            ).tolist()
            self._cursor = 0
        outcome = self._draws[self._cursor]
        self._cursor += 1
        if outcome:
            self.accepted += 1
        return outcome

    @property
    def acceptance_rate(self) -> float:
        """Observed fraction of accepted flips (tests sanity-check it)."""
        if self.flips == 0:
            return 0.0
        return self.accepted / self.flips
