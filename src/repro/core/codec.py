"""Byte-exact layouts of the off-chip meta-data structures.

The paper's practicality argument hinges on two packing claims:

* a **history-buffer block** holds 12 miss addresses, so one densely
  packed write covers twelve appends, and
* an **index-table bucket** holds 12 {address, history-pointer} pairs in
  exactly one 64-byte memory block, so a lookup costs a single access.

This module implements those layouts bit-for-bit so tests can prove they
fit.  Both formats spend 42 bits per entry (12 x 42 = 504 bits <= 512):

``history entry``
    41-bit block address + 1 end-of-stream mark bit.
``index entry``
    16-bit partial tag (bucket index bits are implicit) + 2-bit source
    core + 24-bit wrapped history sequence number.

The simulator's runtime model (:mod:`repro.core.history_buffer`,
:mod:`repro.core.index_table`) uses richer Python objects for speed, but
its capacities, in-bucket LRU-by-position order, and traffic charges all
match this physical layout.
"""

from __future__ import annotations

from repro.memory.address import BLOCK_BYTES

#: Entries per packed history block / index bucket.
HISTORY_ENTRIES_PER_BLOCK = 12
INDEX_ENTRIES_PER_BUCKET = 12

#: Bit widths of the packed fields.
ADDRESS_BITS = 41
MARK_BITS = 1
TAG_BITS = 16
CORE_BITS = 2
SEQ_BITS = 24

ENTRY_BITS = ADDRESS_BITS + MARK_BITS
assert ENTRY_BITS == TAG_BITS + CORE_BITS + SEQ_BITS == 42

_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
_TAG_MASK = (1 << TAG_BITS) - 1
_CORE_MASK = (1 << CORE_BITS) - 1
_SEQ_MASK = (1 << SEQ_BITS) - 1
_ENTRY_MASK = (1 << ENTRY_BITS) - 1


def _pack_words(words: list[int]) -> bytes:
    """Pack 42-bit words little-endian into one 64-byte block."""
    if len(words) > HISTORY_ENTRIES_PER_BLOCK:
        raise ValueError(
            f"at most {HISTORY_ENTRIES_PER_BLOCK} entries per block, "
            f"got {len(words)}"
        )
    accumulator = 0
    for position, word in enumerate(words):
        if word < 0 or word > _ENTRY_MASK:
            raise ValueError(f"entry {position} exceeds {ENTRY_BITS} bits")
        accumulator |= word << (position * ENTRY_BITS)
    return accumulator.to_bytes(BLOCK_BYTES, "little")


def _unpack_words(payload: bytes) -> list[int]:
    if len(payload) != BLOCK_BYTES:
        raise ValueError(
            f"expected a {BLOCK_BYTES}-byte block, got {len(payload)} bytes"
        )
    accumulator = int.from_bytes(payload, "little")
    return [
        (accumulator >> (position * ENTRY_BITS)) & _ENTRY_MASK
        for position in range(HISTORY_ENTRIES_PER_BLOCK)
    ]


def pack_history_block(entries: list[tuple[int, bool]]) -> bytes:
    """Pack up to 12 ``(block_address, end_mark)`` pairs into 64 bytes.

    Unused slots pack as zero; callers track occupancy via the history
    head counter, so no per-entry valid bit is needed.
    """
    words = []
    for address, mark in entries:
        if address < 0 or address > _ADDRESS_MASK:
            raise ValueError(
                f"block address {address} exceeds {ADDRESS_BITS} bits"
            )
        words.append((address << MARK_BITS) | int(bool(mark)))
    return _pack_words(words)


def unpack_history_block(payload: bytes) -> list[tuple[int, bool]]:
    """Inverse of :func:`pack_history_block` (always 12 slots)."""
    return [
        (word >> MARK_BITS, bool(word & 1))
        for word in _unpack_words(payload)
    ]


def pack_index_bucket(entries: list[tuple[int, int, int]]) -> bytes:
    """Pack up to 12 ``(tag, core, sequence)`` index entries.

    Entries must already be in recency order (MRU first): the physical
    position encodes LRU state, which is why the paper reshuffles bucket
    elements before write-back instead of storing recency bits.
    """
    words = []
    for tag, core, sequence in entries:
        if tag < 0 or tag > _TAG_MASK:
            raise ValueError(f"tag {tag} exceeds {TAG_BITS} bits")
        if core < 0 or core > _CORE_MASK:
            raise ValueError(f"core {core} exceeds {CORE_BITS} bits")
        if sequence < 0 or sequence > _SEQ_MASK:
            raise ValueError(f"sequence {sequence} exceeds {SEQ_BITS} bits")
        words.append(
            (tag << (CORE_BITS + SEQ_BITS)) | (core << SEQ_BITS) | sequence
        )
    return _pack_words(words)


def unpack_index_bucket(payload: bytes) -> list[tuple[int, int, int]]:
    """Inverse of :func:`pack_index_bucket` (always 12 slots)."""
    return [
        (
            word >> (CORE_BITS + SEQ_BITS),
            (word >> SEQ_BITS) & _CORE_MASK,
            word & _SEQ_MASK,
        )
        for word in _unpack_words(payload)
    ]
