"""Shared bucketized hash index table in simulated main memory.

The index table maps a miss address to a pointer into some core's history
buffer.  Its defining properties (paper Section 4.3):

* Buckets are sized to the memory interface: one 64-byte block holds up
  to 12 ``{address, pointer}`` entries, so a lookup retrieves and
  linearly searches an entire bucket with **one** memory access.
* Replacement is LRU *within* a bucket; entries are kept physically in
  recency order (reshuffled before write-back), so no extra recency
  state is stored.
* The table is shared by all cores — a lookup by one core can locate a
  temporal stream recorded by another — and supports independent
  parallel access without synchronization.

This class is the *state* of the table; DRAM timing and traffic for
bucket reads/writes are charged by the caller (:class:`StmsPrefetcher`)
through the on-chip bucket buffer, mirroring the hardware split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history_buffer import HistoryPointer
from repro.memory.address import Region
from repro.memory.address import is_power_of_two


#: Knuth multiplicative hashing constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 2654435761


def stacked_metadata_arrays(
    blocks_arrays: "list[np.ndarray]",
    geometries: "list[tuple[int, int | None]]",
) -> "dict[tuple[int, int | None], tuple[list, list | None]]":
    """Bucket/tag *arrays* for every index geometry in one pass.

    ``geometries`` lists ``(index_buckets, tag_bits)`` pairs — the two
    parameters :meth:`IndexTable.bucket_of_array` and
    :meth:`IndexTable.tag_of_array` depend on.  The hash product
    (multiply + shift) is computed once per block column and masked
    against a *config axis* of bucket masks in one broadcast, so
    classifying a whole sweep grid's metadata costs one vectorized pass
    over the trace instead of one per cell.  Values are ``int64``
    per-core NumPy arrays (geometries sharing ``tag_bits`` share the
    *same* tag array objects); :func:`stacked_metadata_columns` wraps
    this with the native-list conversion the batched engine consumes,
    and the shared-memory trace plane exports the arrays directly.
    """
    unique = [g for g in dict.fromkeys(geometries)]
    out: "dict[tuple[int, int | None], tuple[list, list | None]]" = {}
    if not unique:
        return out
    for buckets, _ in unique:
        if not is_power_of_two(buckets):
            raise ValueError(
                f"buckets must be a power of two, got {buckets}"
            )
    masks = np.array([b - 1 for b, _ in unique], dtype=np.uint64)
    bucket_columns: "list[list[np.ndarray]]" = [[] for _ in unique]
    blocks_i64 = [np.asarray(b, dtype=np.int64) for b in blocks_arrays]
    for blocks in blocks_arrays:
        products = np.asarray(blocks, dtype=np.uint64) * np.uint64(
            _HASH_MULTIPLIER
        )
        shifted = products >> np.uint64(11)
        # (configs, records): every geometry's bucket column at once.
        stacked = (shifted[None, :] & masks[:, None]).astype(np.int64)
        for row, column in zip(stacked, bucket_columns):
            column.append(row)
    tag_cache: "dict[int, list[np.ndarray]]" = {}
    for index, (buckets, tag_bits) in enumerate(unique):
        if tag_bits is None:
            tags = None
        elif tag_bits in tag_cache:
            tags = tag_cache[tag_bits]
        else:
            tag_mask = np.int64((1 << tag_bits) - 1)
            tags = [b & tag_mask for b in blocks_i64]
            tag_cache[tag_bits] = tags
        out[(buckets, tag_bits)] = (bucket_columns[index], tags)
    return out


def stacked_metadata_columns(
    blocks_arrays: "list[np.ndarray]",
    geometries: "list[tuple[int, int | None]]",
) -> "dict[tuple[int, int | None], tuple[list, list | None]]":
    """Bucket/tag columns for *every* index geometry in one pass.

    The native-list form of :func:`stacked_metadata_arrays` — each
    geometry's columns are element-for-element what the per-cell
    :meth:`IndexTable.bucket_of_array` / :meth:`IndexTable.tag_of_array`
    produce (the sweep differential tests pin this), in the list form
    the batched engine consumes.
    """
    arrays = stacked_metadata_arrays(blocks_arrays, geometries)
    out: "dict[tuple[int, int | None], tuple[list, list | None]]" = {}
    # Geometries sharing tag_bits share tag array objects; convert each
    # distinct array list once.
    converted: "dict[int, list]" = {}

    def _tolist(columns: "list[np.ndarray]") -> list:
        key = id(columns)
        if key not in converted:
            converted[key] = [c.tolist() for c in columns]
        return converted[key]

    for geometry, (buckets, tags) in arrays.items():
        out[geometry] = (
            _tolist(buckets),
            None if tags is None else _tolist(tags),
        )
    return out


@dataclass
class IndexStats:
    """Index-table behaviour counters."""

    lookups: int = 0
    hits: int = 0
    tag_aliases: int = 0
    inserts: int = 0
    replacements: int = 0
    pointer_updates: int = 0


class IndexTable:
    """Bucketized hash table: address -> history pointer."""

    __slots__ = ('buckets', 'bucket_entries', 'region', 'tag_bits', 'stats', '_bucket_mask', '_bucket_tags', '_bucket_ptrs')

    def __init__(
        self,
        buckets: int,
        bucket_entries: int = 12,
        region: "Region | None" = None,
        tag_bits: "int | None" = None,
    ) -> None:
        if not is_power_of_two(buckets):
            raise ValueError(f"buckets must be a power of two, got {buckets}")
        if bucket_entries <= 0:
            raise ValueError("bucket_entries must be positive")
        if tag_bits is not None and tag_bits <= 0:
            raise ValueError("tag_bits must be positive when given")
        self.buckets = buckets
        self.bucket_entries = bucket_entries
        self.region = region
        self.tag_bits = tag_bits
        self.stats = IndexStats()
        self._bucket_mask = buckets - 1
        # Each bucket: parallel tag/pointer lists, most recently used
        # first.  Parallel lists keep the per-miss probe a single
        # C-level ``list.index`` scan instead of a Python tuple loop.
        self._bucket_tags: list[list[int]] = [[] for _ in range(buckets)]
        self._bucket_ptrs: list[list[HistoryPointer]] = [
            [] for _ in range(buckets)
        ]

    # ------------------------------------------------------------------
    # Hashing and tagging.
    # ------------------------------------------------------------------

    def bucket_of(self, block: int) -> int:
        """Hash ``block`` to its bucket index."""
        return ((block * _HASH_MULTIPLIER) >> 11) & self._bucket_mask

    def tag_of(self, block: int) -> int:
        """The tag stored for ``block`` (possibly truncated)."""
        if self.tag_bits is None:
            return block
        return block & ((1 << self.tag_bits) - 1)

    def bucket_of_array(self, blocks: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`bucket_of` over a whole block column.

        Exact for any block number below 2**53: the kept bits (11 ..
        ``11 + log2(buckets)``) of the hash product survive the uint64
        wraparound unchanged, so the NumPy pass classifies every record
        into the bucket the scalar hash would pick.
        """
        products = np.asarray(blocks, dtype=np.uint64) * np.uint64(
            _HASH_MULTIPLIER
        )
        return (
            (products >> np.uint64(11)) & np.uint64(self._bucket_mask)
        ).astype(np.int64)

    def tag_of_array(self, blocks: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`tag_of` over a whole block column."""
        blocks = np.asarray(blocks, dtype=np.int64)
        if self.tag_bits is None:
            return blocks
        return blocks & np.int64((1 << self.tag_bits) - 1)

    def memory_block(self, bucket: int) -> "int | None":
        """Physical block number of ``bucket`` in the meta-data region."""
        if self.region is None:
            return None
        return self.region.block_at(bucket % self.region.blocks)

    # ------------------------------------------------------------------
    # Bucket operations (state only; caller charges traffic).
    # ------------------------------------------------------------------

    def probe(self, bucket_index: int, tag: int) -> "HistoryPointer | None":
        """:meth:`lookup` with the hash and tag already computed.

        The batched engine pre-classifies whole trace columns into
        buckets/tags (see :meth:`bucket_of_array`) and probes with the
        precomputed values; state effects and stats are identical to
        :meth:`lookup`.
        """
        self.stats.lookups += 1
        tags = self._bucket_tags[bucket_index]
        # Membership probe before .index: misses dominate, and the two
        # C-level scans of a <=12-entry bucket beat raising ValueError.
        if tag not in tags:
            return None
        position = tags.index(tag)
        ptrs = self._bucket_ptrs[bucket_index]
        pointer = ptrs[position]
        if position != 0:
            tags.insert(0, tags.pop(position))
            ptrs.insert(0, ptrs.pop(position))
        self.stats.hits += 1
        return pointer

    def lookup(self, block: int) -> "HistoryPointer | None":
        """Search the bucket for ``block``; LRU-touch on hit.

        With truncated tags an aliasing entry may match a different
        address — the pointer returned then leads to an unrelated stream
        whose prefetches will be wasted, exactly as in real hardware.
        """
        return self.probe(self.bucket_of(block), self.tag_of(block))

    def commit(
        self, bucket_index: int, tag: int, pointer: HistoryPointer
    ) -> bool:
        """:meth:`update` with the hash and tag already computed."""
        tags = self._bucket_tags[bucket_index]
        ptrs = self._bucket_ptrs[bucket_index]
        if tag in tags:
            position = tags.index(tag)
            if position != 0:
                tags.insert(0, tags.pop(position))
            ptrs.pop(position)
            ptrs.insert(0, pointer)
            self.stats.pointer_updates += 1
            return False
        replaced = False
        if len(tags) >= self.bucket_entries:
            tags.pop()
            ptrs.pop()
            replaced = True
            self.stats.replacements += 1
        tags.insert(0, tag)
        ptrs.insert(0, pointer)
        self.stats.inserts += 1
        return replaced

    def update(self, block: int, pointer: HistoryPointer) -> bool:
        """Point ``block`` at a new history location.

        Returns True when an existing (LRU) entry had to be replaced —
        i.e. the bucket was full and an older correlation aged out.
        """
        return self.commit(self.bucket_of(block), self.tag_of(block), pointer)

    def bucket_contents(
        self, bucket: int
    ) -> list[tuple[int, HistoryPointer]]:
        """Entries of ``bucket`` in recency order (tests/serialization)."""
        if not 0 <= bucket < self.buckets:
            raise IndexError(f"bucket {bucket} out of range")
        return list(
            zip(self._bucket_tags[bucket], self._bucket_ptrs[bucket])
        )

    def occupancy(self) -> int:
        """Total live entries across all buckets."""
        return sum(len(tags) for tags in self._bucket_tags)
