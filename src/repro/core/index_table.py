"""Shared bucketized hash index table in simulated main memory.

The index table maps a miss address to a pointer into some core's history
buffer.  Its defining properties (paper Section 4.3):

* Buckets are sized to the memory interface: one 64-byte block holds up
  to 12 ``{address, pointer}`` entries, so a lookup retrieves and
  linearly searches an entire bucket with **one** memory access.
* Replacement is LRU *within* a bucket; entries are kept physically in
  recency order (reshuffled before write-back), so no extra recency
  state is stored.
* The table is shared by all cores — a lookup by one core can locate a
  temporal stream recorded by another — and supports independent
  parallel access without synchronization.

This class is the *state* of the table; DRAM timing and traffic for
bucket reads/writes are charged by the caller (:class:`StmsPrefetcher`)
through the on-chip bucket buffer, mirroring the hardware split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.history_buffer import HistoryPointer
from repro.memory.address import Region
from repro.memory.address import is_power_of_two


#: Knuth multiplicative hashing constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 2654435761


@dataclass
class IndexStats:
    """Index-table behaviour counters."""

    lookups: int = 0
    hits: int = 0
    tag_aliases: int = 0
    inserts: int = 0
    replacements: int = 0
    pointer_updates: int = 0


class IndexTable:
    """Bucketized hash table: address -> history pointer."""

    def __init__(
        self,
        buckets: int,
        bucket_entries: int = 12,
        region: "Region | None" = None,
        tag_bits: "int | None" = None,
    ) -> None:
        if not is_power_of_two(buckets):
            raise ValueError(f"buckets must be a power of two, got {buckets}")
        if bucket_entries <= 0:
            raise ValueError("bucket_entries must be positive")
        if tag_bits is not None and tag_bits <= 0:
            raise ValueError("tag_bits must be positive when given")
        self.buckets = buckets
        self.bucket_entries = bucket_entries
        self.region = region
        self.tag_bits = tag_bits
        self.stats = IndexStats()
        self._bucket_mask = buckets - 1
        # Each bucket: list of (tag, pointer), most recently used first.
        self._table: list[list[tuple[int, HistoryPointer]]] = [
            [] for _ in range(buckets)
        ]

    # ------------------------------------------------------------------
    # Hashing and tagging.
    # ------------------------------------------------------------------

    def bucket_of(self, block: int) -> int:
        """Hash ``block`` to its bucket index."""
        return ((block * _HASH_MULTIPLIER) >> 11) & self._bucket_mask

    def tag_of(self, block: int) -> int:
        """The tag stored for ``block`` (possibly truncated)."""
        if self.tag_bits is None:
            return block
        return block & ((1 << self.tag_bits) - 1)

    def memory_block(self, bucket: int) -> "int | None":
        """Physical block number of ``bucket`` in the meta-data region."""
        if self.region is None:
            return None
        return self.region.block_at(bucket % self.region.blocks)

    # ------------------------------------------------------------------
    # Bucket operations (state only; caller charges traffic).
    # ------------------------------------------------------------------

    def lookup(self, block: int) -> "HistoryPointer | None":
        """Search the bucket for ``block``; LRU-touch on hit.

        With truncated tags an aliasing entry may match a different
        address — the pointer returned then leads to an unrelated stream
        whose prefetches will be wasted, exactly as in real hardware.
        """
        self.stats.lookups += 1
        bucket = self._table[self.bucket_of(block)]
        tag = self.tag_of(block)
        for position, (entry_tag, pointer) in enumerate(bucket):
            if entry_tag == tag:
                if position != 0:
                    bucket.insert(0, bucket.pop(position))
                self.stats.hits += 1
                return pointer
        return None

    def update(self, block: int, pointer: HistoryPointer) -> bool:
        """Point ``block`` at a new history location.

        Returns True when an existing (LRU) entry had to be replaced —
        i.e. the bucket was full and an older correlation aged out.
        """
        bucket = self._table[self.bucket_of(block)]
        tag = self.tag_of(block)
        for position, (entry_tag, _) in enumerate(bucket):
            if entry_tag == tag:
                bucket.pop(position)
                bucket.insert(0, (tag, pointer))
                self.stats.pointer_updates += 1
                return False
        replaced = False
        if len(bucket) >= self.bucket_entries:
            bucket.pop()
            replaced = True
            self.stats.replacements += 1
        bucket.insert(0, (tag, pointer))
        self.stats.inserts += 1
        return replaced

    def bucket_contents(
        self, bucket: int
    ) -> list[tuple[int, HistoryPointer]]:
        """Entries of ``bucket`` in recency order (tests/serialization)."""
        if not 0 <= bucket < self.buckets:
            raise IndexError(f"bucket {bucket} out of range")
        return list(self._table[bucket])

    def occupancy(self) -> int:
        """Total live entries across all buckets."""
        return sum(len(bucket) for bucket in self._table)
