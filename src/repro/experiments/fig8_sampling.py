"""Figure 8: sensitivity to the sampling probability.

Sweeping the probabilistic-update rate from 1 % to 100 % shows the
trade the paper's Section 5.5 quantifies: overhead traffic scales
(nearly) linearly with the sampling probability — index updates are its
dominant term — while coverage decays only slowly as updates are
dropped, because long streams get an entry somewhere near their head and
frequent streams get one within a few recurrences.
"""

from __future__ import annotations

from repro.analysis.report import series_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    check_monotone,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession

DEFAULT_WORKLOADS = ("web-apache", "oltp-db2", "sci-em3d", "sci-ocean")
DEFAULT_PROBABILITIES = (0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0)


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    probabilities: "tuple[float, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    points = (
        probabilities if probabilities is not None else DEFAULT_PROBABILITIES
    )

    jobs = [
        SimJob(
            name,
            PrefetcherKind.STMS,
            scale=scale,
            cores=cores,
            seed=seed,
            stms_overrides=job_options(sampling_probability=probability),
        )
        for name in names
        for probability in points
    ]
    results = simulate_jobs(jobs, runner, session)
    coverage: dict[str, list[float]] = {name: [] for name in names}
    traffic: dict[str, list[float]] = {name: [] for name in names}
    update_traffic: dict[str, list[float]] = {name: [] for name in names}
    for job, result in zip(jobs, results):
        assert result.traffic is not None
        coverage[job.workload].append(result.coverage.coverage)
        traffic[job.workload].append(result.overhead_per_useful_byte)
        update_traffic[job.workload].append(result.traffic.update_index)

    labels = [f"{p:.3f}" for p in points]
    rendered = "\n\n".join(
        [
            series_table(
                "sampling p",
                labels,
                traffic,
                title="Figure 8 (left): overhead traffic vs. sampling "
                "probability",
            ),
            series_table(
                "sampling p",
                labels,
                coverage,
                title="Figure 8 (right): coverage vs. sampling probability",
            ),
        ]
    )

    checks = _shape_checks(names, points, coverage, update_traffic)
    return ExperimentResult(
        experiment="fig8",
        title="Probabilistic update sampling sensitivity",
        rendered=rendered,
        data={
            "probabilities": list(points),
            "coverage": coverage,
            "overhead": traffic,
            "update_traffic": update_traffic,
        },
        checks=checks,
    )


def _shape_checks(
    names: "tuple[str, ...]",
    points: "tuple[float, ...]",
    coverage: "dict[str, list[float]]",
    update_traffic: "dict[str, list[float]]",
) -> "list[ShapeCheck]":
    checks: list[ShapeCheck] = []
    for name in names:
        updates = update_traffic[name]
        checks.append(
            ShapeCheck(
                claim=f"{name}: index-update traffic grows with sampling "
                "probability (proportional scaling)",
                passed=check_monotone(updates, increasing=True,
                                      tolerance=0.02)
                and updates[-1] >= 4.0 * max(updates[0], 1e-6),
                detail=" -> ".join(f"{u:.2f}" for u in updates),
            )
        )
        series = coverage[name]
        peak = max(series)
        operating = series[points.index(0.125)] if 0.125 in points else None
        if operating is not None and peak > 0:
            # The paper measures <= 6% coverage loss at 12.5% sampling;
            # our scaled traces give streams fewer recurrences to land an
            # index entry, so the tolerance is looser (see EXPERIMENTS.md).
            checks.append(
                ShapeCheck(
                    claim=f"{name}: coverage decays slowly — the 12.5% "
                    "point keeps >= 60% of the sweep's best while paying "
                    "~1/8th of the update traffic",
                    passed=operating >= 0.60 * peak,
                    detail=f"12.5% -> {operating:.2f}, best {peak:.2f}",
                )
            )
        if operating is not None and peak > 0:
            traffic_ratio = (
                update_traffic[name][points.index(0.125)]
                / max(update_traffic[name][points.index(1.0)], 1e-9)
                if 1.0 in points
                else 0.0
            )
            coverage_ratio = operating / peak
            checks.append(
                ShapeCheck(
                    claim=f"{name}: coverage falls far slower than update "
                    "traffic (the probabilistic-update trade)",
                    passed=coverage_ratio >= 2.0 * traffic_ratio,
                    detail=f"coverage ratio {coverage_ratio:.2f} vs "
                    f"traffic ratio {traffic_ratio:.2f}",
                )
            )
    return checks
