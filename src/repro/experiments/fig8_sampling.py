"""Figure 8: sensitivity to the sampling probability.

Sweeping the probabilistic-update rate from 1 % to 100 % shows the
trade the paper's Section 5.5 quantifies: overhead traffic scales
(nearly) linearly with the sampling probability — index updates are its
dominant term — while coverage decays only slowly as updates are
dropped, because long streams get an entry somewhere near their head and
frequent streams get one within a few recurrences.
"""

from __future__ import annotations

from repro.analysis.report import format_table, series_table
from repro.analysis.stats import stratified_estimates
from repro.experiments.common import (
    ExperimentResult,
    SamplingSpec,
    ShapeCheck,
    check_monotone,
    note_exact_cells,
    run_sampled_sweep,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession

DEFAULT_WORKLOADS = ("web-apache", "oltp-db2", "sci-em3d", "sci-ocean")
DEFAULT_PROBABILITIES = (0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0)


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    probabilities: "tuple[float, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
    budget: "int | None" = None,
    confidence: float = 0.95,
    ci_width: "float | None" = None,
    sample_seeds: int = 4,
) -> ExperimentResult:
    """With ``budget`` or ``ci_width`` set, the (workload x seed x
    probability) grid runs as a budgeted stratified sample — every
    probability point represented, per-point bootstrap intervals
    instead of exact per-workload series (see ``repro.sim.sampling``).
    """
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    points = (
        probabilities if probabilities is not None else DEFAULT_PROBABILITIES
    )
    spec = SamplingSpec(
        budget=budget, confidence=confidence, ci_width=ci_width,
        seeds=sample_seeds,
    )
    if spec.active:
        return _run_sampled(
            scale, cores, seed, names, points, spec, runner, session
        )

    jobs = [
        SimJob(
            name,
            PrefetcherKind.STMS,
            scale=scale,
            cores=cores,
            seed=seed,
            stms_overrides=job_options(sampling_probability=probability),
        )
        for name in names
        for probability in points
    ]
    results = simulate_jobs(jobs, runner, session)
    note_exact_cells(session, len(names) * len(points))
    coverage: dict[str, list[float]] = {name: [] for name in names}
    traffic: dict[str, list[float]] = {name: [] for name in names}
    update_traffic: dict[str, list[float]] = {name: [] for name in names}
    for job, result in zip(jobs, results):
        assert result.traffic is not None
        coverage[job.workload].append(result.coverage.coverage)
        traffic[job.workload].append(result.overhead_per_useful_byte)
        update_traffic[job.workload].append(result.traffic.update_index)

    labels = [f"{p:.3f}" for p in points]
    rendered = "\n\n".join(
        [
            series_table(
                "sampling p",
                labels,
                traffic,
                title="Figure 8 (left): overhead traffic vs. sampling "
                "probability",
            ),
            series_table(
                "sampling p",
                labels,
                coverage,
                title="Figure 8 (right): coverage vs. sampling probability",
            ),
        ]
    )

    checks = _shape_checks(names, points, coverage, update_traffic)
    return ExperimentResult(
        experiment="fig8",
        title="Probabilistic update sampling sensitivity",
        rendered=rendered,
        data={
            "probabilities": list(points),
            "coverage": coverage,
            "overhead": traffic,
            "update_traffic": update_traffic,
        },
        checks=checks,
    )


#: Metrics estimated per probability stratum in sampled mode;
#: ``coverage`` is the CI-width refinement target.
_SAMPLED_METRICS = ("coverage", "overhead", "update_traffic")


def _cell_metrics(results) -> "dict[str, float]":
    """Headline metrics of one sampled single-job (STMS) cell."""
    (result,) = results
    assert result.traffic is not None
    return {
        "coverage": result.coverage.coverage,
        "overhead": result.overhead_per_useful_byte,
        "update_traffic": result.traffic.update_index,
    }


def _run_sampled(
    scale: str,
    cores: int,
    seed: int,
    names: "tuple[str, ...]",
    points: "tuple[float, ...]",
    spec: SamplingSpec,
    runner: "ExperimentRunner | None",
    session: "SimSession | None",
) -> ExperimentResult:
    """Budgeted sampled variant of the sampling-probability sweep.

    Strata are the probability points, so the sweep's shape — overhead
    scaling with p, coverage decaying slowly — stays visible at any
    budget; cells are (workload x seed) replicas within each point.
    """
    seeds = tuple(seed + i for i in range(max(1, spec.seeds)))
    cells = [
        (name, cell_seed, probability)
        for name in names
        for cell_seed in seeds
        for probability in points
    ]
    strata = [probability for _, _, probability in cells]
    jobs_by_cell = [
        [
            SimJob(
                name,
                PrefetcherKind.STMS,
                scale=scale,
                cores=cores,
                seed=cell_seed,
                stms_overrides=job_options(sampling_probability=probability),
            )
        ]
        for name, cell_seed, probability in cells
    ]
    sweep = run_sampled_sweep(
        jobs_by_cell,
        strata,
        spec,
        cell_metric=lambda results: _cell_metrics(results)["coverage"],
        experiment="fig8",
        grid_key=(tuple(names), tuple(points), scale, cores, seeds),
        runner=runner,
        session=session,
        sample_seed=seed,
    )
    estimates = {
        metric: stratified_estimates(
            sweep.stratum_values(
                lambda results, _m=metric: _cell_metrics(results)[_m]
            ),
            confidence=spec.confidence,
            seed=seed,
        )
        for metric in _SAMPLED_METRICS
    }

    ci_label = f"ci{spec.confidence * 100:g}"
    per_stratum_n = {
        stratum: len(indices)
        for stratum, indices in sweep.plan.by_stratum().items()
    }
    rows = [
        [
            f"{probability:.3f}",
            str(per_stratum_n[probability]),
            estimates["coverage"][probability].render(),
            estimates["overhead"][probability].render(),
            estimates["update_traffic"][probability].render(),
        ]
        for probability in points
    ]
    rendered = "\n\n".join(
        [
            format_table(
                ["sampling p", "n",
                 f"coverage ({ci_label})",
                 f"overhead/byte ({ci_label})",
                 f"index updates ({ci_label})"],
                rows,
                title="Figure 8 (budgeted sample): per-probability "
                "bootstrap estimates over the workload x seed grid",
            ),
            sweep.summary_line(),
        ]
    )

    data = {
        "sampled": not sweep.plan.exhaustive,
        "sampling": {
            "budget": sweep.plan.budget,
            "total": sweep.plan.total,
            "fraction": sweep.plan.fraction,
            "confidence": spec.confidence,
            "rounds": sweep.rounds,
            "simulated_cells": sweep.simulated_cells,
            "reused_cells": sweep.reused_cells,
            "estimate_record": sweep.estimate_record,
            "workloads": list(names),
            "seeds": list(seeds),
        },
        "strata": {
            f"{probability:g}": {
                metric: estimates[metric][probability].as_dict()
                for metric in _SAMPLED_METRICS
            }
            for probability in points
        },
    }
    checks = _sampled_shape_checks(points, estimates, sweep, spec)
    return ExperimentResult(
        experiment="fig8",
        title="Probabilistic update sampling sensitivity "
        "(budgeted sample)",
        rendered=rendered,
        data=data,
        checks=checks,
    )


def _sampled_shape_checks(
    points: "tuple[float, ...]",
    estimates: "dict[str, dict]",
    sweep,
    spec: SamplingSpec,
) -> "list[ShapeCheck]":
    update_means = [
        estimates["update_traffic"][probability].mean
        for probability in points
    ]
    well_formed = all(
        est.lo <= est.mean <= est.hi and est.n >= 1
        for metric in _SAMPLED_METRICS
        for est in (estimates[metric][p] for p in points)
    )
    width_ok = (
        spec.ci_width is None
        or sweep.plan.exhaustive
        or all(
            estimates["coverage"][p].width <= spec.ci_width for p in points
        )
    )
    return [
        ShapeCheck(
            claim="Every probability stratum is represented and its "
            "bootstrap intervals are well-formed",
            passed=len(points) == len(sweep.plan.by_stratum())
            and well_formed,
            detail=f"{len(points)} strata, "
            f"budget {sweep.plan.budget}/{sweep.plan.total}",
        ),
        ShapeCheck(
            claim="Estimated index-update traffic grows with the "
            "sampling probability",
            passed=check_monotone(update_means, increasing=True,
                                  tolerance=0.05),
            detail=" -> ".join(f"{u:.2f}" for u in update_means),
        ),
        ShapeCheck(
            claim="Refinement met the requested CI width (or exhausted "
            "the grid)",
            passed=width_ok,
            detail=f"rounds {sweep.rounds}",
        ),
    ]


def _shape_checks(
    names: "tuple[str, ...]",
    points: "tuple[float, ...]",
    coverage: "dict[str, list[float]]",
    update_traffic: "dict[str, list[float]]",
) -> "list[ShapeCheck]":
    checks: list[ShapeCheck] = []
    for name in names:
        updates = update_traffic[name]
        checks.append(
            ShapeCheck(
                claim=f"{name}: index-update traffic grows with sampling "
                "probability (proportional scaling)",
                passed=check_monotone(updates, increasing=True,
                                      tolerance=0.02)
                and updates[-1] >= 4.0 * max(updates[0], 1e-6),
                detail=" -> ".join(f"{u:.2f}" for u in updates),
            )
        )
        series = coverage[name]
        peak = max(series)
        operating = series[points.index(0.125)] if 0.125 in points else None
        if operating is not None and peak > 0:
            # The paper measures <= 6% coverage loss at 12.5% sampling;
            # our scaled traces give streams fewer recurrences to land an
            # index entry, so the tolerance is looser (see EXPERIMENTS.md).
            checks.append(
                ShapeCheck(
                    claim=f"{name}: coverage decays slowly — the 12.5% "
                    "point keeps >= 60% of the sweep's best while paying "
                    "~1/8th of the update traffic",
                    passed=operating >= 0.60 * peak,
                    detail=f"12.5% -> {operating:.2f}, best {peak:.2f}",
                )
            )
        if operating is not None and peak > 0:
            traffic_ratio = (
                update_traffic[name][points.index(0.125)]
                / max(update_traffic[name][points.index(1.0)], 1e-9)
                if 1.0 in points
                else 0.0
            )
            coverage_ratio = operating / peak
            checks.append(
                ShapeCheck(
                    claim=f"{name}: coverage falls far slower than update "
                    "traffic (the probabilistic-update trade)",
                    passed=coverage_ratio >= 2.0 * traffic_ratio,
                    detail=f"coverage ratio {coverage_ratio:.2f} vs "
                    f"traffic ratio {traffic_ratio:.2f}",
                )
            )
    return checks
