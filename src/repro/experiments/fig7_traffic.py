"""Figure 7: overhead-traffic breakdown with and without sampling.

For each workload, the off-chip traffic beyond useful data is split into
recording, index updates, stream lookups, and erroneous prefetches —
once with every index update applied (100 % sampling) and once at the
paper's 12.5 % operating point.  Paper shape: un-optimized index
maintenance is the largest overhead, and probabilistic update collapses
it roughly in proportion to the sampling probability.

The workload x sampling grid is submitted to the runner as one job
list per trace, so :class:`~repro.sim.runner.ExperimentRunner` groups
each workload's sampling points into a single config-parallel sweep
invocation (see ``repro.sim.sweep``): the trace is generated and its
STMS metadata classified once, and only the config-dependent
simulation state is carried per cell.  Results land under the same
per-cell recipe keys as before, so stores warmed pre-sweep stay valid.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession
from repro.workloads.suite import FIGURE_ORDER

SAMPLING_POINTS = (1.0, 0.125)


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else FIGURE_ORDER

    jobs = [
        SimJob(
            name,
            PrefetcherKind.STMS,
            scale=scale,
            cores=cores,
            seed=seed,
            stms_overrides=job_options(sampling_probability=probability),
            tag=probability,
        )
        for name in names
        for probability in SAMPLING_POINTS
    ]
    results = simulate_jobs(jobs, runner, session)
    rows = []
    breakdowns: dict[str, dict[float, dict[str, float]]] = {}
    for job, result in zip(jobs, results):
        name = job.workload
        probability = job.tag
        breakdowns.setdefault(name, {})
        assert result.traffic is not None
        breakdown = result.traffic
        breakdowns[name][probability] = {
            "record": breakdown.record_streams,
            "update": breakdown.update_index,
            "lookup": breakdown.lookup_streams,
            "erroneous": breakdown.erroneous_prefetch,
            "total": breakdown.total,
        }
        rows.append(
            [
                name,
                f"{probability:.1%}",
                breakdown.record_streams,
                breakdown.update_index,
                breakdown.lookup_streams,
                breakdown.erroneous_prefetch,
                breakdown.total,
            ]
        )

    rendered = format_table(
        ["workload", "sampling", "record", "update", "lookup",
         "erroneous", "total"],
        rows,
        title="Figure 7: overhead bytes per useful data byte",
    )

    checks = _shape_checks(names, breakdowns)
    return ExperimentResult(
        experiment="fig7",
        title="Overhead traffic with and without probabilistic update",
        rendered=rendered,
        data={"breakdowns": breakdowns},
        checks=checks,
    )


def _shape_checks(
    names: "tuple[str, ...]",
    breakdowns: "dict[str, dict[float, dict[str, float]]]",
) -> "list[ShapeCheck]":
    full = [breakdowns[n][1.0] for n in names]
    sampled = [breakdowns[n][0.125] for n in names]

    update_dominant = sum(
        1
        for b in full
        if b["update"]
        >= max(b["record"], b["lookup"], b["erroneous"]) - 1e-9
    )
    update_ratios = [
        b["update"] / s["update"]
        for b, s in zip(full, sampled)
        if s["update"] > 0
    ]
    total_reduced = sum(
        1 for b, s in zip(full, sampled) if s["total"] <= b["total"] + 0.02
    )
    record_small = all(
        b["record"] <= 0.15 for b in full + sampled
    )

    checks = [
        ShapeCheck(
            claim="Un-optimized index maintenance is the largest overhead "
            "for most workloads",
            passed=update_dominant >= (len(names) + 1) // 2,
            detail=f"{update_dominant}/{len(names)} workloads",
        ),
        ShapeCheck(
            claim="12.5% sampling cuts index-update traffic by roughly "
            "the sampling factor (paper: 8x; check >= 4x mean)",
            passed=bool(update_ratios)
            and sum(update_ratios) / len(update_ratios) >= 4.0,
            detail=f"mean reduction = "
            f"{sum(update_ratios) / max(len(update_ratios), 1):.1f}x",
        ),
        ShapeCheck(
            claim="Total overhead traffic falls at 12.5% sampling",
            passed=total_reduced == len(names),
            detail=f"{total_reduced}/{len(names)} workloads",
        ),
        ShapeCheck(
            claim="Recording traffic is negligible (one packed write per "
            "~12 misses)",
            passed=record_small,
            detail=f"max record = "
            f"{max(b['record'] for b in full + sampled):.3f}",
        ),
    ]
    return checks
