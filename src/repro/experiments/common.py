"""Shared infrastructure for the per-figure experiment drivers.

Every experiment module exposes ``run(scale=..., cores=..., seed=...)``
returning an :class:`ExperimentResult`: the regenerated figure as ASCII,
the raw series, and a list of *shape checks* — assertions about the
qualitative result the paper reports (who wins, what saturates, what
decays).  Absolute numbers are not expected to match the paper (our
substrate is a scaled simulator, not the authors' testbed); the shape
checks encode what must hold for the reproduction to be faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.metrics import SimResult
from repro.sim.runner import ExperimentRunner, SimJob
from repro.sim.session import SimSession

_DEFAULT_RUNNER: "ExperimentRunner | None" = None


def get_runner(runner: "ExperimentRunner | None" = None) -> ExperimentRunner:
    """The runner shared by all experiment drivers (unless overridden)."""
    global _DEFAULT_RUNNER
    if runner is not None:
        return runner
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def simulate_jobs(
    jobs: "Sequence[SimJob]",
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> "list[SimResult]":
    """Fan a job list out on the shared runner (order-preserving).

    ``session`` selects the cache tiers (memory + optional artifact
    store); None uses the process-global session.  The CLI threads its
    ``--no-cache``/``--store-dir`` choice through this parameter.
    """
    return get_runner(runner).map(jobs, session=session)


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, verified against our data."""

    claim: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """Everything one experiment run produces."""

    experiment: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)
    checks: "list[ShapeCheck]" = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        parts = [f"== {self.experiment}: {self.title} ==", self.rendered]
        if self.checks:
            parts.append("")
            parts.extend(check.render() for check in self.checks)
        return "\n".join(parts)


def check_monotone(
    values: Sequence[float],
    increasing: bool = True,
    tolerance: float = 0.02,
) -> bool:
    """True when the series is monotone up to an absolute tolerance."""
    for earlier, later in zip(values, values[1:]):
        if increasing and later < earlier - tolerance:
            return False
        if not increasing and later > earlier + tolerance:
            return False
    return True


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if any is non-positive)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            return 0.0
        product *= value
    return product ** (1.0 / len(values))
