"""Shared infrastructure for the per-figure experiment drivers.

Every experiment module exposes ``run(scale=..., cores=..., seed=...)``
returning an :class:`ExperimentResult`: the regenerated figure as ASCII,
the raw series, and a list of *shape checks* — assertions about the
qualitative result the paper reports (who wins, what saturates, what
decays).  Absolute numbers are not expected to match the paper (our
substrate is a scaled simulator, not the authors' testbed); the shape
checks encode what must hold for the reproduction to be faithful.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.stats import CIEstimate, stratified_estimates
from repro.sim.metrics import SimResult
from repro.sim.runner import ExperimentRunner, SimJob
from repro.sim.sampling import SamplingPlan, plan_sample
from repro.sim.session import SimSession, get_session
from repro.sim.store import estimate_digest

_DEFAULT_RUNNER: "ExperimentRunner | None" = None


def get_runner(runner: "ExperimentRunner | None" = None) -> ExperimentRunner:
    """The runner shared by all experiment drivers (unless overridden)."""
    global _DEFAULT_RUNNER
    if runner is not None:
        return runner
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = ExperimentRunner()
    return _DEFAULT_RUNNER


def simulate_jobs(
    jobs: "Sequence[SimJob]",
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> "list[SimResult]":
    """Fan a job list out on the shared runner (order-preserving).

    ``session`` selects the cache tiers (memory + optional artifact
    store); None uses the process-global session.  The CLI threads its
    ``--no-cache``/``--store-dir`` choice through this parameter.
    """
    return get_runner(runner).map(jobs, session=session)


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, verified against our data."""

    claim: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """Everything one experiment run produces."""

    experiment: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)
    checks: "list[ShapeCheck]" = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        parts = [f"== {self.experiment}: {self.title} ==", self.rendered]
        if self.checks:
            parts.append("")
            parts.extend(check.render() for check in self.checks)
        return "\n".join(parts)


def check_monotone(
    values: Sequence[float],
    increasing: bool = True,
    tolerance: float = 0.02,
    floor: "float | None" = None,
) -> bool:
    """True when the series is monotone up to a magnitude-scaled slack.

    The shape checks apply this to series whose units range from
    coverage fractions (magnitude ~1) to traffic bytes (magnitude in
    the thousands); a fixed absolute slack cannot serve both.
    ``tolerance`` is therefore *relative*: the allowed backslide per
    step is ``tolerance * max(|v|)``, with ``floor`` (default: the
    ``tolerance`` value itself) as the absolute lower bound.  For
    fraction-scaled series (magnitude <= 1) the behaviour is exactly
    the historical absolute one, so no existing shape check tightens.
    """
    if not values:
        return True
    magnitude = max(abs(value) for value in values)
    slack = max(floor if floor is not None else tolerance,
                tolerance * magnitude)
    for earlier, later in zip(values, values[1:]):
        if increasing and later < earlier - slack:
            return False
        if not increasing and later > earlier + slack:
            return False
    return True


# ----------------------------------------------------------------------
# Budgeted sampled sweeps (the sampling layer's experiment-facing side).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingSpec:
    """How (and whether) a driver runs its grid as a budgeted sample.

    ``budget`` is a cell count over the (seed x sweep-point) grid;
    ``ci_width`` optionally asks for refinement: the budget doubles
    (nested plans, so already-simulated cells are reused) until every
    stratum's confidence interval on the driver's target metric is at
    most this wide, or the grid is exhausted.  ``seeds`` widens the
    grid with per-seed replicas so strata hold enough cells to
    estimate from.  With neither ``budget`` nor ``ci_width`` set the
    spec is inactive and drivers take their exact full-grid path.
    """

    budget: "int | None" = None
    confidence: float = 0.95
    ci_width: "float | None" = None
    seeds: int = 4

    @property
    def active(self) -> bool:
        return self.budget is not None or self.ci_width is not None


def add_sampling_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the budgeted-sampling CLI flags on ``parser``."""
    parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="run a budgeted stratified sample of N grid cells instead "
        "of the exact full grid (reported with bootstrap confidence "
        "intervals; supported by mix-contention and fig8)",
    )
    parser.add_argument(
        "--confidence", type=float, default=0.95, metavar="C",
        help="confidence level for sampled-sweep intervals "
        "(default: 0.95)",
    )
    parser.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="refine the sampled sweep (doubling the budget, reusing "
        "the store) until every stratum's CI is at most this wide",
    )


def sampling_spec_from_args(args: argparse.Namespace) -> SamplingSpec:
    """The :class:`SamplingSpec` encoded by parsed CLI arguments."""
    return SamplingSpec(
        budget=getattr(args, "budget", None),
        confidence=getattr(args, "confidence", 0.95),
        ci_width=getattr(args, "ci_width", None),
    )


@dataclass
class SampledSweep:
    """Everything one budgeted sampled sweep produced."""

    plan: SamplingPlan
    #: Per selected grid cell: the cell's job results, in job order.
    cell_results: "dict[int, list[SimResult]]"
    #: Per-stratum CI of the driver's target metric (the one a
    #: ``ci_width`` refinement loop tightens).
    estimates: "dict[object, CIEstimate]"
    simulated_cells: int
    reused_cells: int
    #: Budget trajectory over refinement rounds (one entry per plan).
    rounds: "list[int]"
    confidence: float
    #: Digest of the persisted sampled-estimate record (None when the
    #: session has no artifact store).
    estimate_record: "str | None" = None

    def stratum_values(
        self, metric: "Callable[[list[SimResult]], float]"
    ) -> "dict[object, list[float]]":
        """``metric`` evaluated per selected cell, grouped by stratum."""
        return {
            stratum: [metric(self.cell_results[i]) for i in indices]
            for stratum, indices in self.plan.by_stratum().items()
            if indices
        }

    def summary_line(self) -> str:
        """The one-line footer the CLI/CI greps for."""
        plan = self.plan
        mode = "exact" if plan.exhaustive else "sampled"
        return (
            f"sampling: {mode} {plan.budget}/{plan.total} cells "
            f"({plan.fraction:.0%}), {self.simulated_cells} simulated, "
            f"{self.reused_cells} reused, "
            f"rounds {'->'.join(str(b) for b in self.rounds)}, "
            f"confidence {self.confidence:g}"
        )


def run_sampled_sweep(
    jobs_by_cell: "Sequence[Sequence[SimJob]]",
    strata: "Sequence[object]",
    spec: SamplingSpec,
    cell_metric: "Callable[[list[SimResult]], float]",
    experiment: str,
    grid_key: object,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
    sample_seed: int = 0,
) -> SampledSweep:
    """Run a budgeted stratified sample of a sweep grid.

    The selected cells go through the unchanged
    ``run_sweep``/``ExperimentRunner.map`` path (via
    :func:`simulate_jobs`) under their exact per-cell recipe keys, so
    the artifact store answers any cell a previous run — sampled or
    exact — already simulated.  That store probe is what makes
    refinement incremental: re-running with a larger budget (or a
    ``ci_width`` target driving the internal doubling loop) only pays
    for the cells the previous budget did not cover.

    Cells served entirely from the cache tiers count as ``reused``
    (the refinement-reuse counter); a cell is charged as simulated
    when any of its jobs actually ran (ceil attribution over the
    session's ``sim_misses`` delta).
    """
    if len(jobs_by_cell) != len(strata):
        raise ValueError("one stratum per grid cell required")
    session = session if session is not None else get_session()
    total = len(jobs_by_cell)
    stratum_count = len(set(strata))
    budget = (
        spec.budget if spec.budget is not None
        else min(total, 2 * stratum_count)
    )
    cell_results: "dict[int, list[SimResult]]" = {}
    simulated_cells = 0
    reused_cells = 0
    rounds: "list[int]" = []
    while True:
        plan = plan_sample(strata, budget, seed=sample_seed)
        rounds.append(plan.budget)
        fresh = [i for i in plan.selected if i not in cell_results]
        if fresh:
            flat = [job for i in fresh for job in jobs_by_cell[i]]
            before = session.stats.sim_misses
            flat_results = simulate_jobs(flat, runner, session)
            simulated_jobs = session.stats.sim_misses - before
            cursor = 0
            for i in fresh:
                count = len(jobs_by_cell[i])
                cell_results[i] = list(
                    flat_results[cursor:cursor + count]
                )
                cursor += count
            jobs_per_cell = max(len(jobs_by_cell[i]) for i in fresh)
            fresh_simulated = min(
                len(fresh),
                -(-simulated_jobs // jobs_per_cell),  # ceil division
            )
            simulated_cells += fresh_simulated
            reused_cells += len(fresh) - fresh_simulated
        outcome = SampledSweep(
            plan=plan,
            cell_results=cell_results,
            estimates={},
            simulated_cells=simulated_cells,
            reused_cells=reused_cells,
            rounds=rounds,
            confidence=spec.confidence,
        )
        outcome.estimates = stratified_estimates(
            outcome.stratum_values(cell_metric),
            confidence=spec.confidence,
            seed=sample_seed,
        )
        if spec.ci_width is None or plan.exhaustive:
            break
        # A single-cell stratum yields a degenerate zero-width interval
        # that would satisfy any target; it must refine, not stop.
        if all(
            estimate.n >= 2 and estimate.width <= spec.ci_width
            for estimate in outcome.estimates.values()
        ):
            break
        budget = min(total, plan.budget * 2)

    stats = session.stats
    counter_deltas: "dict[str, int]" = {
        "sampling_reused_cells": reused_cells,
    }
    if plan.exhaustive:
        stats.sampling_exact_cells += plan.budget
        counter_deltas["sampling_exact_cells"] = plan.budget
    else:
        stats.sampling_sampled_cells += plan.budget
        counter_deltas["sampling_sampled_cells"] = plan.budget
    stats.sampling_reused_cells += reused_cells
    if session.store is not None:
        session.store.bump_counters(counter_deltas)
        digest = estimate_digest(
            (experiment, grid_key, sample_seed, plan.budget,
             spec.confidence)
        )
        if session.store.save_estimate(
            digest,
            {
                "experiment": experiment,
                "sampled": not plan.exhaustive,
                "budget": plan.budget,
                "total": plan.total,
                "fraction": plan.fraction,
                "confidence": spec.confidence,
                "rounds": rounds,
                "simulated_cells": simulated_cells,
                "reused_cells": reused_cells,
                "strata": {
                    str(stratum): estimate.as_dict()
                    for stratum, estimate in outcome.estimates.items()
                },
            },
        ):
            outcome.estimate_record = digest
    return outcome


def note_exact_cells(session: "SimSession | None", cells: int) -> None:
    """Record that a driver ran ``cells`` grid cells on its exact path.

    The persistent ``sampling_exact_cells`` counter is the contrast
    ``cache stats`` reports sampled budgets against.
    """
    if cells <= 0:
        return
    session = session if session is not None else get_session()
    session.stats.sampling_exact_cells += cells
    if session.store is not None:
        session.store.bump_counter("sampling_exact_cells", cells)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if any is non-positive)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            return 0.0
        product *= value
    return product ** (1.0 / len(values))
