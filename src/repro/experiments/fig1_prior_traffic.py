"""Figure 1 (right): memory-traffic overheads of prior off-chip designs.

The paper computes, from published results, that EBCP, ULMT, and TSE pay
roughly triple the baseline read traffic in meta-data lookups, meta-data
updates, and erroneous prefetches.  We apply the same published per-event
access counts to baseline statistics measured on our workloads (the MLP
enters through EBCP's epoch length).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    get_runner,
)
from repro.prefetchers.traffic_models import (
    PriorDesign,
    prior_design_overheads,
)
from repro.sim.runner import ExperimentRunner, PrefetcherKind
from repro.sim.session import SimSession

DEFAULT_WORKLOADS = ("web-apache", "web-zeus", "oltp-db2", "oltp-oracle")


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    grid = get_runner(runner).run_grid(
        names,
        [PrefetcherKind.BASELINE],
        scale=scale,
        cores=cores,
        seed=seed,
        session=session,
    )
    mlp_by_workload = {
        name: max(1.0, grid[(name, PrefetcherKind.BASELINE)].mlp)
        for name in names
    }
    overheads = prior_design_overheads(mlp_by_workload)

    rows = []
    for design in PriorDesign:
        bar = overheads[design]
        rows.append(
            [
                design.value,
                bar.erroneous_prefetches,
                bar.metadata_lookup,
                bar.metadata_update,
                bar.total,
            ]
        )
    rendered = format_table(
        ["design", "erroneous", "lookup", "update", "total"],
        rows,
        title=(
            "Figure 1 (right): overhead accesses per baseline read "
            f"(MLP from {', '.join(names)})"
        ),
    )

    totals = {d: overheads[d].total for d in PriorDesign}
    average_total = sum(totals.values()) / len(totals)
    ulmt = overheads[PriorDesign.ULMT]
    ebcp = overheads[PriorDesign.EBCP]
    checks = [
        ShapeCheck(
            claim="Prior designs pay on the order of the baseline's read "
            "traffic again in overhead (paper: ~3x)",
            passed=average_total >= 1.5,
            detail=f"average total = {average_total:.2f}",
        ),
        ShapeCheck(
            claim="ULMT's overhead is dominated by 3-access updates on "
            "every miss",
            passed=ulmt.metadata_update
            >= max(ulmt.metadata_lookup, ulmt.erroneous_prefetches),
            detail=f"update={ulmt.metadata_update:.2f}",
        ),
        ShapeCheck(
            claim="EBCP's epoch-based lookup makes it the cheapest of the "
            "three",
            passed=totals[PriorDesign.EBCP] == min(totals.values()),
            detail=", ".join(f"{d.value}={t:.2f}" for d, t in totals.items()),
        ),
        ShapeCheck(
            claim="EBCP amortizes lookups over epochs (lookup traffic "
            "below ULMT's despite identical per-lookup cost)",
            passed=ebcp.metadata_lookup < ulmt.metadata_lookup,
            detail=(
                f"EBCP={ebcp.metadata_lookup:.2f}, "
                f"ULMT={ulmt.metadata_lookup:.2f}"
            ),
        ),
    ]
    return ExperimentResult(
        experiment="fig1-right",
        title="Traffic overheads of prior off-chip meta-data designs",
        rendered=rendered,
        data={
            "mlp": mlp_by_workload,
            "overheads": {
                d.value: {
                    "erroneous": overheads[d].erroneous_prefetches,
                    "lookup": overheads[d].metadata_lookup,
                    "update": overheads[d].metadata_update,
                    "total": overheads[d].total,
                }
                for d in PriorDesign
            },
        },
        checks=checks,
    )
