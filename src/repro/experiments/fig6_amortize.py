"""Figure 6: amortizing lookups over long temporal streams.

Left graph: the cumulative distribution of streamed blocks versus
temporal-stream length for commercial workloads — roughly half of all
prefetch opportunities come from streams of ten or more misses, with a
tail reaching into the hundreds.  Right graph: coverage loss from
restricting prefetch depth (single-table designs fragment long streams
into depth-sized pieces, paying a lookup and losing opportunity at every
fragment boundary).
"""

from __future__ import annotations

from repro.analysis.report import series_table
from repro.analysis.streams import (
    extract_streams,
    merge_statistics,
    stream_length_cdf,
)
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    check_monotone,
    get_runner,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession

DEFAULT_WORKLOADS = ("web-apache", "web-zeus", "oltp-db2", "oltp-oracle")
DEFAULT_DEPTHS = (1, 2, 4, 8, 16)
CDF_POINTS = (1, 2, 5, 10, 20, 50, 100, 500, 10000)


def run_cdf(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    """Left graph: streamed-block CDF vs. stream length."""
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    grid = get_runner(runner).run_grid(
        names,
        [PrefetcherKind.BASELINE],
        scale=scale,
        cores=cores,
        seed=seed,
        session=session,
        collect_miss_log=True,
    )

    series: dict[str, list[float]] = {}
    weighted_medians: dict[str, float] = {}
    for name in names:
        result = grid[(name, PrefetcherKind.BASELINE)]
        assert result.miss_log is not None
        statistics = merge_statistics(
            [extract_streams(log) for log in result.miss_log]
        )
        cdf = stream_length_cdf(statistics, list(CDF_POINTS))
        series[name] = [fraction for _, fraction in cdf]
        weighted_medians[name] = statistics.weighted_median_length()

    rendered = series_table(
        "stream length <=",
        list(CDF_POINTS),
        series,
        title="Figure 6 (left): cumulative % streamed blocks by stream "
        "length",
    )

    checks: list[ShapeCheck] = []
    for name in names:
        cdf = dict(zip(CDF_POINTS, series[name]))
        checks.append(
            ShapeCheck(
                claim=f"{name}: a large share of streamed blocks comes "
                "from streams of >= 10 misses (paper: about half)",
                passed=cdf[10000] > 0 and (1.0 - cdf[10] / cdf[10000]) >= 0.3,
                detail=f"fraction from streams >10: "
                f"{1.0 - cdf[10] / max(cdf[10000], 1e-9):.2f}",
            )
        )
        checks.append(
            ShapeCheck(
                claim=f"{name}: stream lengths reach into the tail "
                "(some blocks from streams > 50)",
                passed=cdf[10000] - cdf[50] > 0.01,
                detail=f"fraction beyond 50: {cdf[10000] - cdf[50]:.2f}",
            )
        )
    return ExperimentResult(
        experiment="fig6-left",
        title="Streamed blocks by temporal-stream length",
        rendered=rendered,
        data={
            "points": list(CDF_POINTS),
            "cdf": series,
            "weighted_median": weighted_medians,
        },
        checks=checks,
    )


def run_depth(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    depths: "tuple[int, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    """Right graph: coverage loss vs. fixed prefetch depth."""
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    depth_points = depths if depths is not None else DEFAULT_DEPTHS

    jobs = []
    for name in names:
        jobs.append(
            SimJob(
                name, PrefetcherKind.IDEAL_TMS,
                scale=scale, cores=cores, seed=seed,
            )
        )
        for depth in depth_points:
            jobs.append(
                SimJob(
                    name,
                    PrefetcherKind.FIXED_DEPTH,
                    scale=scale,
                    cores=cores,
                    seed=seed,
                    factory_options=job_options(
                        depth=depth, lookup_rounds=1
                    ),
                )
            )
    results = simulate_jobs(jobs, runner, session)
    stride = 1 + len(depth_points)
    loss: dict[str, list[float]] = {}
    for i, name in enumerate(names):
        unbounded = results[i * stride]
        reference = unbounded.coverage.coverage
        losses = []
        for bounded in results[i * stride + 1:(i + 1) * stride]:
            if reference > 0:
                losses.append(
                    max(0.0, 1.0 - bounded.coverage.coverage / reference)
                )
            else:
                losses.append(0.0)
        loss[name] = losses

    rendered = series_table(
        "prefetch depth",
        list(depth_points),
        loss,
        title="Figure 6 (right): coverage loss vs. unbounded depth",
    )

    checks: list[ShapeCheck] = []
    for name in names:
        series = loss[name]
        checks.append(
            ShapeCheck(
                claim=f"{name}: coverage loss shrinks as depth grows",
                passed=check_monotone(series, increasing=False, tolerance=0.06),
                detail=" -> ".join(f"{v:.2f}" for v in series),
            )
        )
        near_four = min(
            range(len(depth_points)),
            key=lambda i: abs(depth_points[i] - 4),
        )
        checks.append(
            ShapeCheck(
                claim=f"{name}: published depths (3-6) fragment streams — "
                "depth ~4 loses clearly more than the deepest setting",
                passed=series[near_four] >= series[-1] + 0.05,
                detail=f"loss@{depth_points[near_four]}="
                f"{series[near_four]:.2f}, "
                f"loss@{depth_points[-1]}={series[-1]:.2f}",
            )
        )
    return ExperimentResult(
        experiment="fig6-right",
        title="Coverage loss from restricted prefetch depth",
        rendered=rendered,
        data={"depths": list(depth_points), "loss": loss},
        checks=checks,
    )
