"""Figure 4: performance potential of idealized temporal streaming.

Left graph: prefetch coverage of an idealized TMS (magic on-chip
meta-data) over the baseline with stride prefetching.  Right graph: the
corresponding speedup.  Paper shape: 40-60 % coverage for OLTP/Web with
5-18 % speedup, near-perfect coverage and the largest speedups for the
scientific codes, and DSS gaining essentially nothing because its data
is visited once.
"""

from __future__ import annotations

from repro.analysis.report import grouped_bar_chart
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    get_runner,
)
from repro.sim.runner import ExperimentRunner, PrefetcherKind
from repro.sim.session import SimSession
from repro.workloads.suite import FIGURE_ORDER, WORKLOADS


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else FIGURE_ORDER
    grid = get_runner(runner).run_grid(
        names,
        [PrefetcherKind.BASELINE, PrefetcherKind.IDEAL_TMS],
        scale=scale,
        cores=cores,
        seed=seed,
        session=session,
    )
    coverage: dict[str, float] = {}
    speedup: dict[str, float] = {}
    for name in names:
        baseline = grid[(name, PrefetcherKind.BASELINE)]
        ideal = grid[(name, PrefetcherKind.IDEAL_TMS)]
        coverage[name] = ideal.coverage.coverage
        speedup[name] = ideal.speedup_over(baseline)

    labels = [WORKLOADS[name].display for name in names]
    rendered = "\n\n".join(
        [
            grouped_bar_chart(
                labels,
                {"coverage": [coverage[n] for n in names]},
                title="Figure 4 (left): idealized TMS coverage",
            ),
            grouped_bar_chart(
                labels,
                {"speedup": [speedup[n] - 1.0 for n in names]},
                title="Figure 4 (right): idealized TMS speedup (fraction)",
            ),
        ]
    )

    checks = _shape_checks(names, coverage, speedup)
    return ExperimentResult(
        experiment="fig4",
        title="Performance potential of idealized prefetcher",
        rendered=rendered,
        data={"coverage": coverage, "speedup": speedup},
        checks=checks,
    )


def _shape_checks(
    names: "tuple[str, ...]",
    coverage: dict[str, float],
    speedup: dict[str, float],
) -> "list[ShapeCheck]":
    checks: list[ShapeCheck] = []
    commercial = [
        n for n in names if WORKLOADS[n].category in ("web", "oltp")
    ]
    sci = [n for n in names if WORKLOADS[n].category == "sci"]
    dss = [n for n in names if WORKLOADS[n].category == "dss"]

    if commercial:
        values = [coverage[n] for n in commercial]
        checks.append(
            ShapeCheck(
                claim="OLTP/Web coverage lands in the paper's 40-60% band "
                "(tolerance 25-70%)",
                passed=all(0.25 <= v <= 0.70 for v in values),
                detail=", ".join(f"{n}={coverage[n]:.2f}" for n in commercial),
            )
        )
        speedups = [speedup[n] for n in commercial]
        checks.append(
            ShapeCheck(
                claim="OLTP/Web speedup lands in the paper's 5-18% band "
                "(tolerance 3-25%)",
                passed=all(1.03 <= s <= 1.25 for s in speedups),
                detail=", ".join(f"{n}={speedup[n]:.3f}" for n in commercial),
            )
        )
    if sci:
        checks.append(
            ShapeCheck(
                claim="Scientific coverage is near-perfect (>= 70%)",
                passed=all(coverage[n] >= 0.70 for n in sci),
                detail=", ".join(f"{n}={coverage[n]:.2f}" for n in sci),
            )
        )
        if commercial:
            checks.append(
                ShapeCheck(
                    claim="Largest speedup comes from a scientific workload "
                    "(paper: em3d, up to 80%)",
                    passed=max(speedup, key=speedup.get) in sci,
                    detail=f"max = {max(speedup, key=speedup.get)}",
                )
            )
    if dss:
        checks.append(
            ShapeCheck(
                claim="DSS derives no meaningful speedup (visit-once data)",
                passed=all(0.95 <= speedup[n] <= 1.06 for n in dss),
                detail=", ".join(f"{n}={speedup[n]:.3f}" for n in dss),
            )
        )
        if commercial:
            checks.append(
                ShapeCheck(
                    claim="DSS coverage is the lowest among server workloads",
                    passed=all(
                        coverage[d] <= min(coverage[c] for c in commercial)
                        for d in dss
                    ),
                    detail=", ".join(f"{n}={coverage[n]:.2f}" for n in dss),
                )
            )
    return checks
