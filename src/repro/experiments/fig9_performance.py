"""Figure 9: practical STMS versus idealized temporal streaming.

The paper's headline: with hash-based lookup and 12.5 % probabilistic
update, STMS — all meta-data off chip — achieves about 90 % of the
coverage and performance of idealized on-chip meta-data, and does not
penalize workloads that gain nothing from streaming.  The coverage bars
split into fully covered (latency completely hidden) and partially
covered (prefetch still in flight when demanded).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    geometric_mean,
    get_runner,
)
from repro.sim.runner import ExperimentRunner, PrefetcherKind
from repro.sim.session import SimSession
from repro.workloads.suite import FIGURE_ORDER, WORKLOADS


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else FIGURE_ORDER

    grid = get_runner(runner).run_grid(
        names,
        [
            PrefetcherKind.BASELINE,
            PrefetcherKind.IDEAL_TMS,
            PrefetcherKind.STMS,
        ],
        scale=scale,
        cores=cores,
        seed=seed,
        session=session,
    )
    rows = []
    data: dict[str, dict[str, float]] = {}
    for name in names:
        baseline = grid[(name, PrefetcherKind.BASELINE)]
        ideal = grid[(name, PrefetcherKind.IDEAL_TMS)]
        stms = grid[(name, PrefetcherKind.STMS)]
        data[name] = {
            "ideal_coverage": ideal.coverage.coverage,
            "stms_coverage": stms.coverage.coverage,
            "stms_full": stms.coverage.full_coverage,
            "stms_partial": stms.coverage.partial_coverage,
            "ideal_speedup": ideal.speedup_over(baseline),
            "stms_speedup": stms.speedup_over(baseline),
        }
        rows.append(
            [
                WORKLOADS[name].display,
                ideal.coverage.coverage,
                stms.coverage.coverage,
                stms.coverage.full_coverage,
                stms.coverage.partial_coverage,
                ideal.speedup_over(baseline),
                stms.speedup_over(baseline),
            ]
        )

    rendered = format_table(
        ["workload", "ideal cov", "stms cov", "full", "partial",
         "ideal speedup", "stms speedup"],
        rows,
        title="Figure 9: idealized vs. off-chip (STMS) coverage and "
        "performance",
    )

    checks = _shape_checks(names, data)
    return ExperimentResult(
        experiment="fig9",
        title="Performance impact of practical streaming",
        rendered=rendered,
        data=data,
        checks=checks,
    )


def _shape_checks(
    names: "tuple[str, ...]", data: "dict[str, dict[str, float]]"
) -> "list[ShapeCheck]":
    coverage_ratios = []
    speedup_ratios = []
    for name in names:
        entry = data[name]
        if entry["ideal_coverage"] > 0.02:
            coverage_ratios.append(
                min(1.0, entry["stms_coverage"] / entry["ideal_coverage"])
            )
        ideal_gain = entry["ideal_speedup"] - 1.0
        stms_gain = entry["stms_speedup"] - 1.0
        if ideal_gain > 0.02:
            speedup_ratios.append(
                min(1.0, max(0.0, stms_gain) / ideal_gain)
            )

    coverage_geomean = geometric_mean(coverage_ratios)
    speedup_geomean = geometric_mean(speedup_ratios)
    no_harm = all(data[n]["stms_speedup"] >= 0.97 for n in names)
    sci = [n for n in names if WORKLOADS[n].category == "sci"]

    checks = [
        ShapeCheck(
            claim="STMS retains most of the idealized coverage "
            "(paper: ~90%; check geomean >= 65%)",
            passed=coverage_geomean >= 0.65,
            detail=f"geomean coverage ratio = {coverage_geomean:.2f}",
        ),
        ShapeCheck(
            claim="STMS retains most of the idealized speedup "
            "(paper: ~90%; check geomean >= 55%)",
            passed=speedup_geomean >= 0.55,
            detail=f"geomean speedup ratio = {speedup_geomean:.2f}",
        ),
        ShapeCheck(
            claim="STMS never penalizes a workload (goal 2: no harm even "
            "without streaming benefit)",
            passed=no_harm,
            detail=", ".join(
                f"{n}={data[n]['stms_speedup']:.3f}" for n in names
            ),
        ),
    ]
    if sci:
        checks.append(
            ShapeCheck(
                claim="Scientific workloads keep near-ideal coverage under "
                "STMS (long streams amortize everything)",
                passed=all(
                    data[n]["stms_coverage"]
                    >= 0.85 * data[n]["ideal_coverage"]
                    for n in sci
                ),
                detail=", ".join(
                    f"{n}={data[n]['stms_coverage']:.2f}" for n in sci
                ),
            )
        )
    partial_split = [
        n
        for n in names
        if data[n]["stms_coverage"] > 0.05
        and data[n]["stms_partial"] > 0.001
    ]
    checks.append(
        ShapeCheck(
            claim="Off-chip lookup latency shows up as partially-covered "
            "misses (in-flight prefetches)",
            passed=len(partial_split) >= 1,
            detail=f"{len(partial_split)} workloads with a partial share",
        )
    )
    return checks
