"""Table 2: memory-level parallelism of off-chip reads (baseline).

The paper reports the MLP of each workload without STMS — the property
that sets how much opportunity an off-chip lookup forfeits (expected
coverage loss per stream is the lookup round trips times the MLP).
Paper values: Web 1.5, OLTP 1.3, DSS 1.6, em3d 1.7, moldyn 1.0,
ocean 1.2.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    get_runner,
)
from repro.sim.runner import ExperimentRunner, PrefetcherKind
from repro.sim.session import SimSession
from repro.workloads.suite import FIGURE_ORDER, WORKLOADS


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else FIGURE_ORDER

    grid = get_runner(runner).run_grid(
        names,
        [PrefetcherKind.BASELINE],
        scale=scale,
        cores=cores,
        seed=seed,
        session=session,
    )
    measured: dict[str, float] = {}
    rows = []
    for name in names:
        result = grid[(name, PrefetcherKind.BASELINE)]
        measured[name] = result.mlp
        rows.append(
            [
                WORKLOADS[name].display,
                result.mlp,
                WORKLOADS[name].paper_mlp,
            ]
        )

    rendered = format_table(
        ["workload", "measured MLP", "paper MLP"],
        rows,
        title="Table 2: MLP of off-chip reads (baseline, stride only)",
    )

    checks = _shape_checks(names, measured)
    return ExperimentResult(
        experiment="table2",
        title="Memory-level parallelism of off-chip reads",
        rendered=rendered,
        data={"mlp": measured},
        checks=checks,
    )


def _shape_checks(
    names: "tuple[str, ...]", measured: "dict[str, float]"
) -> "list[ShapeCheck]":
    checks = [
        ShapeCheck(
            claim="MLP is low across the suite (pointer-chasing bounds "
            "overlap; paper range 1.0-1.7)",
            passed=all(1.0 <= measured[n] <= 3.5 for n in names),
            detail=", ".join(f"{n}={measured[n]:.2f}" for n in names),
        ),
    ]
    if "sci-moldyn" in names:
        checks.append(
            ShapeCheck(
                claim="moldyn is fully serialized (paper MLP = 1.0)",
                passed=measured["sci-moldyn"] <= 1.15,
                detail=f"moldyn = {measured['sci-moldyn']:.2f}",
            )
        )
    if "sci-em3d" in names and "sci-ocean" in names:
        checks.append(
            ShapeCheck(
                claim="em3d has the highest scientific MLP (paper: 1.7)",
                passed=measured["sci-em3d"]
                >= max(measured.get("sci-ocean", 0.0),
                       measured.get("sci-moldyn", 0.0)),
                detail=f"em3d = {measured['sci-em3d']:.2f}",
            )
        )
    if "oltp-db2" in names and "dss-db2" in names:
        checks.append(
            ShapeCheck(
                claim="DSS overlaps more than OLTP (paper: 1.6 vs 1.3)",
                passed=measured["dss-db2"] >= measured["oltp-db2"],
                detail=f"dss = {measured['dss-db2']:.2f}, "
                f"oltp = {measured['oltp-db2']:.2f}",
            )
        )
    return checks
