"""Figure 5: main-memory storage requirements of the STMS meta-data.

Left graph: predictor coverage as a function of history-buffer size —
commercial workloads improve smoothly (a spectrum of reuse distances)
while scientific workloads are bimodal (all-or-nothing at one iteration's
footprint).  Right graph: coverage as a function of index-table size with
ample history — the in-bucket LRU retains the useful entries, so
coverage saturates at a fraction of the idealized entry count.

Sampling is disabled (p = 1.0) for these sweeps so the storage effect is
isolated, matching the paper's presentation order (sampling arrives in
Section 5.5).
"""

from __future__ import annotations

from repro.analysis.report import series_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    check_monotone,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession
from repro.workloads.suite import WORKLOADS, get_scale

DEFAULT_WORKLOADS = ("web-apache", "oltp-db2", "sci-em3d", "sci-ocean")


def _sweep(
    names: "tuple[str, ...]",
    scale: str,
    cores: int,
    seed: int,
    history_sizes: "tuple[int, ...] | None" = None,
    index_sizes: "tuple[int, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> "dict[str, list[float]]":
    """Run one parameter sweep; exactly one of the axes must be given."""
    preset = get_scale(scale)
    points = history_sizes if history_sizes is not None else index_sizes
    assert points is not None
    jobs = []
    for name in names:
        for point in points:
            if history_sizes is not None:
                overrides = job_options(
                    history_entries=point,
                    index_buckets=preset.index_buckets * 2,
                    sampling_probability=1.0,
                )
            else:
                overrides = job_options(
                    history_entries=preset.history_entries * 2,
                    index_buckets=point,
                    sampling_probability=1.0,
                )
            jobs.append(
                SimJob(
                    name,
                    PrefetcherKind.STMS,
                    scale=scale,
                    cores=cores,
                    seed=seed,
                    stms_overrides=overrides,
                )
            )
    results = simulate_jobs(jobs, runner, session)
    coverage: dict[str, list[float]] = {name: [] for name in names}
    for job, result in zip(jobs, results):
        coverage[job.workload].append(result.coverage.coverage)
    return coverage


def default_history_sizes(scale: str) -> "tuple[int, ...]":
    top = get_scale(scale).history_entries * 2
    sizes = []
    size = max(1024, top // 64)
    while size <= top:
        sizes.append(size)
        size *= 2
    return tuple(sizes)


def default_index_sizes(scale: str) -> "tuple[int, ...]":
    # Sweep up to 4x the preset's default index so the curve reaches its
    # plateau; the smallest sizes (always ~zero coverage) are skipped.
    top = get_scale(scale).index_buckets * 4
    sizes = []
    size = max(32, top // 16)
    while size <= top:
        sizes.append(size)
        size *= 2
    return tuple(sizes)


def run_history(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    sizes: "tuple[int, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    points = sizes if sizes is not None else default_history_sizes(scale)
    coverage = _sweep(
        names, scale, cores, seed, history_sizes=points, runner=runner,
        session=session,
    )

    rendered = series_table(
        "history entries/core",
        list(points),
        coverage,
        title="Figure 5 (left): coverage vs. history-buffer size",
    )
    checks = _history_checks(names, coverage)
    return ExperimentResult(
        experiment="fig5-left",
        title="History-buffer storage requirements",
        rendered=rendered,
        data={"sizes": list(points), "coverage": coverage},
        checks=checks,
    )


def _history_checks(
    names: "tuple[str, ...]", coverage: "dict[str, list[float]]"
) -> "list[ShapeCheck]":
    checks: list[ShapeCheck] = []
    for name in names:
        series = coverage[name]
        category = WORKLOADS[name].category
        peak = max(series)
        if peak <= 0:
            checks.append(
                ShapeCheck(
                    claim=f"{name}: non-zero coverage somewhere in sweep",
                    passed=False,
                )
            )
            continue
        if category == "sci":
            # Bimodal: at least one doubling step jumps by > 40% of peak.
            jumps = [b - a for a, b in zip(series, series[1:])]
            checks.append(
                ShapeCheck(
                    claim=f"{name}: bimodal coverage (iteration either "
                    "fits or does not)",
                    passed=bool(jumps) and max(jumps) >= 0.4 * peak,
                    detail=" -> ".join(f"{v:.2f}" for v in series),
                )
            )
        else:
            # Smooth: growing, and no single step carries > 75% of peak.
            jumps = [b - a for a, b in zip(series, series[1:])]
            smooth = all(j <= 0.75 * peak for j in jumps)
            growing = check_monotone(series, increasing=True, tolerance=0.05)
            checks.append(
                ShapeCheck(
                    claim=f"{name}: smooth coverage growth with history "
                    "size (reuse-distance spectrum)",
                    passed=smooth and growing,
                    detail=" -> ".join(f"{v:.2f}" for v in series),
                )
            )
    return checks


def run_index(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    sizes: "tuple[int, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    points = sizes if sizes is not None else default_index_sizes(scale)
    coverage = _sweep(
        names, scale, cores, seed, index_sizes=points, runner=runner,
        session=session,
    )

    rendered = series_table(
        "index buckets",
        list(points),
        coverage,
        title="Figure 5 (right): coverage vs. index-table size",
    )
    checks: list[ShapeCheck] = []
    for name in names:
        series = coverage[name]
        peak = max(series)
        span = peak - min(series)
        # Growth must be monotone, reach meaningful coverage, and be
        # levelling off: the final doubling contributes less than half
        # of the total range.
        final_gain = series[-1] - series[-2] if len(series) >= 2 else 0.0
        checks.append(
            ShapeCheck(
                claim=f"{name}: coverage grows with index size and "
                "approaches saturation (LRU keeps the useful entries)",
                passed=peak > 0.2
                and check_monotone(series, increasing=True, tolerance=0.05)
                and final_gain <= 0.5 * max(span, 1e-9),
                detail=" -> ".join(f"{v:.2f}" for v in series),
            )
        )
    return ExperimentResult(
        experiment="fig5-right",
        title="Index-table storage requirements",
        rendered=rendered,
        data={"sizes": list(points), "coverage": coverage},
        checks=checks,
    )
