"""Figure 1 (left): correlation-table storage needed for coverage.

The paper shows that an idealized address-correlating prefetcher needs
on the order of one million correlation-table entries (up to 64 MB) to
reach maximal coverage on commercial workloads — the storage wall that
motivates off-chip meta-data.  We sweep a global-LRU entry cap on the
idealized prefetcher's index and report average commercial coverage per
cap, scaled down consistently with the rest of the reproduction.
"""

from __future__ import annotations

from repro.analysis.report import series_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    check_monotone,
    simulate_jobs,
)
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.sim.session import SimSession

#: Default entry caps (scaled stand-ins for the paper's 10^4..10^7 axis).
DEFAULT_CAPS = (256, 1024, 4096, 16384, 65536)

#: Commercial workloads only, as in the paper's figure.
DEFAULT_WORKLOADS = ("web-apache", "oltp-db2")


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    caps: "tuple[int, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    names = workloads if workloads is not None else DEFAULT_WORKLOADS
    entry_caps = caps if caps is not None else DEFAULT_CAPS

    jobs = [
        SimJob(
            name,
            PrefetcherKind.IDEAL_TMS,
            scale=scale,
            cores=cores,
            seed=seed,
            factory_options=job_options(max_index_entries=cap),
        )
        for name in names
        for cap in entry_caps
    ]
    results = simulate_jobs(jobs, runner, session)
    per_workload: dict[str, list[float]] = {name: [] for name in names}
    for job, result in zip(jobs, results):
        per_workload[job.workload].append(result.coverage.coverage)

    averaged = [
        sum(per_workload[name][i] for name in names) / len(names)
        for i in range(len(entry_caps))
    ]
    rendered = series_table(
        "entries",
        list(entry_caps),
        {
            **{name: per_workload[name] for name in names},
            "average": averaged,
        },
        title="Figure 1 (left): coverage vs. correlation-table entries",
    )

    peak = max(averaged)
    saturation_cap = next(
        (
            cap
            for cap, value in zip(entry_caps, averaged)
            if peak > 0 and value >= 0.95 * peak
        ),
        entry_caps[-1],
    )
    checks = [
        ShapeCheck(
            claim="Coverage grows with correlation-table capacity",
            passed=check_monotone(averaged, increasing=True, tolerance=0.03),
            detail=" -> ".join(f"{v:.2f}" for v in averaged),
        ),
        ShapeCheck(
            claim="Small tables forfeit most coverage (the storage wall): "
            "smallest cap reaches < 60% of maximum",
            passed=peak > 0 and averaged[0] <= 0.6 * peak,
            detail=f"min={averaged[0]:.2f}, max={peak:.2f}",
        ),
        ShapeCheck(
            claim="Saturation requires a table orders of magnitude larger "
            "than the smallest (paper: ~10^6 entries, tens of MB)",
            passed=saturation_cap >= 16 * entry_caps[0],
            detail=f"saturates at {saturation_cap} entries "
            f"(smallest tested {entry_caps[0]})",
        ),
    ]
    return ExperimentResult(
        experiment="fig1-left",
        title="Correlation-table entries required for coverage",
        rendered=rendered,
        data={"caps": list(entry_caps), "coverage": per_workload,
              "average": averaged},
        checks=checks,
    )
