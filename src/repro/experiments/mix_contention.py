"""Multiprogrammed mixes under shared-L2 / DRAM-bandwidth contention.

The paper's CMP setting puts STMS meta-data traffic on the same memory
system as demand traffic from *other* programs.  This experiment
co-schedules heterogeneous per-core mixes (OLTP beside DSS, web beside
scientific, rate-/priority-asymmetric co-runners) and sweeps the two
shared resources — L2 capacity and DRAM bandwidth — comparing the base
system against STMS at each point.

Reported per (mix, machine point, prefetcher): aggregate coverage and
speedup, DRAM-channel utilization, meta-data overhead per useful byte,
and the per-workload split of coverage/throughput/attributed DRAM bytes
(which co-runner pays for the contention, and *whose misses caused the
meta-data traffic*).  Each mix component also gets a **solo-run
reference** — the same workload running the whole machine alone at the
same sweep point — so the classic multiprogramming metric, per-workload
slowdown versus running alone, is reported directly.  Solo traces and
results share recipe keys with the homogeneous figure experiments, so
a warm artifact store serves them without any cold regeneration.

Paper-shaped claims checked: temporal streams survive co-scheduling,
shrinking the shared L2 raises off-chip demand, throttled DRAM never
helps, STMS's lookup/history traffic is real (nonzero overhead bytes,
higher channel utilization than the base system while it wins
coverage), per-workload attribution is conservative (component bytes
sum to the global counters), and every component reports a positive
finite slowdown-vs-alone.

The (L2 capacity x DRAM bandwidth x prefetcher) sweep over each mix
trace is grouped by :class:`~repro.sim.runner.ExperimentRunner` into
config-parallel sweep invocations (``repro.sim.sweep``): every machine
point over the same mix shares one trace generation and one stacked
metadata-classification pass, with per-cell results cached under the
unchanged recipe keys.  Solo references group the same way per solo
trace.
"""

from __future__ import annotations

from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import stratified_estimates
from repro.experiments.common import (
    ExperimentResult,
    SamplingSpec,
    ShapeCheck,
    check_monotone,
    note_exact_cells,
    run_sampled_sweep,
    simulate_jobs,
)
from repro.sim.metrics import SimResult, per_workload_breakdown
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    make_sim_config,
)
from repro.sim.session import SimSession
from repro.workloads.mix import MixComponent, MixRecipe

#: Default contention mixes (components cycle over the core count).
#: The last one is asymmetric: two time-sliced OLTP instances share
#: each odd core while a half-rate, low-demand-priority DSS runs on the
#: even ones — the rate-based interference scenario from the roadmap.
DEFAULT_MIXES = (
    "mix:oltp-db2+dss-db2",
    "mix:web-apache+sci-em3d",
    "mix:oltp-db2+web-zeus",
    "mix:oltp-db2*2+dss-db2@0.5!low",
)

#: Shared-L2 capacity factors relative to the scale preset.
L2_FACTORS = (0.5, 1.0, 2.0)
#: DRAM peak-bandwidth factors (swept at the default L2 point).
DRAM_FACTORS = (0.5,)

_KINDS = (PrefetcherKind.BASELINE, PrefetcherKind.STMS)


def _points(scale) -> "list[tuple[str, tuple, tuple]]":
    """(label, cmp_overrides, dram_overrides) machine sweep points."""
    base = make_sim_config(scale)
    l2_base = base.cmp.l2_size_bytes
    bw_base = base.dram.peak_bandwidth_gbps
    points = [
        (
            f"l2x{factor:g}",
            (("l2_size_bytes", int(l2_base * factor)),),
            (),
        )
        for factor in L2_FACTORS
    ]
    points.extend(
        (
            f"dramx{factor:g}",
            (),
            (("peak_bandwidth_gbps", bw_base * factor),),
        )
        for factor in DRAM_FACTORS
    )
    return points


def _off_chip_fraction(result: SimResult) -> float:
    """Off-chip read misses per measured record (L2-pressure proxy)."""
    coverage = result.coverage
    reads = coverage.temporal_eligible + coverage.stride_covered
    if result.measured_records <= 0:
        return 0.0
    return reads / result.measured_records


def _sum_throughput(result: SimResult) -> float:
    """Sum of per-core records/cycle — the co-run throughput metric."""
    assert result.core_measured_records is not None
    return sum(
        result.core_throughput(core)
        for core in range(len(result.core_measured_records))
    )


def _per_core_throughput(result: SimResult) -> float:
    """Mean per-core records/cycle (the solo-reference normalization)."""
    assert result.core_measured_records is not None
    cores = len(result.core_measured_records)
    if cores == 0:
        return 0.0
    return _sum_throughput(result) / cores


def solo_workloads(mixes: "tuple[str, ...]") -> "tuple[str, ...]":
    """Distinct bare component workloads across ``mixes``, in first-seen
    order — one solo-run reference each.  Decorated components (rate,
    slices, priority) reference their undecorated workload: "alone"
    means the program owning the whole machine at full rate."""
    seen: "list[str]" = []
    for mix in mixes:
        for component in MixRecipe.parse(mix).parsed:
            if component.workload not in seen:
                seen.append(component.workload)
    return tuple(seen)


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
    budget: "int | None" = None,
    confidence: float = 0.95,
    ci_width: "float | None" = None,
    sample_seeds: int = 4,
) -> ExperimentResult:
    """Regenerate the mix-contention sweep (``workloads`` = mix specs).

    With ``budget`` (a cell count) or ``ci_width`` set, the sweep runs
    as a budgeted stratified sample over the (mix x seed x machine
    point) grid instead of exactly: per-point bootstrap confidence
    intervals replace exact numbers, and re-running with a larger
    budget only simulates the incremental cells (the store answers the
    rest).
    """
    mixes = workloads if workloads is not None else DEFAULT_MIXES
    points = _points(scale)
    spec = SamplingSpec(
        budget=budget, confidence=confidence, ci_width=ci_width,
        seeds=sample_seeds,
    )
    if spec.active:
        return _run_sampled(
            scale, cores, seed, mixes, points, spec, runner, session
        )
    solos = solo_workloads(mixes)

    jobs = [
        SimJob(
            mix,
            kind,
            scale=scale,
            cores=cores,
            seed=seed,
            cmp_overrides=cmp_overrides,
            dram_overrides=dram_overrides,
            tag=(mix, label, kind),
        )
        for mix in mixes
        for label, cmp_overrides, dram_overrides in points
        for kind in _KINDS
    ]
    # Solo-run references: each component workload owning the whole
    # machine at the same sweep point.  The trace recipes are the plain
    # homogeneous ones the figure experiments use, so a warm store
    # serves these without cold regeneration.
    jobs.extend(
        SimJob(
            workload,
            kind,
            scale=scale,
            cores=cores,
            seed=seed,
            cmp_overrides=cmp_overrides,
            dram_overrides=dram_overrides,
            tag=("solo", workload, label, kind),
        )
        for workload in solos
        for label, cmp_overrides, dram_overrides in points
        for kind in _KINDS
    )
    results = simulate_jobs(jobs, runner, session)
    note_exact_cells(session, len(mixes) * len(points))
    by_tag: "dict[tuple, SimResult]" = {
        job.tag: result for job, result in zip(jobs, results)
    }

    rows = []
    data: "dict[str, dict]" = {}
    for mix in mixes:
        data[mix] = {}
        for label, _, _ in points:
            baseline = by_tag[(mix, label, PrefetcherKind.BASELINE)]
            stms = by_tag[(mix, label, PrefetcherKind.STMS)]
            point_data: "dict[str, dict]" = {}
            for kind, pk, result in (
                ("baseline", PrefetcherKind.BASELINE, baseline),
                ("stms", PrefetcherKind.STMS, stms),
            ):
                per_workload: "dict[str, dict]" = {}
                for name, piece in sorted(
                    per_workload_breakdown(result).items()
                ):
                    component = MixComponent.parse(name)
                    solo = by_tag[
                        ("solo", component.workload, label, pk)
                    ]
                    solo_throughput = _per_core_throughput(solo)
                    # Per *instance*: a time-sliced core commits all S
                    # instances' records, so its per-core rate must be
                    # split S ways before comparing against one program
                    # running alone — otherwise `w*2` would report ~1x
                    # while each sliced program actually progresses at
                    # half its solo rate (and `w@0.5` would show its
                    # stretch, inconsistently).
                    mix_throughput = (
                        piece.throughput
                        / len(piece.cores)
                        / component.slices
                        if piece.cores
                        else 0.0
                    )
                    per_workload[name] = {
                        "cores": piece.cores,
                        "coverage": piece.coverage.coverage,
                        "throughput": piece.throughput,
                        "mlp": piece.mlp,
                        "solo_throughput_per_core": solo_throughput,
                        "slowdown_vs_solo": (
                            solo_throughput / mix_throughput
                            if mix_throughput > 0
                            else 0.0
                        ),
                        "traffic_bytes": dict(
                            sorted(piece.traffic_bytes.items())
                        ),
                        "metadata_bytes": piece.metadata_bytes,
                    }
                point_data[kind] = {
                    "coverage": result.coverage.coverage,
                    "off_chip_fraction": _off_chip_fraction(result),
                    "throughput": _sum_throughput(result),
                    "dram_utilization": result.dram_utilization,
                    "overhead_per_useful_byte": (
                        result.overhead_per_useful_byte
                    ),
                    "metadata_bytes": result.metadata_bytes,
                    "per_workload": per_workload,
                }
            point_data["speedup"] = stms.speedup_over(baseline)
            data[mix][label] = point_data
            rows.append(
                [
                    mix,
                    label,
                    format_percent(stms.coverage.coverage),
                    f"{point_data['speedup']:.3f}x",
                    f"{baseline.dram_utilization:.3f}",
                    f"{stms.dram_utilization:.3f}",
                    f"{stms.overhead_per_useful_byte:.3f}",
                ]
            )

    per_workload_rows = []
    for mix in mixes:
        point = data[mix]["l2x1"]
        for name, piece in point["stms"]["per_workload"].items():
            base_piece = point["baseline"]["per_workload"][name]
            per_workload_rows.append(
                [
                    mix,
                    name,
                    len(piece["cores"]),
                    format_percent(piece["coverage"]),
                    f"{base_piece['throughput']:.4f}",
                    f"{piece['throughput']:.4f}",
                    f"{base_piece['slowdown_vs_solo']:.3f}x",
                    f"{piece['slowdown_vs_solo']:.3f}x",
                    f"{piece['metadata_bytes'] / 1024:.1f}K",
                ]
            )

    rendered = "\n\n".join(
        [
            format_table(
                ["mix", "point", "stms cov", "speedup", "base util",
                 "stms util", "overhead/byte"],
                rows,
                title="Mix contention: shared-L2 / DRAM sweep",
            ),
            format_table(
                ["mix", "workload", "cores", "stms cov",
                 "base thpt", "stms thpt", "base slow",
                 "stms slow", "meta bytes"],
                per_workload_rows,
                title="Per-workload split at the default machine point "
                "(per-instance slowdown vs running alone; attributed "
                "STMS meta-data bytes)",
            ),
        ]
    )

    checks = _shape_checks(mixes, data)
    return ExperimentResult(
        experiment="mix-contention",
        title="Multiprogrammed mixes under shared-memory contention",
        rendered=rendered,
        data={"mixes": data},
        checks=checks,
    )


#: Metrics estimated per stratum in sampled mode; ``speedup`` is the
#: CI-width refinement target (the sweep's headline number).
_SAMPLED_METRICS = ("speedup", "coverage", "stms_util", "overhead")


def _cell_metrics(results: "list[SimResult]") -> "dict[str, float]":
    """Headline metrics of one sampled (baseline, stms) cell."""
    baseline, stms = results
    return {
        "speedup": stms.speedup_over(baseline),
        "coverage": stms.coverage.coverage,
        "stms_util": stms.dram_utilization,
        "overhead": stms.overhead_per_useful_byte,
    }


def _run_sampled(
    scale: str,
    cores: int,
    seed: int,
    mixes: "tuple[str, ...]",
    points: "list[tuple[str, tuple, tuple]]",
    spec: SamplingSpec,
    runner: "ExperimentRunner | None",
    session: "SimSession | None",
) -> ExperimentResult:
    """Budgeted sampled variant of the contention sweep.

    The grid is (mix x seed x machine point); strata are the machine
    points, so every capacity/bandwidth point is represented at any
    budget.  Per cell both prefetchers run (speedup needs the pair);
    the per-workload solo-reference tables are an exact-mode detail
    and are not part of the sampled estimate.
    """
    seeds = tuple(seed + i for i in range(max(1, spec.seeds)))
    cells = [
        (mix, cell_seed, label, cmp_overrides, dram_overrides)
        for mix in mixes
        for cell_seed in seeds
        for label, cmp_overrides, dram_overrides in points
    ]
    strata = [label for _, _, label, _, _ in cells]
    jobs_by_cell = [
        [
            SimJob(
                mix,
                kind,
                scale=scale,
                cores=cores,
                seed=cell_seed,
                cmp_overrides=cmp_overrides,
                dram_overrides=dram_overrides,
                tag=(mix, cell_seed, label, kind),
            )
            for kind in _KINDS
        ]
        for mix, cell_seed, label, cmp_overrides, dram_overrides in cells
    ]
    sweep = run_sampled_sweep(
        jobs_by_cell,
        strata,
        spec,
        cell_metric=lambda results: _cell_metrics(results)["speedup"],
        experiment="mix-contention",
        grid_key=(
            tuple(mixes), tuple(label for label, _, _ in points),
            scale, cores, seeds,
        ),
        runner=runner,
        session=session,
        sample_seed=seed,
    )
    estimates = {
        name: stratified_estimates(
            sweep.stratum_values(
                lambda results, _name=name: _cell_metrics(results)[_name]
            ),
            confidence=spec.confidence,
            seed=seed,
        )
        for name in _SAMPLED_METRICS
    }

    ci_label = f"ci{spec.confidence * 100:g}"
    labels = [label for label, _, _ in points]
    per_stratum_n = {
        label: len(indices)
        for label, indices in sweep.plan.by_stratum().items()
    }
    rows = [
        [
            label,
            str(per_stratum_n[label]),
            estimates["coverage"][label].render(),
            estimates["speedup"][label].render(),
            estimates["stms_util"][label].render(),
            estimates["overhead"][label].render(),
        ]
        for label in labels
    ]
    rendered = "\n\n".join(
        [
            format_table(
                ["point", "n",
                 f"stms cov ({ci_label})",
                 f"speedup ({ci_label})",
                 f"stms util ({ci_label})",
                 f"overhead/byte ({ci_label})"],
                rows,
                title="Mix contention (budgeted sample): per-point "
                "bootstrap estimates over the mix x seed grid",
            ),
            sweep.summary_line(),
        ]
    )

    data = {
        "sampled": not sweep.plan.exhaustive,
        "sampling": {
            "budget": sweep.plan.budget,
            "total": sweep.plan.total,
            "fraction": sweep.plan.fraction,
            "confidence": spec.confidence,
            "rounds": sweep.rounds,
            "simulated_cells": sweep.simulated_cells,
            "reused_cells": sweep.reused_cells,
            "estimate_record": sweep.estimate_record,
            "mixes": list(mixes),
            "seeds": list(seeds),
        },
        "strata": {
            label: {
                name: estimates[name][label].as_dict()
                for name in _SAMPLED_METRICS
            }
            for label in labels
        },
    }
    checks = _sampled_shape_checks(labels, estimates, sweep, spec)
    return ExperimentResult(
        experiment="mix-contention",
        title="Multiprogrammed mixes under shared-memory contention "
        "(budgeted sample)",
        rendered=rendered,
        data=data,
        checks=checks,
    )


def _sampled_shape_checks(
    labels: "list[str]",
    estimates: "dict[str, dict]",
    sweep,
    spec: SamplingSpec,
) -> "list[ShapeCheck]":
    coverage_means = [estimates["coverage"][lb].mean for lb in labels]
    well_formed = all(
        est.lo <= est.mean <= est.hi and est.n >= 1
        for name in _SAMPLED_METRICS
        for est in (estimates[name][lb] for lb in labels)
    )
    width_ok = (
        spec.ci_width is None
        or sweep.plan.exhaustive
        or all(
            estimates["speedup"][lb].width <= spec.ci_width
            for lb in labels
        )
    )
    return [
        ShapeCheck(
            claim="Every machine-point stratum is represented and its "
            "bootstrap intervals are well-formed",
            passed=len(labels) == len(sweep.plan.by_stratum())
            and well_formed,
            detail=f"{len(labels)} strata, "
            f"budget {sweep.plan.budget}/{sweep.plan.total}",
        ),
        ShapeCheck(
            claim="Temporal streams survive co-scheduling in the "
            "sampled estimate (positive STMS coverage per stratum)",
            passed=all(value > 0.0 for value in coverage_means),
            detail=f"min mean coverage = {min(coverage_means):.1%}",
        ),
        ShapeCheck(
            claim="Refinement met the requested CI width (or exhausted "
            "the grid)",
            passed=width_ok,
            detail=f"rounds {sweep.rounds}",
        ),
    ]


def _shape_checks(
    mixes: "tuple[str, ...]", data: "dict[str, dict]"
) -> "list[ShapeCheck]":
    covered = [
        data[mix]["l2x1"]["stms"]["coverage"] for mix in mixes
    ]
    l2_monotone = 0
    for mix in mixes:
        fractions = [
            data[mix][f"l2x{factor:g}"]["baseline"]["off_chip_fraction"]
            for factor in L2_FACTORS
        ]
        if check_monotone(fractions, increasing=False, tolerance=0.005):
            l2_monotone += 1
    throttled_ok = all(
        data[mix]["dramx0.5"]["stms"]["throughput"]
        <= data[mix]["l2x1"]["stms"]["throughput"] * 1.02
        for mix in mixes
    )
    overhead_real = all(
        data[mix]["l2x1"]["stms"]["overhead_per_useful_byte"] > 0.0
        for mix in mixes
    )
    util_up = sum(
        1
        for mix in mixes
        if data[mix]["l2x1"]["stms"]["dram_utilization"]
        >= data[mix]["l2x1"]["baseline"]["dram_utilization"] - 1e-9
    )
    attribution_conservative = all(
        sum(
            piece["metadata_bytes"]
            for piece in data[mix][label][kind]["per_workload"].values()
        )
        == data[mix][label][kind]["metadata_bytes"]
        for mix in mixes
        for label in data[mix]
        for kind in ("baseline", "stms")
    )
    slowdowns = [
        piece["slowdown_vs_solo"]
        for mix in mixes
        for label in data[mix]
        for kind in ("baseline", "stms")
        for piece in data[mix][label][kind]["per_workload"].values()
    ]
    slowdowns_ok = all(
        value > 0.0 and value == value and value != float("inf")
        for value in slowdowns
    )
    return [
        ShapeCheck(
            claim="Temporal streams survive co-scheduling (STMS covers "
            "misses on every mix)",
            passed=all(value > 0.0 for value in covered),
            detail=f"min coverage = {min(covered):.1%}",
        ),
        ShapeCheck(
            claim="Shrinking the shared L2 raises off-chip demand "
            "pressure (baseline, per mix)",
            passed=l2_monotone == len(mixes),
            detail=f"{l2_monotone}/{len(mixes)} mixes monotone",
        ),
        ShapeCheck(
            claim="Halving DRAM bandwidth never improves co-run "
            "throughput",
            passed=throttled_ok,
        ),
        ShapeCheck(
            claim="STMS meta-data traffic is real: nonzero overhead "
            "bytes and no lower channel utilization than the base "
            "system on most mixes",
            passed=overhead_real and util_up * 2 >= len(mixes),
            detail=f"util >= baseline on {util_up}/{len(mixes)} mixes",
        ),
        ShapeCheck(
            claim="Per-workload DRAM attribution is conservative "
            "(component meta-data bytes sum to the global counter at "
            "every point)",
            passed=attribution_conservative,
        ),
        ShapeCheck(
            claim="Every mix component reports a positive finite "
            "slowdown vs running alone",
            passed=bool(slowdowns) and slowdowns_ok,
            detail=(
                f"max slowdown = {max(slowdowns):.3f}x"
                if slowdowns
                else "no components"
            ),
        ),
    ]
