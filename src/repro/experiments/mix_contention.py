"""Multiprogrammed mixes under shared-L2 / DRAM-bandwidth contention.

The paper's CMP setting puts STMS meta-data traffic on the same memory
system as demand traffic from *other* programs.  This experiment
co-schedules heterogeneous per-core mixes (OLTP beside DSS, web beside
scientific) and sweeps the two shared resources — L2 capacity and DRAM
bandwidth — comparing the base system against STMS at each point.

Reported per (mix, machine point, prefetcher): aggregate coverage and
speedup, DRAM-channel utilization, meta-data overhead per useful byte,
and the per-workload split of coverage/throughput (which co-runner pays
for the contention).  Paper-shaped claims checked: temporal streams
survive co-scheduling, shrinking the shared L2 raises off-chip demand,
throttled DRAM never helps, and STMS's lookup/history traffic is real
(nonzero overhead bytes, higher channel utilization than the base
system while it wins coverage).
"""

from __future__ import annotations

from repro.analysis.report import format_percent, format_table
from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    check_monotone,
    simulate_jobs,
)
from repro.sim.metrics import SimResult, per_workload_breakdown
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    make_sim_config,
)
from repro.sim.session import SimSession

#: Default contention mixes (components cycle over the core count).
DEFAULT_MIXES = (
    "mix:oltp-db2+dss-db2",
    "mix:web-apache+sci-em3d",
    "mix:oltp-db2+web-zeus",
)

#: Shared-L2 capacity factors relative to the scale preset.
L2_FACTORS = (0.5, 1.0, 2.0)
#: DRAM peak-bandwidth factors (swept at the default L2 point).
DRAM_FACTORS = (0.5,)

_KINDS = (PrefetcherKind.BASELINE, PrefetcherKind.STMS)


def _points(scale) -> "list[tuple[str, tuple, tuple]]":
    """(label, cmp_overrides, dram_overrides) machine sweep points."""
    base = make_sim_config(scale)
    l2_base = base.cmp.l2_size_bytes
    bw_base = base.dram.peak_bandwidth_gbps
    points = [
        (
            f"l2x{factor:g}",
            (("l2_size_bytes", int(l2_base * factor)),),
            (),
        )
        for factor in L2_FACTORS
    ]
    points.extend(
        (
            f"dramx{factor:g}",
            (),
            (("peak_bandwidth_gbps", bw_base * factor),),
        )
        for factor in DRAM_FACTORS
    )
    return points


def _off_chip_fraction(result: SimResult) -> float:
    """Off-chip read misses per measured record (L2-pressure proxy)."""
    coverage = result.coverage
    reads = coverage.temporal_eligible + coverage.stride_covered
    if result.measured_records <= 0:
        return 0.0
    return reads / result.measured_records


def _sum_throughput(result: SimResult) -> float:
    """Sum of per-core records/cycle — the co-run throughput metric."""
    assert result.core_measured_records is not None
    return sum(
        result.core_throughput(core)
        for core in range(len(result.core_measured_records))
    )


def run(
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
    workloads: "tuple[str, ...] | None" = None,
    runner: "ExperimentRunner | None" = None,
    session: "SimSession | None" = None,
) -> ExperimentResult:
    """Regenerate the mix-contention sweep (``workloads`` = mix specs)."""
    mixes = workloads if workloads is not None else DEFAULT_MIXES
    points = _points(scale)

    jobs = [
        SimJob(
            mix,
            kind,
            scale=scale,
            cores=cores,
            seed=seed,
            cmp_overrides=cmp_overrides,
            dram_overrides=dram_overrides,
            tag=(mix, label, kind),
        )
        for mix in mixes
        for label, cmp_overrides, dram_overrides in points
        for kind in _KINDS
    ]
    results = simulate_jobs(jobs, runner, session)
    by_tag: "dict[tuple, SimResult]" = {
        job.tag: result for job, result in zip(jobs, results)
    }

    rows = []
    data: "dict[str, dict]" = {}
    for mix in mixes:
        data[mix] = {}
        for label, _, _ in points:
            baseline = by_tag[(mix, label, PrefetcherKind.BASELINE)]
            stms = by_tag[(mix, label, PrefetcherKind.STMS)]
            point_data: "dict[str, dict]" = {}
            for kind, result in (
                ("baseline", baseline),
                ("stms", stms),
            ):
                point_data[kind] = {
                    "coverage": result.coverage.coverage,
                    "off_chip_fraction": _off_chip_fraction(result),
                    "throughput": _sum_throughput(result),
                    "dram_utilization": result.dram_utilization,
                    "overhead_per_useful_byte": (
                        result.overhead_per_useful_byte
                    ),
                    "per_workload": {
                        name: {
                            "cores": piece.cores,
                            "coverage": piece.coverage.coverage,
                            "throughput": piece.throughput,
                            "mlp": piece.mlp,
                        }
                        for name, piece in sorted(
                            per_workload_breakdown(result).items()
                        )
                    },
                }
            point_data["speedup"] = stms.speedup_over(baseline)
            data[mix][label] = point_data
            rows.append(
                [
                    mix,
                    label,
                    format_percent(stms.coverage.coverage),
                    f"{point_data['speedup']:.3f}x",
                    f"{baseline.dram_utilization:.3f}",
                    f"{stms.dram_utilization:.3f}",
                    f"{stms.overhead_per_useful_byte:.3f}",
                ]
            )

    per_workload_rows = []
    for mix in mixes:
        point = data[mix]["l2x1"]
        for name, piece in point["stms"]["per_workload"].items():
            base_piece = point["baseline"]["per_workload"][name]
            per_workload_rows.append(
                [
                    mix,
                    name,
                    len(piece["cores"]),
                    format_percent(piece["coverage"]),
                    f"{base_piece['throughput']:.4f}",
                    f"{piece['throughput']:.4f}",
                ]
            )

    rendered = "\n\n".join(
        [
            format_table(
                ["mix", "point", "stms cov", "speedup", "base util",
                 "stms util", "overhead/byte"],
                rows,
                title="Mix contention: shared-L2 / DRAM sweep",
            ),
            format_table(
                ["mix", "workload", "cores", "stms cov",
                 "base thpt", "stms thpt"],
                per_workload_rows,
                title="Per-workload split at the default machine point",
            ),
        ]
    )

    checks = _shape_checks(mixes, data)
    return ExperimentResult(
        experiment="mix-contention",
        title="Multiprogrammed mixes under shared-memory contention",
        rendered=rendered,
        data={"mixes": data},
        checks=checks,
    )


def _shape_checks(
    mixes: "tuple[str, ...]", data: "dict[str, dict]"
) -> "list[ShapeCheck]":
    covered = [
        data[mix]["l2x1"]["stms"]["coverage"] for mix in mixes
    ]
    l2_monotone = 0
    for mix in mixes:
        fractions = [
            data[mix][f"l2x{factor:g}"]["baseline"]["off_chip_fraction"]
            for factor in L2_FACTORS
        ]
        if check_monotone(fractions, increasing=False, tolerance=0.005):
            l2_monotone += 1
    throttled_ok = all(
        data[mix]["dramx0.5"]["stms"]["throughput"]
        <= data[mix]["l2x1"]["stms"]["throughput"] * 1.02
        for mix in mixes
    )
    overhead_real = all(
        data[mix]["l2x1"]["stms"]["overhead_per_useful_byte"] > 0.0
        for mix in mixes
    )
    util_up = sum(
        1
        for mix in mixes
        if data[mix]["l2x1"]["stms"]["dram_utilization"]
        >= data[mix]["l2x1"]["baseline"]["dram_utilization"] - 1e-9
    )
    return [
        ShapeCheck(
            claim="Temporal streams survive co-scheduling (STMS covers "
            "misses on every mix)",
            passed=all(value > 0.0 for value in covered),
            detail=f"min coverage = {min(covered):.1%}",
        ),
        ShapeCheck(
            claim="Shrinking the shared L2 raises off-chip demand "
            "pressure (baseline, per mix)",
            passed=l2_monotone == len(mixes),
            detail=f"{l2_monotone}/{len(mixes)} mixes monotone",
        ),
        ShapeCheck(
            claim="Halving DRAM bandwidth never improves co-run "
            "throughput",
            passed=throttled_ok,
        ),
        ShapeCheck(
            claim="STMS meta-data traffic is real: nonzero overhead "
            "bytes and no lower channel utilization than the base "
            "system on most mixes",
            passed=overhead_real and util_up * 2 >= len(mixes),
            detail=f"util >= baseline on {util_up}/{len(mixes)} mixes",
        ),
    ]
