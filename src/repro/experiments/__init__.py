"""Experiment drivers: one module per figure/table of the paper.

Each driver regenerates its figure at a chosen scale preset and attaches
shape checks for the paper's qualitative claims:

========  ==============================================  =================
id        what it reproduces                              entry point
========  ==============================================  =================
fig1L     coverage vs. correlation-table entries          fig1_entries.run
fig1R     prior designs' traffic overheads                fig1_prior_traffic.run
fig4      idealized TMS coverage and speedup              fig4_potential.run
fig5L     coverage vs. history-buffer size                fig5_storage.run_history
fig5R     coverage vs. index-table size                   fig5_storage.run_index
fig6L     streamed-block CDF by stream length             fig6_amortize.run_cdf
fig6R     coverage loss vs. fixed prefetch depth          fig6_amortize.run_depth
fig7      traffic breakdown at 100% vs 12.5% sampling     fig7_traffic.run
fig8      sampling-probability sweep                      fig8_sampling.run
fig9      STMS vs. idealized TMS                          fig9_performance.run
table2    MLP of off-chip reads                           table2_mlp.run
mix-c..   multiprogrammed shared-L2/DRAM contention       mix_contention.run
========  ==============================================  =================
"""

from repro.experiments import (
    fig1_entries,
    fig1_prior_traffic,
    fig4_potential,
    fig5_storage,
    fig6_amortize,
    fig7_traffic,
    fig8_sampling,
    fig9_performance,
    mix_contention,
    table2_mlp,
)
from repro.experiments.common import ExperimentResult, ShapeCheck

#: Registry mapping experiment ids to their entry points.
EXPERIMENTS = {
    "fig1-left": fig1_entries.run,
    "fig1-right": fig1_prior_traffic.run,
    "fig4": fig4_potential.run,
    "fig5-left": fig5_storage.run_history,
    "fig5-right": fig5_storage.run_index,
    "fig6-left": fig6_amortize.run_cdf,
    "fig6-right": fig6_amortize.run_depth,
    "fig7": fig7_traffic.run,
    "fig8": fig8_sampling.run,
    "fig9": fig9_performance.run,
    "table2": table2_mlp.run,
    "mix-contention": mix_contention.run,
}

#: Experiments whose drivers accept the budgeted-sampling options
#: (``budget`` / ``confidence`` / ``ci_width`` / ``sample_seeds``).
SAMPLED_EXPERIMENTS = frozenset({"fig8", "mix-contention"})


def run_experiment(name: str, **options: object) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        entry = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return entry(**options)  # type: ignore[arg-type]


__all__ = [
    "EXPERIMENTS",
    "SAMPLED_EXPERIMENTS",
    "ExperimentResult",
    "ShapeCheck",
    "run_experiment",
]
