"""Offline temporal-stream extraction from miss-address sequences.

Implements the classic repetition analysis of Chilimbi and of the TMS
line of work: a *temporal stream* is a maximal run of misses whose
previous occurrences were also consecutive.  Walking the miss log once
with a last-occurrence map finds every such run in O(n):

* miss ``a`` at position ``i`` continues the current stream when its
  previous occurrence sits exactly one past the previous miss's previous
  occurrence (the two misses repeated *in order*);
* otherwise the current stream ends and (if ``a`` recurred at all) a new
  one starts at ``a``.

The length-weighted distribution of these runs is the paper's Figure 6
(left): the fraction of *streamed blocks* (prefetch opportunities)
contributed by streams of each length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class StreamStatistics:
    """Summary of the streams found in one miss sequence."""

    #: Lengths of every maximal temporal stream (>= 2 misses).
    lengths: np.ndarray
    #: Total misses analyzed.
    total_misses: int

    @property
    def stream_count(self) -> int:
        return int(self.lengths.size)

    @property
    def streamed_blocks(self) -> int:
        """Misses covered by some stream (the prefetchable fraction)."""
        return int(self.lengths.sum())

    @property
    def median_length(self) -> float:
        if self.lengths.size == 0:
            return 0.0
        return float(np.median(self.lengths))

    def weighted_median_length(self) -> float:
        """Stream length at which half the *streamed blocks* lie below.

        The paper's observation "half of the temporal streams in
        commercial workloads are shorter than ten cache blocks" refers to
        this block-weighted view of Figure 6 (left).
        """
        if self.lengths.size == 0:
            return 0.0
        ordered = np.sort(self.lengths)
        cumulative = np.cumsum(ordered)
        half = cumulative[-1] / 2.0
        return float(ordered[np.searchsorted(cumulative, half)])


def extract_streams(
    misses: "list[int] | np.ndarray", max_gap: int = 2
) -> StreamStatistics:
    """Find every maximal temporal stream in one core's miss sequence.

    ``max_gap`` tolerates small insertions on either side of the chain:
    a miss continues the stream when its previous occurrence lies within
    ``max_gap`` positions after the expected one, and up to ``max_gap``
    non-matching misses may interleave before the chain breaks.  This
    mirrors how a stream-following prefetcher behaves — one interleaved
    visit-once miss neither stops the stream engine nor invalidates the
    recorded sequence.
    """
    if max_gap < 0:
        raise ValueError("max_gap must be non-negative")
    sequence = np.asarray(misses, dtype=np.int64)
    last_seen: dict[int, int] = {}
    lengths: list[int] = []
    run = 0
    #: Position in history right after the last chained occurrence.
    expected = -1
    #: Non-matching misses tolerated since the last chain extension.
    slack = 0

    for position in range(sequence.size):
        address = int(sequence[position])
        occurrence = last_seen.get(address, -1)
        chains = (
            occurrence >= 0
            and expected >= 0
            and expected <= occurrence <= expected + max_gap
        )
        if chains:
            run = run + 1 if run > 0 else 2
            expected = occurrence + 1
            slack = 0
        elif run > 0 and slack < max_gap:
            # An insertion (noise) the stream engine would skip over.
            slack += 1
        else:
            if run >= 2:
                lengths.append(run)
            # A recurring address can begin a new stream; a first-time
            # address cannot.
            run = 1 if occurrence >= 0 else 0
            expected = occurrence + 1 if occurrence >= 0 else -1
            slack = 0
        last_seen[address] = position

    if run >= 2:
        lengths.append(run)
    return StreamStatistics(
        lengths=np.asarray(lengths, dtype=np.int64),
        total_misses=int(sequence.size),
    )


def merge_statistics(parts: "list[StreamStatistics]") -> StreamStatistics:
    """Combine per-core stream statistics into one distribution."""
    if not parts:
        return StreamStatistics(np.empty(0, dtype=np.int64), 0)
    return StreamStatistics(
        lengths=np.concatenate([p.lengths for p in parts]),
        total_misses=sum(p.total_misses for p in parts),
    )


def stream_length_cdf(
    statistics: StreamStatistics,
    points: "list[int] | None" = None,
) -> "list[tuple[int, float]]":
    """Cumulative fraction of streamed blocks from streams <= each length.

    Returns ``(length, cumulative_fraction)`` pairs — the series plotted
    in the paper's Figure 6 (left).
    """
    if points is None:
        points = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000]
    lengths = statistics.lengths
    total = lengths.sum()
    if total == 0:
        return [(point, 0.0) for point in points]
    return [
        (point, float(lengths[lengths <= point].sum()) / float(total))
        for point in points
    ]
