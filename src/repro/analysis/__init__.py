"""Offline analyses and reporting: temporal-stream statistics, MLP, and
ASCII rendering of the paper's figures.
"""

from repro.analysis.mlp import measure_mlp, measure_suite_mlp
from repro.analysis.report import (
    bar_chart,
    format_percent,
    format_table,
    grouped_bar_chart,
    series_table,
)
from repro.analysis.stats import (
    CIEstimate,
    bootstrap_ci,
    stratified_estimates,
)
from repro.analysis.streams import (
    StreamStatistics,
    extract_streams,
    stream_length_cdf,
)

__all__ = [
    "CIEstimate",
    "bootstrap_ci",
    "stratified_estimates",
    "measure_mlp",
    "measure_suite_mlp",
    "bar_chart",
    "format_percent",
    "format_table",
    "grouped_bar_chart",
    "series_table",
    "StreamStatistics",
    "extract_streams",
    "stream_length_cdf",
]
