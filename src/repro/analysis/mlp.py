"""Memory-level-parallelism measurement (paper Table 2).

MLP is the average number of outstanding off-chip demand reads while at
least one is outstanding.  The simulator tracks it online (see
:class:`repro.sim.metrics.MlpTracker`); these helpers run the baseline
configuration and collect the per-workload values the paper tabulates.
"""

from __future__ import annotations

from repro.sim.metrics import SimResult
from repro.sim.runner import PrefetcherKind, run_workload


def measure_mlp(
    workload: str,
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
) -> float:
    """Measured MLP of off-chip reads for one workload (stride-only)."""
    result = run_workload(
        workload, PrefetcherKind.BASELINE, scale=scale, cores=cores, seed=seed
    )
    return result.mlp


def measure_suite_mlp(
    workloads: "tuple[str, ...] | list[str]",
    scale: str = "bench",
    cores: int = 4,
    seed: int = 7,
) -> "dict[str, float]":
    """Table 2: MLP per workload, measured on the baseline system."""
    return {
        workload: measure_mlp(workload, scale=scale, cores=cores, seed=seed)
        for workload in workloads
    }


def mlp_from_result(result: SimResult) -> float:
    """Extract the MLP from an existing baseline run."""
    return result.mlp
