"""ASCII rendering of tables and bar charts for experiment output.

The benchmark harness regenerates the paper's figures as text: grouped
bars for the per-workload comparisons (Figs. 4, 7, 9), series tables for
the sweeps (Figs. 5, 6, 8), and plain tables elsewhere.  Keeping the
renderer dependency-free makes every experiment runnable on a headless
machine and its output diffable.
"""

from __future__ import annotations

from typing import Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """Render a ratio as a percent string (0.125 -> '12.5%')."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: "str | None" = None,
) -> str:
    """Monospace table with column widths fit to content."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: "str | None" = None,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max((abs(v) for v in values), default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    parts = []
    if title:
        parts.append(title)
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else int(round(abs(value) / peak * width))
        bar = "#" * length
        parts.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.3f}{unit}"
        )
    return "\n".join(parts)


def grouped_bar_chart(
    labels: Sequence[str],
    series: "dict[str, Sequence[float]]",
    width: int = 40,
    title: "str | None" = None,
    unit: str = "",
) -> str:
    """Several series per label (e.g. ideal vs. off-chip per workload)."""
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} length mismatch")
    peak = max(
        (abs(v) for values in series.values() for v in values), default=0.0
    )
    name_width = max((len(name) for name in series), default=0)
    label_width = max((len(label) for label in labels), default=0)
    parts = []
    if title:
        parts.append(title)
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            length = 0 if peak == 0 else int(round(abs(value) / peak * width))
            prefix = label.ljust(label_width) if j == 0 else " " * label_width
            parts.append(
                f"{prefix} {name.ljust(name_width)} "
                f"|{('#' * length).ljust(width)}| {value:.3f}{unit}"
            )
    return "\n".join(parts)


def series_table(
    x_label: str,
    x_values: Sequence[object],
    series: "dict[str, Sequence[float]]",
    title: "str | None" = None,
) -> str:
    """Sweep output: one row per x value, one column per series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return format_table(headers, rows, title=title)
