"""Bootstrap statistics for budgeted sampled sweeps.

A budgeted sweep (:mod:`repro.sim.sampling`) simulates a stratified
subset of the full cell grid; what it reports per stratum is therefore
an *estimate* of the full-grid mean, and every estimate carries a
percentile-bootstrap confidence interval so the report can never be
mistaken for an exact number.  Resampling is vectorized and seeded:
the same sample and seed always produce the same interval.

``REPRO_BOOTSTRAP_RESAMPLES`` overrides the default resample count
(1000); the knob shares the warn-once misparse behaviour of the other
``REPRO_*`` knobs (:mod:`repro.envknobs`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.envknobs import env_int

_DEFAULT_RESAMPLES = 1000


def bootstrap_resamples() -> int:
    """Resample count from ``REPRO_BOOTSTRAP_RESAMPLES`` (floor 1)."""
    return max(1, env_int("REPRO_BOOTSTRAP_RESAMPLES", _DEFAULT_RESAMPLES))


@dataclass(frozen=True)
class CIEstimate:
    """A sample mean with its bootstrap confidence interval."""

    mean: float
    lo: float
    hi: float
    confidence: float
    n: int

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def brackets(self, value: float) -> bool:
        """True when ``value`` falls inside the interval."""
        return self.lo <= value <= self.hi

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "lo": self.lo,
            "hi": self.hi,
            "confidence": self.confidence,
            "n": self.n,
        }

    def render(self) -> str:
        return f"{self.mean:.3f} [{self.lo:.3f}, {self.hi:.3f}]"


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: "int | None" = None,
    seed: int = 0,
) -> CIEstimate:
    """Percentile-bootstrap CI of the mean of ``values`` (seeded).

    A single-value sample yields a degenerate (zero-width) interval —
    honest about what one cell can and cannot bound.  The interval is
    widened to include the sample mean itself, so ``brackets(mean)``
    always holds.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("bootstrap_ci needs at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return CIEstimate(
            mean=mean, lo=mean, hi=mean, confidence=confidence, n=1
        )
    if resamples is None:
        resamples = bootstrap_resamples()
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, data.size, size=(resamples, data.size))
    means = data[picks].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo = float(np.quantile(means, alpha))
    hi = float(np.quantile(means, 1.0 - alpha))
    return CIEstimate(
        mean=mean,
        lo=min(lo, mean),
        hi=max(hi, mean),
        confidence=confidence,
        n=int(data.size),
    )


def stratified_estimates(
    values_by_stratum: "dict[object, Sequence[float]]",
    confidence: float = 0.95,
    resamples: "int | None" = None,
    seed: int = 0,
) -> "dict[object, CIEstimate]":
    """One :func:`bootstrap_ci` per stratum, deterministically seeded.

    Each stratum's resampling seed is derived from ``seed`` and the
    stratum's *content* (not its position), so an interval does not
    change when unrelated strata are added or removed.
    """
    estimates: "dict[object, CIEstimate]" = {}
    for stratum, values in values_by_stratum.items():
        digest = hashlib.blake2b(
            f"{seed}:{stratum!r}".encode(), digest_size=8
        ).digest()
        estimates[stratum] = bootstrap_ci(
            values,
            confidence=confidence,
            resamples=resamples,
            seed=int.from_bytes(digest, "big"),
        )
    return estimates
