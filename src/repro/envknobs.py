"""Warn-once parsing of numeric ``REPRO_*`` environment knobs.

Several tuning knobs used to swallow a malformed value silently and
fall back to their default (``REPRO_STORE_MAX_MB``,
``REPRO_STORE_TMP_MAX_AGE_S``, the remote-tier timeout/retry/breaker
knobs), while the equivalent misparse of ``REPRO_JOBS`` or
``REPRO_SHARD_MIN_CELLS`` warned.  This module is the shared fix: one
:class:`RuntimeWarning` per knob per process, then the documented
default — a typo'd environment can no longer silently un-cap a store
or reshape the circuit breaker.

An *empty* value is treated as unset (no warning): ``REPRO_X= cmd`` is
a common way to explicitly clear a knob in shell scripts.
"""

from __future__ import annotations

import os
import warnings

#: Knob names that have already warned this process (warn-once state;
#: tests reset it between cases).
_WARNED_ENV_KEYS: "set[str]" = set()


def _warn_once(name: str, raw: str, expected: str) -> None:
    if name in _WARNED_ENV_KEYS:
        return
    _WARNED_ENV_KEYS.add(name)
    warnings.warn(
        f"invalid {name}={raw!r} (expected {expected}); "
        "using the default",
        RuntimeWarning,
        stacklevel=3,
    )


def env_float(name: str, default):
    """``float(os.environ[name])``, or ``default`` when the knob is
    unset/empty; a malformed value warns once and falls back."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        _warn_once(name, raw, "a number")
        return default


def env_int(name: str, default):
    """``int(os.environ[name])``, or ``default`` when the knob is
    unset/empty; a malformed value warns once and falls back."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        _warn_once(name, raw, "an integer")
        return default
