"""Scientific-workload generator (em3d, ocean, moldyn analogues).

Scientific codes iterate: every outer iteration re-executes (almost) the
same computation over the same data, so the entire iteration's miss
sequence is one enormous temporal stream — ~400 K misses for em3d, ~21 K
for ocean, ~81 K for moldyn in the paper's configurations.  Coverage is
therefore *bimodal* in history-buffer size (Fig. 5 left): capture a whole
iteration and nearly every miss is predicted; fall short and the stream
is overwritten before it recurs.

Each workload mixes an irregular traversal body (em3d's graph edges,
moldyn's neighbour lists) with optional strided sweeps (ocean's grid
relaxation) that the baseline stride prefetcher absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import (
    GeneratorContext,
    TraceGenerator,
    emitter_mode,
)
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class ScientificParams:
    """Tunables for one iterative scientific workload."""

    #: Length of the irregular per-iteration miss sequence, in blocks.
    iteration_blocks: int = 20_000
    #: Probability an irregular access depends on the previous one.
    dep_p: float = 0.6
    #: Probability of a small perturbation replacing a block each
    #: iteration (models boundary updates / neighbour-list rebuilds).
    perturb_p: float = 0.002
    #: Strided sweep blocks emitted per iteration (0 = none).
    sweep_blocks: int = 0
    #: Length of one contiguous sweep run.
    sweep_run: int = 128
    #: Mean compute cycles per irregular record.
    work_cycles: float = 120.0
    #: Mean compute cycles per strided-sweep record; ``None`` uses half
    #: the irregular cost.  Grid codes like ocean do most of their
    #: arithmetic inside the (stride-friendly) sweeps, so this is the
    #: knob that sets their memory-stall fraction.
    sweep_work_cycles: "float | None" = None
    write_p: float = 0.3
    hot_blocks: int = 64
    #: Visit-once region (I/O, reductions); small for scientific codes.
    noise_blocks: int = 4096
    #: Probability of a noise access between records.
    noise_p: float = 0.01

    def scaled(self, factor: float) -> "ScientificParams":
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ScientificParams(
            iteration_blocks=max(64, int(self.iteration_blocks * factor)),
            dep_p=self.dep_p,
            perturb_p=self.perturb_p,
            sweep_blocks=int(self.sweep_blocks * factor),
            sweep_run=self.sweep_run,
            work_cycles=self.work_cycles,
            sweep_work_cycles=self.sweep_work_cycles,
            write_p=self.write_p,
            hot_blocks=self.hot_blocks,
            noise_blocks=max(256, int(self.noise_blocks * factor)),
            noise_p=self.noise_p,
        )


class ScientificGenerator(TraceGenerator):
    """Generates iteration-periodic scientific traces."""

    def __init__(self, name: str, params: ScientificParams) -> None:
        self.name = name
        self.params = params

    def generate(
        self, cores: int, records_per_core: int, seed: int
    ) -> Trace:
        if cores <= 0 or records_per_core <= 0:
            raise ValueError("cores and records_per_core must be positive")
        params = self.params
        # Each core owns a partition of the dataset (SPMD decomposition):
        # its iteration sequence is private, so per-core history buffers
        # see clean recurrence, exactly as in the paper's CMP argument.
        context = GeneratorContext(
            seed=seed,
            hot_blocks=params.hot_blocks,
            structure_blocks=max(
                params.iteration_blocks * cores * 2, 1024
            ),
            scan_blocks=max(params.sweep_blocks * cores, 1) + 1024,
            noise_blocks=params.noise_blocks,
        )
        rng = context.rng
        builders = [TraceBuilder() for _ in range(cores)]
        batched = emitter_mode() == "batched"

        for builder in builders:
            iteration = context.alloc_stream(params.iteration_blocks)
            dep_flags = rng.random(params.iteration_blocks) < params.dep_p
            while len(builder) < records_per_core:
                self._emit_iteration(
                    builder, context, iteration, dep_flags, batched
                )
                iteration = self._perturb(context, iteration)

        return self._assemble(
            self.name,
            builders,
            working_set_blocks=context.total_blocks,
            warmup_fraction=self._warmup_fraction(records_per_core),
        )

    def _warmup_fraction(self, records_per_core: int) -> float:
        """Warm at least one full iteration so recurrence is learnable."""
        params = self.params
        per_iteration = params.iteration_blocks + params.sweep_blocks
        if per_iteration <= 0 or records_per_core <= 0:
            return 0.25
        fraction = min(0.5, 1.2 * per_iteration / records_per_core)
        return max(0.1, fraction)

    def _emit_iteration(
        self,
        builder: TraceBuilder,
        context: GeneratorContext,
        iteration: np.ndarray,
        dep_flags: np.ndarray,
        batched: bool = True,
    ) -> None:
        params = self.params
        rng = context.rng
        rng_random = rng.random
        work_mean = params.work_cycles
        write_p = params.write_p
        noise_p = params.noise_p
        blocks_column = builder._blocks
        work_column = builder._work
        dep_column = builder._dep
        write_column = builder._write
        # TraceBuilder.add and _work_cycles inlined; the field draw
        # order matches the unrolled calls exactly.  The batched path
        # pre-draws each block's three uniforms (work, write, noise
        # gate) in one call, plus one more only when the gate fires —
        # the exact scalar budget, so the RNG stream is unchanged.
        if batched:
            for block, dep in zip(iteration.tolist(), dep_flags.tolist()):
                w, wr, gate = rng_random(3).tolist()
                blocks_column.append(block)
                work_column.append(work_mean * (0.5 + w))
                dep_column.append(dep)
                write_column.append(wr < write_p)
                if gate < noise_p:
                    blocks_column.append(context.next_noise())
                    work_column.append(work_mean * (0.5 + rng_random()))
                    dep_column.append(False)
                    write_column.append(False)
        else:
            for block, dep in zip(iteration.tolist(), dep_flags.tolist()):
                blocks_column.append(block)
                work_column.append(work_mean * (0.5 + rng_random()))
                dep_column.append(dep)
                write_column.append(rng_random() < write_p)
                if rng_random() < noise_p:
                    blocks_column.append(context.next_noise())
                    work_column.append(work_mean * (0.5 + rng_random()))
                    dep_column.append(False)
                    write_column.append(False)
        sweep_work = (
            params.sweep_work_cycles
            if params.sweep_work_cycles is not None
            else params.work_cycles * 0.5
        )
        remaining = params.sweep_blocks
        while remaining > 0:
            run = context.next_scan_run(min(params.sweep_run, remaining))
            if batched:
                w, wr = rng_random(2).tolist()
                builder.extend(
                    run,
                    work=sweep_work * (0.5 + w),
                    dep=False,
                    write=wr < params.write_p,
                )
            else:
                builder.extend(
                    run,
                    work=self._work_cycles(rng, sweep_work),
                    dep=False,
                    write=rng.random() < params.write_p,
                )
            remaining -= len(run)

    def _perturb(
        self, context: GeneratorContext, iteration: np.ndarray
    ) -> np.ndarray:
        """Replace a tiny fraction of blocks between iterations."""
        params = self.params
        rng = context.rng
        if params.perturb_p <= 0:
            return iteration
        mask = rng.random(len(iteration)) < params.perturb_p
        count = int(mask.sum())
        if count == 0:
            return iteration
        replacement = context.alloc_stream(count)
        updated = iteration.copy()
        updated[mask] = replacement
        return updated
