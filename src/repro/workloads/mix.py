"""Multiprogrammed workload mixes: heterogeneous per-core co-schedules.

The paper evaluates STMS on a CMP whose meta-data traffic competes with
demand traffic in a *shared* memory system.  Homogeneous runs replicate
one workload across every core; a :class:`MixRecipe` instead assigns a
(possibly different) suite workload to each core — 2x OLTP next to 2x
DSS, a web server beside a scientific code — so shared-L2 capacity and
DRAM bandwidth contention between *unlike* miss streams can be measured.

Semantics follow multiprogramming, not parallel execution:

* every core runs an **independent program instance** with its own
  deterministic RNG stream (derived from the mix seed and the core
  index via ``numpy.random.SeedSequence``), so two cores running the
  same workload share no structures and no addresses;
* per-core address spaces are **disjoint** — each core's blocks are
  offset past every previous core's footprint — so co-runners contend
  for cache capacity and bandwidth without ever aliasing data;
* per-core trace lengths and warm-up fractions follow each component
  workload (iterative codes keep their longer traces), recorded on the
  trace as ``core_workloads`` / ``core_warmup``.

Mixes are addressed by a canonical spec string, ``mix:<w>+<w>+...``
(with an ``NxW`` repeat shorthand), that doubles as the workload name
everywhere a homogeneous name is accepted: :func:`repro.workloads.suite
.generate` dispatches on it, so session/trace recipe keys, the
content-addressed artifact store, and :class:`repro.sim.runner.SimJob`
grids cache mix traces exactly like homogeneous ones.

>>> from repro.workloads.mix import MixRecipe
>>> MixRecipe.parse("mix:2xoltp-db2+2xdss-db2").assign(4)
('oltp-db2', 'oltp-db2', 'dss-db2', 'dss-db2')
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

#: Spec-string prefix marking a multiprogrammed mix.
MIX_PREFIX = "mix:"

#: Named recipes for the paper-motivated contention scenarios.  Each
#: preset cycles over the available cores, so ``mix-oltp-dss`` means
#: "alternate OLTP and DSS cores" at any core count.
MIX_PRESETS: "dict[str, str]" = {
    "mix-oltp-dss": "mix:oltp-db2+dss-db2",
    "mix-web-sci": "mix:web-apache+sci-em3d",
    "mix-commercial": "mix:oltp-db2+web-zeus",
    "mix-hetero": "mix:oltp-db2+web-apache+dss-db2+sci-ocean",
}


def is_mix(name: str) -> bool:
    """True when ``name`` addresses a mix (spec string or preset)."""
    return name.startswith(MIX_PREFIX) or name in MIX_PRESETS


@dataclass(frozen=True)
class MixRecipe:
    """An ordered tuple of component workloads, one per core slot.

    Fewer components than cores cycle round-robin; the canonical spec
    (:attr:`name`) is what cache keys, trace names, and CLI output use,
    so ``mix:2xa+2xb`` and ``mix:a+a+b+b`` address the same artifacts.
    """

    components: "tuple[str, ...]"

    def __post_init__(self) -> None:
        from repro.workloads.suite import get_spec

        if not self.components:
            raise ValueError("a mix needs at least one component workload")
        for component in self.components:
            get_spec(component)  # raises on unknown names

    @classmethod
    def parse(cls, spec: str) -> "MixRecipe":
        """Build a recipe from a spec string or preset name.

        Accepted forms: ``mix:a+b+c``, ``mix:2xa+2xb`` (repeat
        shorthand), or any :data:`MIX_PRESETS` key.
        """
        spec = MIX_PRESETS.get(spec, spec)
        if not spec.startswith(MIX_PREFIX):
            raise ValueError(
                f"not a mix spec {spec!r}; expected '{MIX_PREFIX}...' or "
                f"one of {sorted(MIX_PRESETS)}"
            )
        body = spec[len(MIX_PREFIX):]
        components: "list[str]" = []
        for part in body.split("+"):
            part = part.strip()
            count = 1
            head, sep, tail = part.partition("x")
            if sep and head.isdigit():
                count, part = int(head), tail
            if count <= 0 or not part:
                raise ValueError(f"bad mix component {part!r} in {spec!r}")
            components.extend([part] * count)
        return cls(components=tuple(components))

    @property
    def name(self) -> str:
        """Canonical spec string (run-length form, stable across parses)."""
        parts: "list[list]" = []
        for component in self.components:
            if parts and parts[-1][1] == component:
                parts[-1][0] += 1
            else:
                parts.append([1, component])
        return MIX_PREFIX + "+".join(
            f"{count}x{name}" if count > 1 else name
            for count, name in parts
        )

    def assign(self, cores: int) -> "tuple[str, ...]":
        """Per-core workload assignment (components cycle round-robin)."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        return tuple(
            self.components[core % len(self.components)]
            for core in range(cores)
        )


def core_seed(seed: int, core: int) -> int:
    """Deterministic per-core RNG seed, stable across processes.

    ``SeedSequence`` mixing keeps the per-core streams statistically
    independent even for adjacent mix seeds, and two cores running the
    same workload get different instances (different seeds).
    """
    state = np.random.SeedSequence([seed, core]).generate_state(2)
    return int(state[0]) << 32 | int(state[1])


def generate_mix(
    recipe: "MixRecipe | str",
    scale: object = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
) -> Trace:
    """Generate a multiprogrammed mix trace.

    Each core's component workload is generated as an independent
    single-core instance (own seed, own structures), then relocated
    into a disjoint slice of the physical address space and assembled
    into one multi-core :class:`~repro.workloads.trace.Trace` whose
    name is the recipe's canonical spec.
    """
    from repro.workloads.suite import generate as generate_homogeneous
    from repro.workloads.suite import get_scale

    if isinstance(recipe, str):
        recipe = MixRecipe.parse(recipe)
    preset = get_scale(scale)
    assignment = recipe.assign(cores)

    blocks: "list[np.ndarray]" = []
    work: "list[np.ndarray]" = []
    dep: "list[np.ndarray]" = []
    write: "list[np.ndarray]" = []
    core_warmup: "list[float]" = []
    base = 0
    for core, workload in enumerate(assignment):
        instance = generate_homogeneous(
            workload,
            scale=preset,
            cores=1,
            seed=core_seed(seed, core),
            records_per_core=records_per_core,
        )
        blocks.append(instance.blocks[0] + np.int64(base))
        work.append(instance.work[0])
        dep.append(instance.dep[0])
        write.append(instance.write[0])
        core_warmup.append(instance.warmup_fraction)
        # Generators emit blocks in [0, working_set_blocks); advancing
        # the base by that span keeps per-core address spaces disjoint.
        base += instance.working_set_blocks

    return Trace(
        name=recipe.name,
        blocks=blocks,
        work=work,
        dep=dep,
        write=write,
        working_set_blocks=base,
        warmup_fraction=max(core_warmup) if core_warmup else 0.25,
        core_workloads=list(assignment),
        core_warmup=core_warmup,
    )
