"""Multiprogrammed workload mixes: heterogeneous per-core co-schedules.

The paper evaluates STMS on a CMP whose meta-data traffic competes with
demand traffic in a *shared* memory system.  Homogeneous runs replicate
one workload across every core; a :class:`MixRecipe` instead assigns a
(possibly different) suite workload to each core — 2x OLTP next to 2x
DSS, a web server beside a scientific code — so shared-L2 capacity and
DRAM bandwidth contention between *unlike* miss streams can be measured.

Semantics follow multiprogramming, not parallel execution:

* every core runs an **independent program instance** with its own
  deterministic RNG stream (derived from the mix seed and the core
  index via ``numpy.random.SeedSequence``), so two cores running the
  same workload share no structures and no addresses;
* per-core address spaces are **disjoint** — each core's blocks are
  offset past every previous core's footprint — so co-runners contend
  for cache capacity and bandwidth without ever aliasing data;
* per-core trace lengths and warm-up fractions follow each component
  workload (iterative codes keep their longer traces), recorded on the
  trace as ``core_workloads`` / ``core_warmup``.

Mixes are addressed by a canonical spec string, ``mix:<w>+<w>+...``
(with an ``NxW`` repeat shorthand), that doubles as the workload name
everywhere a homogeneous name is accepted: :func:`repro.workloads.suite
.generate` dispatches on it, so session/trace recipe keys, the
content-addressed artifact store, and :class:`repro.sim.runner.SimJob`
grids cache mix traces exactly like homogeneous ones.

Asymmetric scheduling
=====================

Each component may carry scheduling decorations beyond its workload:

``w*S`` (slices)
    ``S`` independent, time-sliced instances of ``w`` share the core:
    their records interleave round-robin, so each instance observes the
    other's interference on the core's clock — two half-speed OLTP
    programs on one core next to a full-speed DSS core.
``w@R`` (rate)
    The core runs at rate weight ``R``: its compute cycles are
    stretched by ``1/R`` at generation time (``@0.5`` = half-speed
    core), modeling duty-cycled or frequency-scaled co-runners.
``w!low`` (priority class)
    The core's demand fetches issue at *low* DRAM priority, queueing
    behind every other core's demand traffic — the bandwidth-
    arbitration half of asymmetric scheduling
    (:func:`repro.sim.timing.demand_priority`).

Decorations compose (``mix:oltp-db2*2+web-apache@0.5!low``) and
canonicalize — ``@1``, ``*1``, and ``!high`` are the defaults and are
dropped, rates print in shortest ``%g`` form — so every spelling of a
recipe addresses one store entry.  ``+`` is reserved as the component
separator, so rates must be spelled without a plus sign (``@5e-1`` is
fine, ``@5e+1`` is two broken components).

>>> from repro.workloads.mix import MixRecipe
>>> MixRecipe.parse("mix:2xoltp-db2+2xdss-db2").assign(4)
('oltp-db2', 'oltp-db2', 'dss-db2', 'dss-db2')
>>> MixRecipe.parse("mix:oltp-db2*2+web-apache@0.50!low").name
'mix:oltp-db2*2+web-apache@0.5!low'
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

#: Spec-string prefix marking a multiprogrammed mix.
MIX_PREFIX = "mix:"

#: Decoration markers recognized after a component's workload name.
_DECORATION = re.compile(r"([*@!])([^*@!]*)")

#: Accepted priority-class spellings -> canonical class.
_PRIORITY_ALIASES = {
    "high": "high",
    "hi": "high",
    "low": "low",
    "lo": "low",
}

#: Named recipes for the paper-motivated contention scenarios.  Each
#: preset cycles over the available cores, so ``mix-oltp-dss`` means
#: "alternate OLTP and DSS cores" at any core count.
MIX_PRESETS: "dict[str, str]" = {
    "mix-oltp-dss": "mix:oltp-db2+dss-db2",
    "mix-web-sci": "mix:web-apache+sci-em3d",
    "mix-commercial": "mix:oltp-db2+web-zeus",
    "mix-hetero": "mix:oltp-db2+web-apache+dss-db2+sci-ocean",
}


def is_mix(name: str) -> bool:
    """True when ``name`` addresses a mix (spec string or preset)."""
    return name.startswith(MIX_PREFIX) or name in MIX_PRESETS


#: Sanity bounds on the asymmetric decorations; outside them the spec
#: is rejected at parse time (a rate of 1e-9 would overflow the float32
#: work column, thousands of slices would be a trace-size bomb).
MAX_SLICES = 8
MIN_RATE = 1.0 / 64.0
MAX_RATE = 64.0


@dataclass(frozen=True)
class MixComponent:
    """One core slot's schedule: workload + asymmetric decorations."""

    workload: str
    #: Time-sliced independent instances sharing the core.
    slices: int = 1
    #: Rate weight; compute cycles are stretched by ``1/rate``.
    rate: float = 1.0
    #: DRAM demand-priority class ("high" | "low").
    priority: str = "high"

    def __post_init__(self) -> None:
        if self.slices < 1 or self.slices > MAX_SLICES:
            raise ValueError(
                f"slices must be in [1, {MAX_SLICES}], got {self.slices}"
            )
        if not (MIN_RATE <= self.rate <= MAX_RATE):
            raise ValueError(
                f"rate must be in [{MIN_RATE:g}, {MAX_RATE:g}], "
                f"got {self.rate!r}"
            )
        if self.priority not in ("high", "low"):
            raise ValueError(
                f"priority must be 'high' or 'low', got {self.priority!r}"
            )

    @classmethod
    def parse(cls, text: str) -> "MixComponent":
        """Parse one component spec: ``workload[*S][@rate][!priority]``.

        Decorations may appear in any order, each at most once; defaults
        (``*1``, ``@1``, ``!high``) are legal spellings that canonicalize
        away.  Malformed decorations raise :class:`ValueError` naming
        the offending token.
        """
        head = re.match(r"[^*@!]+", text)
        if head is None:
            raise ValueError(f"mix component {text!r} has no workload name")
        workload = head.group(0)
        rest = text[head.end():]
        consumed = 0
        slices, rate, priority = 1, 1.0, "high"
        seen: "set[str]" = set()
        for marker, value in _DECORATION.findall(rest):
            consumed += len(marker) + len(value)
            if marker in seen:
                raise ValueError(
                    f"duplicate {marker!r} decoration in mix component "
                    f"{text!r}"
                )
            seen.add(marker)
            if marker == "*":
                if not value.isdigit():
                    raise ValueError(
                        f"bad slice count {value!r} in mix component "
                        f"{text!r} (want an integer, e.g. 'oltp-db2*2')"
                    )
                slices = int(value)
            elif marker == "@":
                try:
                    rate = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad rate {value!r} in mix component {text!r} "
                        "(want a number, e.g. 'web-apache@0.5')"
                    ) from None
                # Snap to the canonical ``%g`` spelling so the
                # canonical string and the stored float agree —
                # otherwise two rates that print identically could
                # share a recipe name yet generate different traces.
                # (nan/inf round-trip unchanged and are rejected by the
                # range check below.)
                rate = float(f"{rate:g}")
            else:
                priority = _PRIORITY_ALIASES.get(value.lower())
                if priority is None:
                    raise ValueError(
                        f"bad priority class {value!r} in mix component "
                        f"{text!r} (want 'high' or 'low')"
                    )
        if consumed != len(rest):
            raise ValueError(
                f"malformed decorations {rest!r} in mix component {text!r}"
            )
        return cls(
            workload=workload, slices=slices, rate=rate, priority=priority
        )

    @property
    def canonical(self) -> str:
        """Shortest spelling: defaults dropped, rate in ``%g`` form."""
        text = self.workload
        if self.slices != 1:
            text += f"*{self.slices}"
        if self.rate != 1.0:
            text += f"@{self.rate:g}"
        if self.priority != "high":
            text += f"!{self.priority}"
        return text

    @property
    def is_symmetric(self) -> bool:
        """True when every decoration is at its default."""
        return (
            self.slices == 1
            and self.rate == 1.0
            and self.priority == "high"
        )


@dataclass(frozen=True)
class MixRecipe:
    """An ordered tuple of component specs, one per core slot.

    Fewer components than cores cycle round-robin; the canonical spec
    (:attr:`name`) is what cache keys, trace names, and CLI output use,
    so ``mix:2xa+2xb`` and ``mix:a+a+b+b`` address the same artifacts —
    and so do ``mix:a@0.50`` and ``mix:a@.5``.  Components are stored
    as canonical spec strings (plain workload names for symmetric
    slots); :attr:`parsed` yields the structured view.
    """

    components: "tuple[str, ...]"

    def __post_init__(self) -> None:
        from repro.workloads.suite import get_spec

        if not self.components:
            raise ValueError("a mix needs at least one component workload")
        canonical = []
        for component in self.components:
            parsed = MixComponent.parse(component)
            get_spec(parsed.workload)  # raises on unknown names
            canonical.append(parsed.canonical)
        object.__setattr__(self, "components", tuple(canonical))

    @classmethod
    def parse(cls, spec: str) -> "MixRecipe":
        """Build a recipe from a spec string or preset name.

        Accepted forms: ``mix:a+b+c``, ``mix:2xa+2xb`` (repeat
        shorthand), asymmetric decorations per component
        (``mix:a*2+b@0.5!low``), or any :data:`MIX_PRESETS` key.
        """
        spec = MIX_PRESETS.get(spec, spec)
        if not spec.startswith(MIX_PREFIX):
            raise ValueError(
                f"not a mix spec {spec!r}; expected '{MIX_PREFIX}...' or "
                f"one of {sorted(MIX_PRESETS)}"
            )
        body = spec[len(MIX_PREFIX):]
        components: "list[str]" = []
        for part in body.split("+"):
            part = part.strip()
            count = 1
            head, sep, tail = part.partition("x")
            if sep and head.isdigit():
                count, part = int(head), tail
            if count <= 0 or not part:
                raise ValueError(f"bad mix component {part!r} in {spec!r}")
            components.extend([part] * count)
        return cls(components=tuple(components))

    @property
    def name(self) -> str:
        """Canonical spec string (run-length form, stable across parses)."""
        parts: "list[list]" = []
        for component in self.components:
            if parts and parts[-1][1] == component:
                parts[-1][0] += 1
            else:
                parts.append([1, component])
        return MIX_PREFIX + "+".join(
            f"{count}x{name}" if count > 1 else name
            for count, name in parts
        )

    @property
    def parsed(self) -> "tuple[MixComponent, ...]":
        """Structured view of the (already canonical) components."""
        return tuple(
            MixComponent.parse(component) for component in self.components
        )

    def assign(self, cores: int) -> "tuple[str, ...]":
        """Per-core component-spec assignment (cycling round-robin)."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        return tuple(
            self.components[core % len(self.components)]
            for core in range(cores)
        )

    def assign_components(self, cores: int) -> "tuple[MixComponent, ...]":
        """Per-core structured assignment (cycling round-robin)."""
        parsed = self.parsed
        if cores <= 0:
            raise ValueError("cores must be positive")
        return tuple(
            parsed[core % len(parsed)] for core in range(cores)
        )


def core_seed(seed: int, core: int) -> int:
    """Deterministic per-core RNG seed, stable across processes.

    ``SeedSequence`` mixing keeps the per-core streams statistically
    independent even for adjacent mix seeds, and two cores running the
    same workload get different instances (different seeds).
    """
    state = np.random.SeedSequence([seed, core]).generate_state(2)
    return int(state[0]) << 32 | int(state[1])


def slice_seed(seed: int, core: int, slot: int) -> int:
    """Seed of time-sliced instance ``slot`` on ``core``.

    Slot 0 reuses :func:`core_seed` so a single-instance core generates
    the exact trace it did before slicing existed (fingerprint-stable);
    further slots mix the slot index into the seed sequence.
    """
    if slot == 0:
        return core_seed(seed, core)
    state = np.random.SeedSequence([seed, core, slot]).generate_state(2)
    return int(state[0]) << 32 | int(state[1])


def _interleave_round_robin(
    columns: "list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Merge per-instance trace columns record-by-record, round-robin.

    Models time-slicing at record granularity: the core runs one record
    of each live instance in turn, so every instance's compute and
    stalls dilate the others' wall-clock.  Instances that run out simply
    drop from the rotation (unequal lengths are legal).
    """
    if len(columns) == 1:
        return columns[0]
    # Record k of instance i sorts at key k * n + i; a stable argsort of
    # the concatenated keys is the round-robin permutation.
    n = len(columns)
    keys = np.concatenate([
        np.arange(len(blocks), dtype=np.int64) * n + i
        for i, (blocks, _, _, _) in enumerate(columns)
    ])
    order = np.argsort(keys, kind="stable")
    return (
        np.concatenate([c[0] for c in columns])[order],
        np.concatenate([c[1] for c in columns])[order],
        np.concatenate([c[2] for c in columns])[order],
        np.concatenate([c[3] for c in columns])[order],
    )


def generate_mix(
    recipe: "MixRecipe | str",
    scale: object = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
) -> Trace:
    """Generate a multiprogrammed mix trace.

    Each core's component is generated as ``slices`` independent
    single-core instances (own seeds, own structures), each relocated
    into a disjoint slice of the physical address space, interleaved
    round-robin onto the core, rate-scaled, and assembled into one
    multi-core :class:`~repro.workloads.trace.Trace` whose name is the
    recipe's canonical spec.  Symmetric recipes produce bit-identical
    traces to the pre-asymmetric generator (fingerprint-stable).
    """
    from repro.workloads.suite import generate as generate_homogeneous
    from repro.workloads.suite import get_scale

    if isinstance(recipe, str):
        recipe = MixRecipe.parse(recipe)
    preset = get_scale(scale)
    component_assignment = recipe.assign_components(cores)
    assignment = tuple(
        component.canonical for component in component_assignment
    )

    blocks: "list[np.ndarray]" = []
    work: "list[np.ndarray]" = []
    dep: "list[np.ndarray]" = []
    write: "list[np.ndarray]" = []
    core_warmup: "list[float]" = []
    core_rates: "list[float]" = []
    core_priorities: "list[str]" = []
    base = 0
    for core, component in enumerate(component_assignment):
        instances = []
        warmups = []
        for slot in range(component.slices):
            instance = generate_homogeneous(
                component.workload,
                scale=preset,
                cores=1,
                seed=slice_seed(seed, core, slot),
                records_per_core=records_per_core,
            )
            instances.append((
                instance.blocks[0] + np.int64(base),
                instance.work[0],
                instance.dep[0],
                instance.write[0],
            ))
            warmups.append(instance.warmup_fraction)
            # Generators emit blocks in [0, working_set_blocks);
            # advancing the base by that span keeps every instance's
            # address space disjoint (across cores *and* slices).
            base += instance.working_set_blocks
        core_blocks, core_work, core_dep, core_write = (
            _interleave_round_robin(instances)
        )
        if component.rate != 1.0:
            # A core at rate r runs its compute 1/r slower; float32
            # division keeps the column dtype (and /1.0 would be exact,
            # but the branch keeps symmetric traces byte-identical).
            core_work = core_work / np.float32(component.rate)
        blocks.append(core_blocks)
        work.append(core_work)
        dep.append(core_dep)
        write.append(core_write)
        core_warmup.append(max(warmups))
        core_rates.append(component.rate)
        core_priorities.append(component.priority)

    symmetric = all(
        component.is_symmetric for component in component_assignment
    )
    return Trace(
        name=recipe.name,
        blocks=blocks,
        work=work,
        dep=dep,
        write=write,
        working_set_blocks=base,
        warmup_fraction=max(core_warmup) if core_warmup else 0.25,
        core_workloads=list(assignment),
        core_warmup=core_warmup,
        # Default-rate/-priority recipes omit the metadata entirely so
        # pre-existing symmetric traces keep their fingerprints.
        core_rates=None if symmetric else core_rates,
        core_priorities=None if symmetric else core_priorities,
    )
