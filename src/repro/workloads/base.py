"""Building blocks shared by all synthetic trace generators.

The generators compose four kinds of activity, mirroring how the paper
characterizes its workloads:

* **stream** — a traversal of a recurring data structure (the temporal
  streams an address-correlating prefetcher learns),
* **scan** — a contiguous sweep a stride prefetcher covers,
* **noise** — visit-once references (hash probes, buffer churn) that no
  prefetcher can learn,
* **hot** — a small cache-resident set that generates on-chip hits.

:class:`StreamPool` owns the recurring structures and their Zipf-skewed
popularity; the skew produces the smooth reuse-distance spectrum behind
the paper's Figure 5 (left).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace, TraceBuilder


def emitter_mode() -> str:
    """The active trace-emitter implementation.

    ``REPRO_TRACE_EMITTER=batched`` (the default) pre-draws each motif
    record's uniforms in one small ``rng.random(k)`` call sized to
    exactly the draws the scalar loop would make; ``scalar`` keeps the
    original one-call-per-draw loops.  Both modes consume the identical
    RNG stream (a contiguous ``random(k)`` uses the same bit budget as
    ``k`` scalar draws), so traces — and their fingerprints — are
    bit-identical; ``tests/workloads/test_emitter_roundtrip.py`` holds
    the guarantee.
    """
    mode = os.environ.get("REPRO_TRACE_EMITTER", "batched")
    if mode not in ("batched", "scalar"):
        raise ValueError(
            f"unknown trace emitter {mode!r} (batched/scalar)"
        )
    return mode


@dataclass(frozen=True)
class ActivityMix:
    """Relative weights of the four activity kinds."""

    stream: float = 1.0
    scan: float = 0.0
    noise: float = 0.0
    hot: float = 0.0

    def __post_init__(self) -> None:
        weights = (self.stream, self.scan, self.noise, self.hot)
        if any(w < 0 for w in weights):
            raise ValueError("activity weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one activity weight must be positive")

    def probabilities(self) -> np.ndarray:
        weights = np.array(
            [self.stream, self.scan, self.noise, self.hot], dtype=float
        )
        return weights / weights.sum()


#: Activity indices matching :meth:`ActivityMix.probabilities` order.
ACTIVITY_STREAM, ACTIVITY_SCAN, ACTIVITY_NOISE, ACTIVITY_HOT = range(4)


class GeneratorContext:
    """Seeded randomness plus the block-address layout of one workload.

    The application's physical space is carved into disjoint regions so
    activities never alias each other accidentally:

    ``[0, hot) | [hot, hot+structures) | scans | noise``
    """

    def __init__(
        self,
        seed: int,
        hot_blocks: int,
        structure_blocks: int,
        scan_blocks: int,
        noise_blocks: int,
    ) -> None:
        for label, count in (
            ("hot", hot_blocks),
            ("structure", structure_blocks),
            ("scan", scan_blocks),
            ("noise", noise_blocks),
        ):
            if count < 0:
                raise ValueError(f"{label}_blocks must be non-negative")
        self.rng = np.random.default_rng(seed)
        self.hot_base = 0
        self.hot_blocks = hot_blocks
        self.structure_base = hot_blocks
        self.structure_blocks = structure_blocks
        self.scan_base = self.structure_base + structure_blocks
        self.scan_blocks = scan_blocks
        self.noise_base = self.scan_base + scan_blocks
        self.noise_blocks = noise_blocks
        self._noise_cursor = 0
        # Visit-once noise must look like hash probes / buffer churn:
        # unique addresses with no spatial pattern a stride prefetcher
        # could learn.  A multiplicative permutation over the largest
        # power of two inside the region gives scattered, non-repeating
        # draws.
        if noise_blocks > 0:
            self._noise_span = 1 << (noise_blocks.bit_length() - 1)
        else:
            self._noise_span = 0
        self._scan_cursor = 0

    @property
    def total_blocks(self) -> int:
        return self.noise_base + self.noise_blocks

    def alloc_stream(self, length: int) -> np.ndarray:
        """Draw ``length`` distinct pseudo-random structure blocks.

        Addresses are scattered (pointer-chasing layout) so the baseline
        stride prefetcher cannot cover them.
        """
        if length <= 0:
            raise ValueError("stream length must be positive")
        if self.structure_blocks == 0:
            raise ValueError("no structure region configured")
        # Over-draw and deduplicate to guarantee distinct addresses while
        # preserving draw order.
        draw = self.rng.integers(
            0, self.structure_blocks, size=2 * length + 8
        )
        _, first_positions = np.unique(draw, return_index=True)
        ordered = draw[np.sort(first_positions)][:length]
        return (ordered + self.structure_base).astype(np.int64)

    def next_noise(self) -> int:
        """A scattered visit-once address (wraps after region exhaustion).

        The mapping from cursor to offset is a composition of bijections
        (odd multiply, xor-shift, odd multiply) over the power-of-two
        span, so draws never repeat within a pass *and* consecutive draws
        have no affine structure a stride detector could latch onto.
        """
        if self.noise_blocks == 0:
            raise ValueError("no noise region configured")
        mask = self._noise_span - 1
        mixed = (self._noise_cursor * 0x9E3779B1) & mask
        mixed ^= mixed >> 7
        mixed = (mixed * 0x85EBCA6B) & mask
        self._noise_cursor = (self._noise_cursor + 1) % self._noise_span
        return self.noise_base + mixed

    def next_scan_run(self, length: int) -> np.ndarray:
        """A contiguous run of scan addresses (stride-prefetcher food)."""
        if self.scan_blocks == 0:
            raise ValueError("no scan region configured")
        if length <= 0:
            raise ValueError("scan run length must be positive")
        start = self._scan_cursor
        offsets = (start + np.arange(length)) % self.scan_blocks
        self._scan_cursor = (start + length) % self.scan_blocks
        return (offsets + self.scan_base).astype(np.int64)

    def hot_block(self) -> int:
        """A block from the small cache-resident hot set."""
        if self.hot_blocks == 0:
            raise ValueError("no hot region configured")
        return int(self.rng.integers(0, self.hot_blocks)) + self.hot_base


class StreamPool:
    """Recurring temporal streams with Zipf-skewed popularity.

    Stream lengths are log-normal: the paper observes stream lengths from
    two to hundreds of misses with roughly half of commercial *streamed
    blocks* coming from streams of ten or more (Fig. 6 left).  A log-normal
    body with a moderate sigma reproduces that weighted distribution.
    """

    def __init__(
        self,
        context: GeneratorContext,
        count: int,
        median_length: float,
        sigma: float,
        zipf_alpha: float,
        max_length: int = 4096,
    ) -> None:
        if count <= 0:
            raise ValueError("stream count must be positive")
        if median_length < 2:
            raise ValueError("median_length must be at least 2")
        if max_length < 2:
            raise ValueError("max_length must be at least 2")
        rng = context.rng
        lengths = np.exp(
            rng.normal(np.log(median_length), sigma, size=count)
        )
        lengths = np.clip(np.round(lengths), 2, max_length).astype(int)
        self.streams = [context.alloc_stream(int(n)) for n in lengths]
        ranks = np.arange(1, count + 1, dtype=float)
        weights = ranks ** (-zipf_alpha)
        self._cumulative = np.cumsum(weights / weights.sum())
        self._rng = rng

    def __len__(self) -> int:
        return len(self.streams)

    def pick(self) -> np.ndarray:
        """Sample one stream according to the popularity distribution."""
        u = self._rng.random()
        index = int(np.searchsorted(self._cumulative, u))
        return self.streams[min(index, len(self.streams) - 1)]

    def total_blocks(self) -> int:
        return int(sum(len(s) for s in self.streams))

    def length_distribution(self) -> np.ndarray:
        return np.array([len(s) for s in self.streams])


class TraceGenerator(ABC):
    """Interface all workload generators implement."""

    #: Human-readable workload name (overridden per instance).
    name: str = "workload"

    @abstractmethod
    def generate(
        self, cores: int, records_per_core: int, seed: int
    ) -> Trace:
        """Produce a trace with ``records_per_core`` accesses per core."""

    @staticmethod
    def _work_cycles(rng: np.random.Generator, mean: float) -> float:
        """Jittered compute-cycle cost for one record (+-50 %)."""
        return mean * (0.5 + rng.random())

    @staticmethod
    def _assemble(
        name: str,
        builders: list[TraceBuilder],
        working_set_blocks: int,
        warmup_fraction: float,
    ) -> Trace:
        columns = [b.freeze() for b in builders]
        return Trace(
            name=name,
            blocks=[c[0] for c in columns],
            work=[c[1] for c in columns],
            dep=[c[2] for c in columns],
            write=[c[3] for c in columns],
            working_set_blocks=working_set_blocks,
            warmup_fraction=warmup_fraction,
        )
