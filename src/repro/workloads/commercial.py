"""Commercial-workload generator (OLTP and web serving).

Transaction-processing and web workloads are dominated by pointer-chasing
traversals of shared structures (B-trees, connection tables, buffer-pool
chains).  Every transaction re-walks structures other transactions also
walk, so miss sequences recur — but interleaved with visit-once noise,
occasional early exits, and stride-friendly sequential bursts.  Those
four ingredients set the ceiling on temporal-prefetch coverage (the paper
measures 40–60 % ideal coverage for OLTP/Web) and produce the smooth
coverage-vs-history-size curves of Figure 5.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import (
    ACTIVITY_NOISE,
    ACTIVITY_SCAN,
    ACTIVITY_STREAM,
    ActivityMix,
    GeneratorContext,
    StreamPool,
    TraceGenerator,
    emitter_mode,
)
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class CommercialParams:
    """Tunables for one commercial workload variant.

    The per-workload values live in :mod:`repro.workloads.suite`; they are
    calibrated so the measured coverage / MLP / speedup land in the
    paper's reported bands.
    """

    #: Number of recurring structures shared by all cores.
    pool_streams: int = 400
    #: Median temporal-stream length in blocks (log-normal body).
    stream_median: float = 8.0
    #: Log-normal sigma; larger values fatten the long-stream tail.  The
    #: paper's Figure 6 (left) shows half of commercial *streamed blocks*
    #: coming from streams of ten or more misses, with a tail into the
    #: hundreds; a sigma around 1.5 reproduces that weighted CDF.
    stream_sigma: float = 1.5
    #: Popularity skew across structures (1.0 = classic Zipf).
    zipf_alpha: float = 0.85
    #: Activity mix of the miss stream.
    mix: ActivityMix = ActivityMix(stream=0.62, scan=0.10, noise=0.20,
                                   hot=0.08)
    #: Probability a traversal exits early (per block emitted).
    truncate_p: float = 0.01
    #: Probability of injecting a visit-once access inside a traversal.
    interleave_noise_p: float = 0.04
    #: Probability a stream access is on the dependence chain.
    stream_dep_p: float = 0.85
    #: Probability a noise access is on the dependence chain.
    noise_dep_p: float = 0.55
    #: Mean compute cycles per record (calibrates memory-stall fraction).
    work_cycles: float = 42.0
    #: Fraction of accesses that are stores.
    write_p: float = 0.18
    #: Cache-resident hot set size in blocks.
    hot_blocks: int = 256
    #: Visit-once region size in blocks.
    noise_blocks: int = 300_000
    #: Sequential-scan region size in blocks.
    scan_blocks: int = 100_000
    #: Structure region size in blocks (bounds total stream footprint).
    structure_blocks: int = 220_000
    #: Length of one sequential burst in blocks.
    scan_run: int = 48
    #: Length of one hot-set burst.
    hot_run: int = 6

    def scaled(self, factor: float) -> "CommercialParams":
        """Shrink/grow the footprint-defining parameters together."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return CommercialParams(
            pool_streams=max(8, int(self.pool_streams * factor)),
            stream_median=self.stream_median,
            stream_sigma=self.stream_sigma,
            zipf_alpha=self.zipf_alpha,
            mix=self.mix,
            truncate_p=self.truncate_p,
            interleave_noise_p=self.interleave_noise_p,
            stream_dep_p=self.stream_dep_p,
            noise_dep_p=self.noise_dep_p,
            work_cycles=self.work_cycles,
            write_p=self.write_p,
            hot_blocks=self.hot_blocks,
            noise_blocks=max(1024, int(self.noise_blocks * factor)),
            scan_blocks=max(1024, int(self.scan_blocks * factor)),
            structure_blocks=max(1024, int(self.structure_blocks * factor)),
            scan_run=self.scan_run,
            hot_run=self.hot_run,
        )


class CommercialGenerator(TraceGenerator):
    """Generates OLTP/Web-style traces from :class:`CommercialParams`."""

    def __init__(self, name: str, params: CommercialParams) -> None:
        self.name = name
        self.params = params

    def generate(
        self, cores: int, records_per_core: int, seed: int
    ) -> Trace:
        if cores <= 0 or records_per_core <= 0:
            raise ValueError("cores and records_per_core must be positive")
        params = self.params
        context = GeneratorContext(
            seed=seed,
            hot_blocks=params.hot_blocks,
            structure_blocks=params.structure_blocks,
            scan_blocks=params.scan_blocks,
            noise_blocks=params.noise_blocks,
        )
        pool = StreamPool(
            context,
            count=params.pool_streams,
            median_length=params.stream_median,
            sigma=params.stream_sigma,
            zipf_alpha=params.zipf_alpha,
        )
        rng = context.rng
        rng_random = rng.random
        activity_p = params.mix.probabilities()
        # bisect over the normalized CDF consumes exactly one uniform
        # draw and picks exactly the index ``rng.choice(4, p=...)``
        # would — same trace, ~15x cheaper per activity draw.
        cdf = np.asarray(activity_p, dtype=np.float64).cumsum()
        cdf /= cdf[-1]
        activity_cdf = cdf.tolist()
        builders = [TraceBuilder() for _ in range(cores)]
        batched = emitter_mode() == "batched"

        for builder in builders:
            while len(builder) < records_per_core:
                activity = bisect_right(activity_cdf, rng_random())
                if activity == ACTIVITY_STREAM:
                    self._emit_traversal(builder, pool, context, batched)
                elif activity == ACTIVITY_SCAN:
                    self._emit_scan(builder, context)
                elif activity == ACTIVITY_NOISE:
                    self._emit_noise(builder, context, batched)
                else:
                    self._emit_hot(builder, context, batched)

        return self._assemble(
            self.name,
            builders,
            working_set_blocks=context.total_blocks,
            warmup_fraction=0.3,
        )

    def _emit_traversal(
        self,
        builder: TraceBuilder,
        pool: StreamPool,
        context: GeneratorContext,
        batched: bool = True,
    ) -> None:
        """Walk one recurring structure, with early exits and noise.

        ``TraceBuilder.add`` and ``_work_cycles`` are inlined — this
        loop emits the bulk of every commercial trace — with the draw
        order of the record fields kept exactly as the unrolled calls
        made them.

        The batched path pre-draws each record's uniforms in one
        ``rng.random(k)`` call sized to exactly what the scalar loop
        consumes: five per plain block (work, dep, write, interleave
        gate, truncate gate), plus two more (noise dep, truncate gate)
        when the interleave gate fires and the fifth draw becomes the
        injected record's work jitter.  Never over-draws, so the RNG
        stream — and the trace — is bit-identical to the scalar loop.
        """
        params = self.params
        rng_random = context.rng.random
        work_mean = params.work_cycles
        stream_dep_p = params.stream_dep_p
        write_p = params.write_p
        interleave_noise_p = params.interleave_noise_p
        noise_dep_p = params.noise_dep_p
        truncate_p = params.truncate_p
        blocks = builder._blocks
        work = builder._work
        dep = builder._dep
        write = builder._write
        if batched:
            for block in pool.pick():
                w, d, wr, gate, last = rng_random(5).tolist()
                blocks.append(int(block))
                work.append(work_mean * (0.5 + w))
                dep.append(d < stream_dep_p)
                write.append(wr < write_p)
                if gate < interleave_noise_p:
                    blocks.append(context.next_noise())
                    work.append(work_mean * (0.5 + last))
                    nd, t = rng_random(2).tolist()
                    dep.append(nd < noise_dep_p)
                    write.append(False)
                    if t < truncate_p:
                        break
                elif last < truncate_p:
                    break
            return
        for block in pool.pick():
            blocks.append(int(block))
            work.append(work_mean * (0.5 + rng_random()))
            dep.append(rng_random() < stream_dep_p)
            write.append(rng_random() < write_p)
            if rng_random() < interleave_noise_p:
                blocks.append(context.next_noise())
                work.append(work_mean * (0.5 + rng_random()))
                dep.append(rng_random() < noise_dep_p)
                write.append(False)
            if rng_random() < truncate_p:
                break

    def _emit_scan(
        self, builder: TraceBuilder, context: GeneratorContext
    ) -> None:
        params = self.params
        rng = context.rng
        run = context.next_scan_run(params.scan_run)
        builder.extend(
            run,
            work=self._work_cycles(rng, params.work_cycles * 0.5),
            dep=False,
            write=False,
        )

    def _emit_noise(
        self,
        builder: TraceBuilder,
        context: GeneratorContext,
        batched: bool = True,
    ) -> None:
        params = self.params
        rng = context.rng
        if batched:
            w, d, wr = rng.random(3).tolist()
            builder.add(
                context.next_noise(),
                work=params.work_cycles * (0.5 + w),
                dep=d < params.noise_dep_p,
                write=wr < params.write_p,
            )
            return
        builder.add(
            context.next_noise(),
            work=self._work_cycles(rng, params.work_cycles),
            dep=rng.random() < params.noise_dep_p,
            write=rng.random() < params.write_p,
        )

    def _emit_hot(
        self,
        builder: TraceBuilder,
        context: GeneratorContext,
        batched: bool = True,
    ) -> None:
        # The hot-block draw (``rng.integers``) interleaves with the
        # uniform draws, so only the per-record uniform pair batches.
        params = self.params
        rng_random = context.rng.random
        hot_mean = params.work_cycles * 0.3
        write_p = params.write_p
        blocks = builder._blocks
        work = builder._work
        dep = builder._dep
        write = builder._write
        if batched:
            for _ in range(params.hot_run):
                blocks.append(context.hot_block())
                w, wr = rng_random(2).tolist()
                work.append(hot_mean * (0.5 + w))
                dep.append(False)
                write.append(wr < write_p)
            return
        for _ in range(params.hot_run):
            blocks.append(context.hot_block())
            work.append(hot_mean * (0.5 + rng_random()))
            dep.append(False)
            write.append(rng_random() < write_p)
