"""Decision-support (TPC-H style) generator.

DSS queries stream over fact tables once: the paper finds temporal
streaming ineffective for them "because they exhibit non-repetitive
access sequences where data is visited only once throughout execution".
The generator therefore emits mostly visit-once scans (partly covered by
the baseline stride prefetcher) and hash-probe noise, with only a small
recurring component from dimension-table and index traversals.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.workloads.base import (
    ACTIVITY_NOISE,
    ACTIVITY_SCAN,
    ACTIVITY_STREAM,
    ActivityMix,
    GeneratorContext,
    StreamPool,
    TraceGenerator,
    emitter_mode,
)
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class DssParams:
    """Tunables for a DSS query trace."""

    #: Few recurring structures (dimension tables / indexes).
    pool_streams: int = 40
    stream_median: float = 6.0
    stream_sigma: float = 0.8
    zipf_alpha: float = 0.8
    #: Scans dominate; probes (noise) are frequent; recurring part small.
    mix: ActivityMix = ActivityMix(stream=0.08, scan=0.54, noise=0.32,
                                   hot=0.06)
    truncate_p: float = 0.02
    stream_dep_p: float = 0.7
    #: Hash-join probes are largely independent -> MLP ~1.6 (Table 2).
    noise_dep_p: float = 0.75
    #: Per-record compute must keep the offered bandwidth of the
    #: scan-dominated miss stream below channel capacity, as on the
    #: paper's full-size system.
    work_cycles: float = 110.0
    write_p: float = 0.08
    hot_blocks: int = 192
    noise_blocks: int = 400_000
    scan_blocks: int = 500_000
    structure_blocks: int = 30_000
    scan_run: int = 96
    hot_run: int = 4

    def scaled(self, factor: float) -> "DssParams":
        if factor <= 0:
            raise ValueError("factor must be positive")
        return DssParams(
            pool_streams=max(4, int(self.pool_streams * factor)),
            stream_median=self.stream_median,
            stream_sigma=self.stream_sigma,
            zipf_alpha=self.zipf_alpha,
            mix=self.mix,
            truncate_p=self.truncate_p,
            stream_dep_p=self.stream_dep_p,
            noise_dep_p=self.noise_dep_p,
            work_cycles=self.work_cycles,
            write_p=self.write_p,
            hot_blocks=self.hot_blocks,
            noise_blocks=max(1024, int(self.noise_blocks * factor)),
            scan_blocks=max(1024, int(self.scan_blocks * factor)),
            structure_blocks=max(512, int(self.structure_blocks * factor)),
            scan_run=self.scan_run,
            hot_run=self.hot_run,
        )


class DssGenerator(TraceGenerator):
    """Generates scan-dominated decision-support traces."""

    def __init__(self, name: str, params: DssParams) -> None:
        self.name = name
        self.params = params

    def generate(
        self, cores: int, records_per_core: int, seed: int
    ) -> Trace:
        if cores <= 0 or records_per_core <= 0:
            raise ValueError("cores and records_per_core must be positive")
        params = self.params
        context = GeneratorContext(
            seed=seed,
            hot_blocks=params.hot_blocks,
            structure_blocks=params.structure_blocks,
            scan_blocks=params.scan_blocks,
            noise_blocks=params.noise_blocks,
        )
        pool = StreamPool(
            context,
            count=params.pool_streams,
            median_length=params.stream_median,
            sigma=params.stream_sigma,
            zipf_alpha=params.zipf_alpha,
        )
        rng = context.rng
        rng_random = rng.random
        activity_p = params.mix.probabilities()
        # bisect over the normalized CDF consumes exactly one uniform
        # draw and picks exactly the index ``rng.choice(4, p=...)``
        # would — same trace, ~15x cheaper per activity draw.
        cdf = np.asarray(activity_p, dtype=np.float64).cumsum()
        cdf /= cdf[-1]
        activity_cdf = cdf.tolist()
        builders = [TraceBuilder() for _ in range(cores)]
        batched = emitter_mode() == "batched"

        for builder in builders:
            while len(builder) < records_per_core:
                activity = bisect_right(activity_cdf, rng_random())
                if activity == ACTIVITY_STREAM:
                    self._emit_traversal(builder, pool, context, batched)
                elif activity == ACTIVITY_SCAN:
                    run = context.next_scan_run(params.scan_run)
                    builder.extend(
                        run,
                        work=self._work_cycles(rng, params.work_cycles * 0.4),
                        dep=False,
                        write=False,
                    )
                elif activity == ACTIVITY_NOISE:
                    if batched:
                        w, d, wr = rng.random(3).tolist()
                        builder.add(
                            context.next_noise(),
                            work=params.work_cycles * (0.5 + w),
                            dep=d < params.noise_dep_p,
                            write=wr < params.write_p,
                        )
                    else:
                        builder.add(
                            context.next_noise(),
                            work=self._work_cycles(rng, params.work_cycles),
                            dep=rng.random() < params.noise_dep_p,
                            write=rng.random() < params.write_p,
                        )
                else:
                    for _ in range(params.hot_run):
                        builder.add(
                            context.hot_block(),
                            work=self._work_cycles(
                                rng, params.work_cycles * 0.3
                            ),
                            dep=False,
                            write=False,
                        )

        return self._assemble(
            self.name,
            builders,
            working_set_blocks=context.total_blocks,
            warmup_fraction=0.25,
        )

    def _emit_traversal(
        self,
        builder: TraceBuilder,
        pool: StreamPool,
        context: GeneratorContext,
        batched: bool = True,
    ) -> None:
        # TraceBuilder.add and _work_cycles inlined; the field draw
        # order matches the unrolled calls exactly.  The batched path
        # pre-draws each block's four uniforms (work, dep, write,
        # truncate gate) in one call — the exact per-record budget, so
        # the RNG stream matches the scalar loop bit-for-bit.
        params = self.params
        rng_random = context.rng.random
        work_mean = params.work_cycles
        stream_dep_p = params.stream_dep_p
        write_p = params.write_p
        truncate_p = params.truncate_p
        blocks = builder._blocks
        work = builder._work
        dep = builder._dep
        write = builder._write
        if batched:
            for block in pool.pick():
                w, d, wr, t = rng_random(4).tolist()
                blocks.append(int(block))
                work.append(work_mean * (0.5 + w))
                dep.append(d < stream_dep_p)
                write.append(wr < write_p)
                if t < truncate_p:
                    break
            return
        for block in pool.pick():
            blocks.append(int(block))
            work.append(work_mean * (0.5 + rng_random()))
            dep.append(rng_random() < stream_dep_p)
            write.append(rng_random() < write_p)
            if rng_random() < truncate_p:
                break
