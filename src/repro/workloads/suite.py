"""Registry of the paper's eight evaluation workloads, scaled.

Table 1 of the paper lists Apache and Zeus (SPECweb99), DB2 and Oracle
(TPC-C), a TPC-H DSS query on DB2, and em3d / moldyn / ocean.  Each entry
here pairs a generator with calibration targets taken from the paper
(Table 2 MLP, Figure 4 coverage/speedup bands) so tests and EXPERIMENTS.md
can compare measured behaviour against the published shape.

Everything is scaled down from server size by a named *scale preset*;
presets shrink trace length, footprint, cache size, and meta-data
capacity together so the capacity ratios that drive the results survive.
The load-bearing ratio is stream-pool footprint to L2 capacity: the
recurring structures must comfortably exceed the cache (as the paper's
multi-gigabyte working sets exceed 8 MB), otherwise temporal streams
would be cache-resident and never produce off-chip misses to predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.workloads.base import ActivityMix, TraceGenerator
from repro.workloads.commercial import CommercialGenerator, CommercialParams
from repro.workloads.dss import DssGenerator, DssParams
from repro.workloads.scientific import ScientificGenerator, ScientificParams
from repro.workloads.trace import Trace

Params = Union[CommercialParams, DssParams, ScientificParams]


@dataclass(frozen=True)
class ScalePreset:
    """One consistent down-scaling of the paper's configuration."""

    name: str
    #: Trace records generated per core.
    records_per_core: int
    #: Multiplier applied to workload footprint parameters.
    footprint: float
    #: Multiplier applied to cache capacities (L1, L2).
    cache_scale: float
    #: Default per-core history-buffer capacity, in entries.
    history_entries: int
    #: Default shared index-table bucket count.
    index_buckets: int


SCALES: dict[str, ScalePreset] = {
    # Unit tests: seconds-fast, still exhibits recurrence (L2 = 64 KB).
    "test": ScalePreset("test", 6_000, 0.06, 1 / 128, 8_192, 1_024),
    # Examples / demos (L2 = 256 KB).
    "demo": ScalePreset("demo", 20_000, 0.12, 1 / 32, 16_384, 1_024),
    # Benchmarks: the default for figure regeneration (L2 = 256 KB).
    "bench": ScalePreset("bench", 40_000, 0.25, 1 / 32, 32_768, 2_048),
    # Largest preset; EXPERIMENTS.md numbers use this.
    "full": ScalePreset("full", 80_000, 0.375, 1 / 32, 65_536, 4_096),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One paper workload: generator recipe plus published reference bands."""

    name: str
    category: str
    display: str
    base_params: Params
    make: Callable[[str, Params], TraceGenerator]
    #: Extra footprint multiplier relative to the preset (scientific
    #: iteration lengths scale differently from commercial working sets).
    footprint_bias: float = 1.0
    #: Extra trace-length multiplier (iterative codes need several full
    #: iterations regardless of preset).
    records_bias: float = 1.0
    #: Published MLP of off-chip reads (paper Table 2).
    paper_mlp: float = 1.0
    #: Approximate ideal-TMS coverage from Figure 4 (left).
    paper_ideal_coverage: float = 0.5
    #: Approximate ideal-TMS speedup from Figure 4 (right).
    paper_ideal_speedup: float = 1.1

    def generator(self, scale: ScalePreset) -> TraceGenerator:
        factor = scale.footprint * self.footprint_bias
        return self.make(self.name, self.base_params.scaled(factor))

    def records(self, scale: ScalePreset) -> int:
        return max(1, int(scale.records_per_core * self.records_bias))


def _commercial(name: str, params: Params) -> TraceGenerator:
    assert isinstance(params, CommercialParams)
    return CommercialGenerator(name, params)


def _dss(name: str, params: Params) -> TraceGenerator:
    assert isinstance(params, DssParams)
    return DssGenerator(name, params)


def _scientific(name: str, params: Params) -> TraceGenerator:
    assert isinstance(params, ScientificParams)
    return ScientificGenerator(name, params)


WORKLOADS: dict[str, WorkloadSpec] = {
    "web-apache": WorkloadSpec(
        name="web-apache",
        category="web",
        display="Web Apache",
        base_params=CommercialParams(
            pool_streams=8_000,
            stream_median=8.0,
            stream_sigma=1.5,
            zipf_alpha=0.95,
            mix=ActivityMix(stream=0.62, scan=0.08, noise=0.22, hot=0.08),
            stream_dep_p=0.62,
            noise_dep_p=0.5,
            work_cycles=115.0,
        ),
        make=_commercial,
        paper_mlp=1.5,
        paper_ideal_coverage=0.55,
        paper_ideal_speedup=1.12,
    ),
    "web-zeus": WorkloadSpec(
        name="web-zeus",
        category="web",
        display="Web Zeus",
        base_params=CommercialParams(
            pool_streams=7_000,
            stream_median=9.0,
            stream_sigma=1.55,
            zipf_alpha=1.0,
            mix=ActivityMix(stream=0.66, scan=0.07, noise=0.19, hot=0.08),
            stream_dep_p=0.62,
            noise_dep_p=0.5,
            work_cycles=105.0,
        ),
        make=_commercial,
        paper_mlp=1.5,
        paper_ideal_coverage=0.6,
        paper_ideal_speedup=1.15,
    ),
    "oltp-db2": WorkloadSpec(
        name="oltp-db2",
        category="oltp",
        display="OLTP DB2",
        base_params=CommercialParams(
            pool_streams=9_000,
            stream_median=7.0,
            stream_sigma=1.45,
            zipf_alpha=0.9,
            mix=ActivityMix(stream=0.58, scan=0.10, noise=0.24, hot=0.08),
            stream_dep_p=0.85,
            noise_dep_p=0.6,
            work_cycles=140.0,
        ),
        make=_commercial,
        paper_mlp=1.3,
        paper_ideal_coverage=0.5,
        paper_ideal_speedup=1.08,
    ),
    "oltp-oracle": WorkloadSpec(
        name="oltp-oracle",
        category="oltp",
        display="OLTP Oracle",
        base_params=CommercialParams(
            pool_streams=10_000,
            stream_median=7.0,
            stream_sigma=1.5,
            zipf_alpha=0.85,
            mix=ActivityMix(stream=0.50, scan=0.08, noise=0.24, hot=0.18),
            stream_dep_p=0.85,
            noise_dep_p=0.6,
            work_cycles=175.0,
        ),
        make=_commercial,
        paper_mlp=1.3,
        paper_ideal_coverage=0.45,
        paper_ideal_speedup=1.05,
    ),
    "dss-db2": WorkloadSpec(
        name="dss-db2",
        category="dss",
        display="DSS DB2",
        base_params=DssParams(pool_streams=800),
        make=_dss,
        paper_mlp=1.6,
        paper_ideal_coverage=0.2,
        paper_ideal_speedup=1.01,
    ),
    "sci-em3d": WorkloadSpec(
        name="sci-em3d",
        category="sci",
        display="Sci em3d",
        base_params=ScientificParams(
            iteration_blocks=64_000,
            dep_p=0.32,
            perturb_p=0.0005,
            sweep_blocks=0,
            work_cycles=70.0,
            noise_p=0.005,
        ),
        make=_scientific,
        records_bias=1.5,
        paper_mlp=1.7,
        paper_ideal_coverage=0.95,
        paper_ideal_speedup=1.8,
    ),
    "sci-moldyn": WorkloadSpec(
        name="sci-moldyn",
        category="sci",
        display="Sci moldyn",
        base_params=ScientificParams(
            iteration_blocks=28_000,
            dep_p=0.95,
            perturb_p=0.002,
            sweep_blocks=3_000,
            work_cycles=520.0,
            noise_p=0.01,
        ),
        make=_scientific,
        paper_mlp=1.0,
        paper_ideal_coverage=0.85,
        paper_ideal_speedup=1.18,
    ),
    "sci-ocean": WorkloadSpec(
        name="sci-ocean",
        category="sci",
        display="Sci ocean",
        base_params=ScientificParams(
            iteration_blocks=26_000,
            dep_p=0.68,
            perturb_p=0.001,
            sweep_blocks=16_000,
            work_cycles=60.0,
            sweep_work_cycles=1_500.0,
            noise_p=0.01,
        ),
        make=_scientific,
        paper_mlp=1.2,
        paper_ideal_coverage=0.75,
        paper_ideal_speedup=1.12,
    ),
}

#: Canonical bar order used by the paper's figures.
FIGURE_ORDER = (
    "web-apache",
    "web-zeus",
    "oltp-db2",
    "oltp-oracle",
    "dss-db2",
    "sci-em3d",
    "sci-moldyn",
    "sci-ocean",
)


def workload_names() -> tuple[str, ...]:
    """All workload names in figure order."""
    return FIGURE_ORDER


def get_spec(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def get_scale(scale: "str | ScalePreset") -> ScalePreset:
    if isinstance(scale, ScalePreset):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def generate(
    name: str,
    scale: "str | ScalePreset" = "bench",
    cores: int = 4,
    seed: int = 7,
    records_per_core: "int | None" = None,
) -> Trace:
    """Generate one suite workload (or ``mix:...`` recipe) at a preset."""
    # Late import: repro.workloads.mix composes this module's specs.
    from repro.workloads.mix import generate_mix, is_mix

    if is_mix(name):
        return generate_mix(
            name,
            scale=scale,
            cores=cores,
            seed=seed,
            records_per_core=records_per_core,
        )
    spec = get_spec(name)
    preset = get_scale(scale)
    records = (
        records_per_core
        if records_per_core is not None
        else spec.records(preset)
    )
    generator = spec.generator(preset)
    return generator.generate(cores=cores, records_per_core=records, seed=seed)
