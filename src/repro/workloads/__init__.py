"""Synthetic workload suite standing in for the paper's trace inputs.

The paper drives its evaluation with full-system traces of commercial
servers (TPC-C on Oracle and DB2, SPECweb99 on Apache and Zeus, TPC-H
queries) and scientific codes (em3d, ocean, moldyn).  Those traces cannot
be redistributed, so this subpackage synthesizes per-core memory-access
traces that match the *statistics that drive temporal prefetching*:

* recurring temporal streams with the paper's heavy-tailed length
  distribution (half of commercial streamed blocks from streams >= ~10),
* a spectrum of reuse distances (commercial) vs. iteration-periodic reuse
  (scientific),
* visit-once scan behaviour for DSS,
* dependence structure yielding the paper's Table 2 MLP values.
"""

from repro.workloads.base import (
    ActivityMix,
    GeneratorContext,
    StreamPool,
    TraceGenerator,
)
from repro.workloads.commercial import CommercialGenerator, CommercialParams
from repro.workloads.dss import DssGenerator, DssParams
from repro.workloads.mix import (
    MIX_PRESETS,
    MixRecipe,
    generate_mix,
    is_mix,
)
from repro.workloads.scientific import ScientificGenerator, ScientificParams
from repro.workloads.suite import (
    WORKLOADS,
    WorkloadSpec,
    generate,
    workload_names,
)
from repro.workloads.trace import Trace, TraceStats

__all__ = [
    "ActivityMix",
    "GeneratorContext",
    "StreamPool",
    "TraceGenerator",
    "CommercialGenerator",
    "CommercialParams",
    "DssGenerator",
    "DssParams",
    "MIX_PRESETS",
    "MixRecipe",
    "generate_mix",
    "is_mix",
    "ScientificGenerator",
    "ScientificParams",
    "WORKLOADS",
    "WorkloadSpec",
    "generate",
    "workload_names",
    "Trace",
    "TraceStats",
]
