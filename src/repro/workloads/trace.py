"""Trace container: per-core memory-access streams.

A :class:`Trace` stores, for each core, four parallel numpy arrays:

``blocks``
    Physical block numbers accessed (L1-level demand references; the
    simulated hierarchy does its own filtering).
``work``
    Compute cycles the core spends *before* issuing each access.  This
    aggregates instruction execution and L1-resident activity between the
    interesting references so the timing model doesn't simulate them
    individually.
``dep``
    True when the access is on the program's critical dependence chain
    (e.g. a pointer dereference feeding the next address): a dependent
    off-chip miss stalls the core until the data arrives, an independent
    one overlaps.  Memory-level parallelism emerges from this structure.
``write``
    True for stores (dirty fills, write-back traffic).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TraceStats:
    """Summary statistics of a trace (for reports and sanity tests)."""

    records: int
    cores: int
    distinct_blocks: int
    dependent_fraction: float
    write_fraction: float
    mean_work: float


@dataclass
class Trace:
    """Per-core access streams plus generator metadata."""

    name: str
    blocks: list[np.ndarray] = field(default_factory=list)
    work: list[np.ndarray] = field(default_factory=list)
    dep: list[np.ndarray] = field(default_factory=list)
    write: list[np.ndarray] = field(default_factory=list)
    #: Number of distinct application blocks the generator drew from.
    working_set_blocks: int = 0
    #: Fraction of records the engine should treat as warm-up (not
    #: measured), so predictors and caches start from realistic state.
    warmup_fraction: float = 0.25
    #: Per-core workload identity for multiprogrammed mixes (None for a
    #: homogeneous trace: every core runs ``name``).
    core_workloads: "list[str] | None" = None
    #: Per-core warm-up fractions for mixes whose component workloads
    #: warm differently (None: ``warmup_fraction`` applies to all cores).
    core_warmup: "list[float] | None" = None
    #: Per-core rate weights of asymmetric mixes (None: every core runs
    #: at full rate).  The rate is already baked into the ``work``
    #: columns at generation time (a core at rate ``r`` has its compute
    #: stretched by ``1/r``); the list is carried for reporting.
    core_rates: "list[float] | None" = None
    #: Per-core DRAM demand-priority classes ("high"/"low"; None: every
    #: core issues demand fetches at the normal high priority).  The
    #: engines read this to arbitrate the shared channel.
    core_priorities: "list[str] | None" = None

    def __post_init__(self) -> None:
        lengths = {len(self.blocks), len(self.work), len(self.dep),
                   len(self.write)}
        if len(lengths) != 1:
            raise ValueError("per-core column lists have mismatched lengths")
        for core in range(len(self.blocks)):
            n = len(self.blocks[core])
            if not (len(self.work[core]) == len(self.dep[core])
                    == len(self.write[core]) == n):
                raise ValueError(f"core {core}: column arrays differ in size")
        for label, per_core in (
            ("core_workloads", self.core_workloads),
            ("core_warmup", self.core_warmup),
            ("core_rates", self.core_rates),
            ("core_priorities", self.core_priorities),
        ):
            if per_core is not None and len(per_core) != len(self.blocks):
                raise ValueError(f"{label} must list one entry per core")

    @property
    def cores(self) -> int:
        return len(self.blocks)

    @property
    def records(self) -> int:
        return sum(len(b) for b in self.blocks)

    def core_records(self, core: int) -> int:
        return len(self.blocks[core])

    def warmup_records(self, core: int) -> int:
        """Number of leading records on ``core`` that are warm-up only."""
        fraction = (
            self.core_warmup[core]
            if self.core_warmup is not None
            else self.warmup_fraction
        )
        return int(len(self.blocks[core]) * fraction)

    def workload_of(self, core: int) -> str:
        """The workload running on ``core`` (the trace name if uniform)."""
        if self.core_workloads is not None:
            return self.core_workloads[core]
        return self.name

    def core_rate_of(self, core: int) -> float:
        """Rate weight of ``core`` (1.0 unless an asymmetric mix set it)."""
        if self.core_rates is not None:
            return self.core_rates[core]
        return 1.0

    def core_priority_of(self, core: int) -> "str | None":
        """DRAM demand-priority class of ``core`` (None = default high)."""
        if self.core_priorities is not None:
            return self.core_priorities[core]
        return None

    def stats(self) -> TraceStats:
        """Compute summary statistics across all cores."""
        if self.records == 0:
            return TraceStats(0, self.cores, 0, 0.0, 0.0, 0.0)
        all_blocks = np.concatenate(self.blocks)
        all_dep = np.concatenate(self.dep)
        all_write = np.concatenate(self.write)
        all_work = np.concatenate(self.work)
        return TraceStats(
            records=self.records,
            cores=self.cores,
            distinct_blocks=int(np.unique(all_blocks).size),
            dependent_fraction=float(all_dep.mean()),
            write_fraction=float(all_write.mean()),
            mean_work=float(all_work.mean()),
        )

    def sliced(self, max_records_per_core: int) -> "Trace":
        """Return a truncated copy (used to shrink traces for tests)."""
        if max_records_per_core <= 0:
            raise ValueError("max_records_per_core must be positive")
        return Trace(
            name=self.name,
            blocks=[b[:max_records_per_core] for b in self.blocks],
            work=[w[:max_records_per_core] for w in self.work],
            dep=[d[:max_records_per_core] for d in self.dep],
            write=[w[:max_records_per_core] for w in self.write],
            working_set_blocks=self.working_set_blocks,
            warmup_fraction=self.warmup_fraction,
            core_workloads=(
                list(self.core_workloads)
                if self.core_workloads is not None
                else None
            ),
            core_warmup=(
                list(self.core_warmup)
                if self.core_warmup is not None
                else None
            ),
            core_rates=(
                list(self.core_rates)
                if self.core_rates is not None
                else None
            ),
            core_priorities=(
                list(self.core_priorities)
                if self.core_priorities is not None
                else None
            ),
        )

    def export_meta(self) -> "tuple[tuple[str, object], ...]":
        """Scalar and per-core metadata as a picklable tuple.

        The shared-memory trace plane ships this beside the raw column
        buffers; :meth:`from_buffers` is the inverse.  Column arrays are
        deliberately absent — they travel out-of-band (zero-copy).
        """
        def _frozen(values):
            return None if values is None else tuple(values)

        return (
            ("name", self.name),
            ("working_set_blocks", self.working_set_blocks),
            ("warmup_fraction", self.warmup_fraction),
            ("core_workloads", _frozen(self.core_workloads)),
            ("core_warmup", _frozen(self.core_warmup)),
            ("core_rates", _frozen(self.core_rates)),
            ("core_priorities", _frozen(self.core_priorities)),
        )

    @classmethod
    def from_buffers(
        cls,
        meta: "tuple[tuple[str, object], ...]",
        blocks: "list[np.ndarray]",
        work: "list[np.ndarray]",
        dep: "list[np.ndarray]",
        write: "list[np.ndarray]",
    ) -> "Trace":
        """Rebuild a trace around externally-owned column buffers.

        ``meta`` is :meth:`export_meta`'s output; the column arrays may
        be views into a shared-memory segment (the caller keeps the
        backing mapping alive — the plane pins the segment handle on
        the returned instance).
        """
        fields_ = dict(meta)

        def _thawed(values):
            return None if values is None else list(values)

        return cls(
            name=fields_["name"],
            blocks=list(blocks),
            work=list(work),
            dep=list(dep),
            write=list(write),
            working_set_blocks=fields_["working_set_blocks"],
            warmup_fraction=fields_["warmup_fraction"],
            core_workloads=_thawed(fields_["core_workloads"]),
            core_warmup=_thawed(fields_["core_warmup"]),
            core_rates=_thawed(fields_["core_rates"]),
            core_priorities=_thawed(fields_["core_priorities"]),
        )

    def save(self, path: str) -> None:
        """Persist the trace as an ``.npz`` archive.

        Uncompressed: trace columns deflate poorly (random block
        numbers), and the compressor dominated cold-store runs.
        :meth:`load` reads both formats, so stores written before this
        change stay valid.
        """
        payload: dict[str, np.ndarray] = {
            "meta_name": np.array([self.name]),
            "meta_working_set": np.array([self.working_set_blocks]),
            "meta_warmup": np.array([self.warmup_fraction]),
            "meta_cores": np.array([self.cores]),
        }
        if self.core_workloads is not None:
            payload["meta_core_workloads"] = np.array(self.core_workloads)
        if self.core_warmup is not None:
            payload["meta_core_warmup"] = np.array(
                self.core_warmup, dtype=np.float64
            )
        if self.core_rates is not None:
            payload["meta_core_rates"] = np.array(
                self.core_rates, dtype=np.float64
            )
        if self.core_priorities is not None:
            payload["meta_core_priorities"] = np.array(
                self.core_priorities
            )
        for core in range(self.cores):
            payload[f"blocks_{core}"] = self.blocks[core]
            payload[f"work_{core}"] = self.work[core]
            payload[f"dep_{core}"] = self.dep[core]
            payload[f"write_{core}"] = self.write[core]
        with open(path, "wb") as handle:
            np.savez(handle, **payload)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with open(path, "rb") as handle:
            data = np.load(io.BytesIO(handle.read()), allow_pickle=False)
        cores = int(data["meta_cores"][0])
        files = set(data.files)
        core_workloads = (
            [str(w) for w in data["meta_core_workloads"]]
            if "meta_core_workloads" in files
            else None
        )
        core_warmup = (
            [float(f) for f in data["meta_core_warmup"]]
            if "meta_core_warmup" in files
            else None
        )
        core_rates = (
            [float(f) for f in data["meta_core_rates"]]
            if "meta_core_rates" in files
            else None
        )
        core_priorities = (
            [str(p) for p in data["meta_core_priorities"]]
            if "meta_core_priorities" in files
            else None
        )
        return cls(
            name=str(data["meta_name"][0]),
            blocks=[data[f"blocks_{c}"] for c in range(cores)],
            work=[data[f"work_{c}"] for c in range(cores)],
            dep=[data[f"dep_{c}"] for c in range(cores)],
            write=[data[f"write_{c}"] for c in range(cores)],
            working_set_blocks=int(data["meta_working_set"][0]),
            warmup_fraction=float(data["meta_warmup"][0]),
            core_workloads=core_workloads,
            core_warmup=core_warmup,
            core_rates=core_rates,
            core_priorities=core_priorities,
        )


class TraceBuilder:
    """Accumulates one core's records in Python lists, then freezes them.

    Generators append record-by-record; :meth:`freeze` converts to the
    compact numpy representation stored inside :class:`Trace`.
    """

    def __init__(self) -> None:
        self._blocks: list[int] = []
        self._work: list[float] = []
        self._dep: list[bool] = []
        self._write: list[bool] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def add(
        self,
        block: int,
        work: float,
        dep: bool = True,
        write: bool = False,
    ) -> None:
        """Append one access record."""
        self._blocks.append(block)
        self._work.append(work)
        self._dep.append(dep)
        self._write.append(write)

    def extend(
        self,
        blocks: "np.ndarray | list[int]",
        work: float,
        dep: bool = True,
        write: bool = False,
    ) -> None:
        """Append a run of accesses sharing the same attributes."""
        n = len(blocks)
        self._blocks.extend(int(b) for b in blocks)
        self._work.extend([work] * n)
        self._dep.extend([dep] * n)
        self._write.extend([write] * n)

    def freeze(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return the four column arrays."""
        return (
            np.asarray(self._blocks, dtype=np.int64),
            np.asarray(self._work, dtype=np.float32),
            np.asarray(self._dep, dtype=bool),
            np.asarray(self._write, dtype=bool),
        )
