"""Reproduction of *Practical Off-chip Meta-data for Temporal Memory
Streaming* (Wenisch et al., HPCA 2009).

The package implements Sampled Temporal Memory Streaming (STMS) — an
address-correlating prefetcher whose meta-data lives in main memory —
together with the full substrate the paper evaluates it on: a four-core
CMP memory hierarchy, a bandwidth-regulated DRAM channel, the base
system's stride prefetcher, idealized/fixed-depth/Markov baselines, and
a synthetic workload suite standing in for the paper's server traces.

Quickstart::

    from repro import PrefetcherKind, run_workload

    result = run_workload("oltp-db2", PrefetcherKind.STMS, scale="demo")
    print(f"coverage = {result.coverage.coverage:.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.core import StmsConfig, StmsPrefetcher
from repro.memory import CmpConfig, DramConfig
from repro.prefetchers import (
    FixedDepthPrefetcher,
    IdealTmsPrefetcher,
    MarkovPrefetcher,
    StridePrefetcher,
)
from repro.sim import (
    PrefetcherKind,
    SimConfig,
    SimResult,
    Simulator,
    TimingModel,
    compare_prefetchers,
    run_workload,
)
from repro.workloads import Trace, WORKLOADS, generate, workload_names

__version__ = "1.0.0"

__all__ = [
    "StmsConfig",
    "StmsPrefetcher",
    "CmpConfig",
    "DramConfig",
    "FixedDepthPrefetcher",
    "IdealTmsPrefetcher",
    "MarkovPrefetcher",
    "StridePrefetcher",
    "PrefetcherKind",
    "SimConfig",
    "SimResult",
    "Simulator",
    "TimingModel",
    "compare_prefetchers",
    "run_workload",
    "Trace",
    "WORKLOADS",
    "generate",
    "workload_names",
    "__version__",
]
