"""Figure 7 benchmark: overhead-traffic breakdown, 100% vs 12.5% sampling.

All eight workloads, the paper's two sampling points, four overhead
categories each.
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig7_traffic


def test_fig7_traffic(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig7_traffic.run, record_figure, scale="bench"
    )
    breakdowns = result.data["breakdowns"]
    # Geomean update-traffic reduction should approach the 8x sampling
    # factor (paper reports a geomean total meta-data reduction of 3.4x).
    ratios = []
    for name, per_probability in breakdowns.items():
        full = per_probability[1.0]["update"]
        sampled = per_probability[0.125]["update"]
        if sampled > 0:
            ratios.append(full / sampled)
    product = 1.0
    for ratio in ratios:
        product *= ratio
    geomean = product ** (1.0 / len(ratios))
    assert geomean >= 3.0
