"""Benchmark harness configuration.

Every benchmark regenerates one figure/table of the paper at the
``bench`` scale preset, asserts its shape checks, and writes the rendered
ASCII figure to ``benchmarks/output/<experiment>.txt`` so the regenerated
evaluation can be inspected and diffed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir() -> str:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_figure(output_dir):
    """Write an experiment's rendered output to the artifacts directory."""

    def _record(result) -> None:
        path = os.path.join(output_dir, f"{result.experiment}.txt")
        with open(path, "w") as handle:
            handle.write(result.render() + "\n")

    return _record


def run_and_check(benchmark, entry, record_figure, **options):
    """Benchmark one experiment driver and assert its shape checks."""
    result = benchmark.pedantic(
        lambda: entry(**options), rounds=1, iterations=1
    )
    record_figure(result)
    failures = [check.render() for check in result.checks if not check.passed]
    assert not failures, "shape checks failed:\n" + "\n".join(failures)
    return result
