"""Figure 4 benchmark: performance potential of idealized TMS.

Regenerates both panels (coverage and speedup) over all eight paper
workloads at the ``bench`` scale.
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig4_potential


def test_fig4_potential(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig4_potential.run, record_figure, scale="bench"
    )
    coverage = result.data["coverage"]
    speedup = result.data["speedup"]
    # The paper's headline ordering: sci >= commercial > dss.
    assert coverage["sci-em3d"] > coverage["web-apache"]
    assert coverage["web-apache"] > coverage["dss-db2"]
    assert speedup["sci-em3d"] == max(speedup.values())
