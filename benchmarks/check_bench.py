"""BENCH regression gate: compare the latest BENCH jsons to the baseline.

The speedup harness writes a machine-readable ``BENCH_<stamp>.json``
per invocation; CI runs it (``--store`` mode and ``--fig7-sweep`` mode)
and then calls this comparator, which fails the job when any gated
number regressed more than the tolerance against the committed
``benchmarks/BASELINE.json``.

The baseline holds a list of entries under ``"baselines"`` (a bare
single entry, the pre-multi format, is still accepted).  For each
entry the newest BENCH record with the same mode/experiment/scale is
located and two checks run:

* ``cold_s`` must stay within ``(1 + tolerance)`` of the baseline's —
  the absolute wall-time gate.  Warm time is reported but not gated
  (dominated by process startup and disk cache noise at CI scale).
* if the entry carries ``max_ratio``, the record's own
  ``cold_s / per_cell_s`` (fig7-sweep) or ``cold_s / serial_s``
  (fig7-par) must not exceed it — the win is enforced relative to the
  *same run's* baseline leg, immune to runner speed.  A fig7-par
  record stamped with ``cpus`` < 2 reports the ratio but skips the
  gate: a parallel-vs-serial bound cannot hold without concurrency.

Refreshing the baseline after an intentional performance change::

    python benchmarks/speedup_harness.py --store --experiment fig4 \
        --scale test
    python benchmarks/speedup_harness.py --fig7-sweep --scale test
    python benchmarks/check_bench.py --update

Environment: ``REPRO_BENCH_TOLERANCE`` overrides ``--tolerance``
(fraction, e.g. ``0.25``) — useful for noisy shared runners.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BASELINE.json")
OUTPUT_DIR = os.path.join(HERE, "output")


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _entries(baseline: dict) -> "list[dict]":
    """Baseline entries; a bare single-entry file is the legacy format."""
    if "baselines" in baseline:
        return list(baseline["baselines"])
    return [baseline]


def latest_bench(
    mode: str, experiment: str, scale: str
) -> "tuple[str, dict] | None":
    """The newest BENCH record matching one baseline entry's identity."""
    candidates = sorted(glob.glob(os.path.join(OUTPUT_DIR, "BENCH_*.json")))
    for path in reversed(candidates):
        try:
            record = _load(path)
        except (OSError, ValueError):
            continue
        if (
            record.get("mode") == mode
            and record.get("experiment") == experiment
            and record.get("scale") == scale
        ):
            return path, record
    return None


def _check_entry(entry: dict, tolerance: float) -> int:
    """Gate one baseline entry; 0 OK, 1 regression, 2 no record."""
    identity = f"{entry['mode']}/{entry['experiment']}@{entry['scale']}"
    found = latest_bench(entry["mode"], entry["experiment"], entry["scale"])
    if found is None:
        print(
            f"no BENCH_*.json in {OUTPUT_DIR} matching {identity}; "
            "run the speedup harness first"
        )
        return 2
    path, record = found

    cold = float(record["cold_s"])
    budget = float(entry["cold_s"]) * (1.0 + tolerance)
    verdict = "OK" if cold <= budget else "REGRESSION"
    print(
        f"{identity} cold wall time: {cold:.2f}s vs baseline "
        f"{entry['cold_s']:.2f}s (budget {budget:.2f}s at "
        f"+{tolerance:.0%}) -> {verdict}"
    )
    if record.get("warm_s") is not None:
        print(
            f"  warm (ungated): {float(record['warm_s']):.2f}s "
            f"(baseline {float(entry.get('warm_s', 0.0)):.2f}s), "
            f"from {path}"
        )
    rc = 0 if verdict == "OK" else 1

    max_ratio = entry.get("max_ratio")
    denominator = record.get("per_cell_s") or record.get("serial_s")
    if max_ratio is not None and denominator:
        label = (
            "grouped/per-cell" if record.get("per_cell_s")
            else "parallel/serial"
        )
        ratio = cold / float(denominator)
        cpus = record.get("cpus")
        if cpus is not None and int(cpus) < 2:
            # A parallel-vs-serial bound is meaningless on one CPU —
            # the parallel leg pays fork + attach overhead with no
            # concurrency to buy it back.  Report, don't gate.
            print(
                f"  {label} ratio: {ratio:.2f} (bound "
                f"{float(max_ratio):.2f} NOT gated: record ran on "
                f"{cpus} cpu)"
            )
            return rc
        ratio_verdict = "OK" if ratio <= float(max_ratio) else "REGRESSION"
        print(
            f"  {label} ratio: {ratio:.2f} "
            f"(bound {float(max_ratio):.2f}) -> {ratio_verdict}"
        )
        if ratio_verdict != "OK":
            rc = max(rc, 1)
    return rc


def _report_remote() -> None:
    """Print (never gate) the latest remote loopback round-trip record.

    Loopback latency on a shared runner is weather; the row exists so
    the remote tier's transport cost stays visible in every CI log
    without ever failing a build over it.
    """
    found = latest_bench("remote", "loopback", "test")
    if found is None:
        found = latest_bench("remote", "loopback", "bench")
    if found is None:
        return
    path, record = found
    print(
        f"remote/loopback round-trip (ungated): "
        f"GET p50 {float(record.get('get_rtt_ms_p50', 0.0)):.2f}ms, "
        f"PUT p50 {float(record.get('put_rtt_ms_p50', 0.0)):.2f}ms, "
        f"write-back drain {float(record.get('writeback_drain_s', 0.0)):.2f}s "
        f"over {record.get('objects', '?')} objects, from {path}"
    )


def _update(entries: "list[dict]", baseline_path: str) -> int:
    """Rewrite each entry from its latest matching BENCH record."""
    fresh_entries = []
    for entry in entries:
        found = latest_bench(
            entry["mode"], entry["experiment"], entry["scale"]
        )
        if found is None:
            print(
                f"no BENCH record for {entry['mode']}/"
                f"{entry['experiment']}@{entry['scale']}; keeping old "
                "entry"
            )
            fresh_entries.append(entry)
            continue
        path, record = found
        fresh = {
            "mode": record["mode"],
            "experiment": record["experiment"],
            "scale": record["scale"],
            "cold_s": record["cold_s"],
            "source_stamp": record.get("stamp"),
        }
        if record.get("warm_s") is not None:
            fresh["warm_s"] = record["warm_s"]
        if record.get("per_cell_s") is not None:
            fresh["per_cell_s"] = record["per_cell_s"]
        if record.get("serial_s") is not None:
            fresh["serial_s"] = record["serial_s"]
        if record.get("cpus") is not None:
            fresh["cpus"] = record["cpus"]
        if entry.get("max_ratio") is not None:
            fresh["max_ratio"] = entry["max_ratio"]
        fresh_entries.append(fresh)
        print(
            f"baseline entry {fresh['mode']}/{fresh['experiment']}"
            f"@{fresh['scale']} updated from {path}: "
            f"cold {fresh['cold_s']:.2f}s"
        )
    with open(baseline_path, "w") as handle:
        json.dump(
            {"baselines": fresh_entries}, handle, indent=2, sort_keys=True
        )
        handle.write("\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help="baseline json (default: benchmarks/BASELINE.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed cold-time regression fraction (default: "
        "REPRO_BENCH_TOLERANCE or 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the latest matching BENCH jsons",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        try:
            tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", ""))
        except ValueError:
            tolerance = 0.25
    entries = _entries(_load(args.baseline))

    if args.update:
        return _update(entries, args.baseline)

    _report_remote()
    return max(_check_entry(entry, tolerance) for entry in entries)


if __name__ == "__main__":
    sys.exit(main())
