"""BENCH regression gate: compare the latest BENCH json to the baseline.

The speedup harness writes a machine-readable ``BENCH_<stamp>.json``
per invocation; CI runs it in ``--store`` mode and then calls this
comparator, which fails the job when the *cold-store* wall time
regressed more than the tolerance against the committed
``benchmarks/BASELINE.json``.  Warm time is reported but not gated
(it is dominated by process startup and disk cache noise at CI scale).

Refreshing the baseline after an intentional performance change::

    python benchmarks/speedup_harness.py --store --experiment fig4 \
        --scale test
    python benchmarks/check_bench.py --update

Environment: ``REPRO_BENCH_TOLERANCE`` overrides ``--tolerance``
(fraction, e.g. ``0.25``) — useful for noisy shared runners.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BASELINE.json")
OUTPUT_DIR = os.path.join(HERE, "output")


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def latest_bench(
    mode: str, experiment: str, scale: str
) -> "tuple[str, dict] | None":
    """The newest BENCH record matching the baseline's identity."""
    candidates = sorted(glob.glob(os.path.join(OUTPUT_DIR, "BENCH_*.json")))
    for path in reversed(candidates):
        try:
            record = _load(path)
        except (OSError, ValueError):
            continue
        if (
            record.get("mode") == mode
            and record.get("experiment") == experiment
            and record.get("scale") == scale
        ):
            return path, record
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help="baseline json (default: benchmarks/BASELINE.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed cold-time regression fraction (default: "
        "REPRO_BENCH_TOLERANCE or 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the latest matching BENCH json",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        try:
            tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", ""))
        except ValueError:
            tolerance = 0.25
    baseline = _load(args.baseline)
    found = latest_bench(
        baseline["mode"], baseline["experiment"], baseline["scale"]
    )
    if found is None:
        print(
            f"no BENCH_*.json in {OUTPUT_DIR} matching "
            f"{baseline['mode']}/{baseline['experiment']}"
            f"@{baseline['scale']}; run the speedup harness first"
        )
        return 2
    path, record = found

    if args.update:
        fresh = {
            "mode": record["mode"],
            "experiment": record["experiment"],
            "scale": record["scale"],
            "cold_s": record["cold_s"],
            "warm_s": record["warm_s"],
            "source_stamp": record.get("stamp"),
        }
        with open(args.baseline, "w") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated from {path}: cold {fresh['cold_s']:.2f}s")
        return 0

    cold = float(record["cold_s"])
    budget = float(baseline["cold_s"]) * (1.0 + tolerance)
    verdict = "OK" if cold <= budget else "REGRESSION"
    print(
        f"{baseline['experiment']}@{baseline['scale']} cold-store wall "
        f"time: {cold:.2f}s vs baseline {baseline['cold_s']:.2f}s "
        f"(budget {budget:.2f}s at +{tolerance:.0%}) -> {verdict}"
    )
    print(
        f"  warm (ungated): {float(record['warm_s']):.2f}s "
        f"(baseline {float(baseline['warm_s']):.2f}s), from {path}"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
