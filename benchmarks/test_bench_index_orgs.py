"""Design-space benchmark: index-table organizations (paper §4.3/§5.4).

Drives the bucketized (STMS), chained, and open-address organizations
with the index event stream of a real workload — a lookup on every
off-chip read miss and a sampled update after it — and verifies the
paper's conclusion: alternatives are either less storage efficient or
pay extra lookup accesses (latency) for their coverage.
"""

import numpy as np

from repro.core.history_buffer import HistoryPointer
from repro.core.index_variants import compare_organizations
from repro.sim.engine import SimConfig, Simulator
from repro.sim.runner import make_sim_config
from repro.workloads.suite import generate

WORKLOAD = "oltp-db2"
SCALE = "bench"
SAMPLING = 0.125


def _index_event_stream():
    """Lookup+sampled-update events from the workload's miss sequence."""
    trace = generate(WORKLOAD, scale=SCALE, cores=4, seed=7)
    base = make_sim_config(SCALE)
    config = SimConfig(
        cmp=base.cmp, dram=base.dram, timing=base.timing,
        use_stride=base.use_stride, collect_miss_log=True,
    )
    result = Simulator(config).run(trace, None, "baseline")
    rng = np.random.default_rng(3)
    events = []
    sequence = 0
    for core, log in enumerate(result.miss_log):
        for block in log:
            events.append(("lookup", block, None))
            if rng.random() < SAMPLING:
                events.append(
                    ("update", block,
                     HistoryPointer(core=core, sequence=sequence))
                )
            sequence += 1
    return events


def test_index_organizations(benchmark, output_dir):
    def run():
        events = _index_event_stream()
        return compare_organizations(events, buckets=2048)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r.name: r for r in results}
    bucketized = by_name["bucketized (STMS)"]
    chained = by_name["chained buckets"]
    open_address = by_name["open addressing"]

    # Paper §5.4: the bucketized table is searched with a single access.
    assert bucketized.accesses_per_lookup == 1.0
    # Chained buckets keep more entries but pay extra lookup accesses
    # and unbounded storage.
    assert chained.accesses_per_lookup >= 1.0
    assert chained.storage_bytes >= bucketized.storage_bytes
    # Open addressing walks probe groups on misses.
    assert open_address.accesses_per_lookup >= 1.0

    import os

    lines = ["Index-table organization comparison (oltp-db2 events):"]
    for result in results:
        lines.append(
            f"  {result.name:20s} accesses/lookup="
            f"{result.accesses_per_lookup:.2f} hit_rate="
            f"{result.hit_rate:.3f} storage={result.storage_bytes}B "
            f"dropped={result.dropped_entries}"
        )
    with open(os.path.join(output_dir, "index-orgs.txt"), "w") as handle:
        handle.write("\n".join(lines) + "\n")
