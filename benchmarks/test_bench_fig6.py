"""Figure 6 benchmarks: amortizing lookups over long streams.

Streamed-block CDF by stream length (left) and coverage loss from fixed
prefetch depth (right).
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig6_amortize


def test_fig6_cdf(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig6_amortize.run_cdf, record_figure, scale="bench"
    )
    for name, median in result.data["weighted_median"].items():
        # Paper: half the streamed blocks come from streams of ~10+.
        assert median >= 4, f"{name} weighted median {median}"


def test_fig6_depth(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig6_amortize.run_depth, record_figure, scale="bench"
    )
    loss = result.data["loss"]
    depths = result.data["depths"]
    shallow = depths.index(min(depths))
    for name, series in loss.items():
        # Fragmentation hurts at published depths.
        assert series[shallow] >= series[-1]
