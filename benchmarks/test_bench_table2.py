"""Table 2 benchmark: MLP of off-chip reads per workload."""

from benchmarks.conftest import run_and_check
from repro.experiments import table2_mlp


def test_table2_mlp(benchmark, record_figure):
    result = run_and_check(
        benchmark, table2_mlp.run, record_figure, scale="bench"
    )
    mlp = result.data["mlp"]
    # The paper's ordering relations.
    assert mlp["sci-moldyn"] <= 1.15
    assert mlp["sci-em3d"] >= mlp["sci-ocean"]
    assert mlp["dss-db2"] >= mlp["oltp-db2"]
