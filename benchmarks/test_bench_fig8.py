"""Figure 8 benchmark: sampling-probability sensitivity sweep."""

from benchmarks.conftest import run_and_check
from repro.experiments import fig8_sampling


def test_fig8_sampling(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig8_sampling.run, record_figure, scale="bench"
    )
    probabilities = result.data["probabilities"]
    update = result.data["update_traffic"]
    # Update traffic must scale roughly linearly with p for every
    # workload: the 1.0 point should be several times the 0.125 point.
    idx_full = probabilities.index(1.0)
    idx_op = probabilities.index(0.125)
    for name, series in update.items():
        if series[idx_op] > 0.01:
            assert series[idx_full] >= 3.0 * series[idx_op], name
