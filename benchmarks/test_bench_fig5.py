"""Figure 5 benchmarks: meta-data storage requirements.

History-buffer sweep (smooth commercial growth, bimodal scientific) and
index-table sweep (growth to saturation under in-bucket LRU).
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig5_storage


def test_fig5_history(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig5_storage.run_history, record_figure, scale="bench"
    )
    coverage = result.data["coverage"]
    # Scientific coverage must be bimodal: tiny at the smallest history,
    # near-max at the largest.
    for name in ("sci-em3d", "sci-ocean"):
        series = coverage[name]
        assert series[-1] >= 0.5
        assert series[0] <= 0.5 * series[-1]


def test_fig5_index(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig5_storage.run_index, record_figure, scale="bench"
    )
    coverage = result.data["coverage"]
    for series in coverage.values():
        assert series[-1] >= series[0]
