"""Figure 1 benchmarks: the practicality challenges.

Left: coverage vs. correlation-table entries for an idealized
address-correlating prefetcher (the on-chip storage wall).
Right: overhead traffic of the prior off-chip designs (EBCP/ULMT/TSE)
computed from their published per-event costs and our measured MLP.
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig1_entries, fig1_prior_traffic


def test_fig1_left(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig1_entries.run, record_figure, scale="bench"
    )
    averaged = result.data["average"]
    assert max(averaged) >= 0.3


def test_fig1_right(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig1_prior_traffic.run, record_figure, scale="bench"
    )
    totals = [
        series["total"] for series in result.data["overheads"].values()
    ]
    # Paper: overhead traffic on the order of 3x baseline reads.
    assert sum(totals) / len(totals) >= 1.5
