"""Figure 9 benchmark: practical STMS vs. idealized TMS (the headline).

Coverage (with the full/partial split) and speedup for all eight
workloads, baseline vs. ideal vs. off-chip STMS.
"""

from benchmarks.conftest import run_and_check
from repro.experiments import fig9_performance
from repro.experiments.common import geometric_mean


def test_fig9_performance(benchmark, record_figure):
    result = run_and_check(
        benchmark, fig9_performance.run, record_figure, scale="bench"
    )
    data = result.data
    ratios = [
        min(1.0, entry["stms_coverage"] / entry["ideal_coverage"])
        for entry in data.values()
        if entry["ideal_coverage"] > 0.05
    ]
    # Paper: ~90% of idealized coverage; scaled traces give streams
    # fewer recurrences, so the bar here is 65% (see EXPERIMENTS.md).
    assert geometric_mean(ratios) >= 0.65
    # No workload may be slowed down by STMS.
    for name, entry in data.items():
        assert entry["stms_speedup"] >= 0.97, name
