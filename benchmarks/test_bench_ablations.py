"""Ablation benchmarks for STMS design choices (beyond the paper's
figures).

Each ablation isolates one mechanism DESIGN.md calls out:

* stream-end annotation (Section 4.5) — accuracy / erroneous traffic;
* the on-chip bucket buffer (Section 4.3) — index-traffic absorption;
* realistic truncated index tags vs. full tags — aliasing cost;
* pair-wise (Markov) correlation vs. temporal streaming — lookahead.
"""

import pytest

from repro.sim.runner import (
    PrefetcherKind,
    make_stms_config,
    run_trace,
)
from repro.workloads.suite import generate

WORKLOAD = "oltp-db2"
SCALE = "bench"


@pytest.fixture(scope="module")
def trace():
    return generate(WORKLOAD, scale=SCALE, cores=4, seed=7)


def test_ablation_stream_end_annotation(benchmark, trace):
    """Without end-of-stream marks, streaming runs past boundaries and
    wastes bandwidth on erroneous prefetches (paper Section 4.5)."""

    def run():
        with_marks = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4),
        )
        without_marks = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(
                SCALE, cores=4, annotate_stream_ends=False
            ),
        )
        return with_marks, without_marks

    with_marks, without_marks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert with_marks.prefetcher_stats.accuracy >= (
        without_marks.prefetcher_stats.accuracy - 0.02
    )
    # Coverage must not be sacrificed for the accuracy gain.
    assert with_marks.coverage.coverage >= (
        0.9 * without_marks.coverage.coverage
    )


def test_ablation_bucket_buffer(benchmark, trace):
    """The 8 KB bucket buffer absorbs index traffic between lookup,
    update, and write-back; shrinking it to one bucket exposes every
    access to memory."""

    def run():
        normal = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4),
        )
        tiny = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(
                SCALE, cores=4, bucket_buffer_entries=1
            ),
        )
        return normal, tiny

    normal, tiny = benchmark.pedantic(run, rounds=1, iterations=1)
    normal_index_traffic = (
        normal.traffic.update_index + normal.traffic.lookup_streams
    )
    tiny_index_traffic = (
        tiny.traffic.update_index + tiny.traffic.lookup_streams
    )
    assert tiny_index_traffic > normal_index_traffic


def test_ablation_tag_truncation(benchmark, trace):
    """Truncated 16-bit tags (the packed hardware format) may alias, but
    coverage must stay close to the full-tag configuration."""

    def run():
        full_tags = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4),
        )
        packed_tags = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4, tag_bits=16),
        )
        return full_tags, packed_tags

    full_tags, packed_tags = benchmark.pedantic(run, rounds=1, iterations=1)
    assert packed_tags.coverage.coverage >= (
        0.8 * full_tags.coverage.coverage
    )


def test_ablation_markov_vs_temporal(benchmark, trace):
    """Pair-wise correlation predicts only one miss ahead, so even with
    magic on-chip tables it cannot hide a full memory latency per
    prediction; temporal streaming's long lookahead turns coverage into
    *fully covered* misses.  (Both run with on-chip meta-data here —
    ideal TMS vs. Markov — the paper's Section 2 contrast.)"""

    def run():
        markov = run_trace(trace, PrefetcherKind.MARKOV, scale=SCALE)
        ideal = run_trace(trace, PrefetcherKind.IDEAL_TMS, scale=SCALE)
        baseline = run_trace(trace, PrefetcherKind.BASELINE, scale=SCALE)
        return markov, ideal, baseline

    markov, ideal, baseline = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Streaming hides the latency of covered misses; pair-wise
    # prediction leaves most covered misses only partially hidden.
    markov_full_share = markov.coverage.full_coverage / max(
        markov.coverage.coverage, 1e-9
    )
    ideal_full_share = ideal.coverage.full_coverage / max(
        ideal.coverage.coverage, 1e-9
    )
    assert ideal_full_share >= markov_full_share
    assert ideal.speedup_over(baseline) >= markov.speedup_over(baseline)


def test_ablation_lookahead(benchmark, trace):
    """Deeper lookahead hides more latency (more fully-covered misses)."""

    def run():
        shallow = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4, lookahead=2),
        )
        deep = run_trace(
            trace, PrefetcherKind.STMS, scale=SCALE,
            stms_config=make_stms_config(SCALE, cores=4, lookahead=16),
        )
        return shallow, deep

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert deep.coverage.full_coverage >= shallow.coverage.full_coverage
