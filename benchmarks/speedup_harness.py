"""Timed harness: one full figure experiment, seed path vs. new stack.

Measures the wall-clock of a figure experiment twice, each in a fresh
subprocess (cold session cache, cold imports):

* **seed path** — by default the current tree pinned to the scalar
  reference engine with the session cache disabled and one worker;
  pass ``--baseline-repo PATH`` (a checkout of the seed commit) to
  time the genuine seed code instead.
* **new stack** — the batched engine + memoizing session + runner
  defaults of the current tree.

Results are printed and appended to ``benchmarks/output/speedup.txt``.

Examples::

    python benchmarks/speedup_harness.py --experiment fig9
    python benchmarks/speedup_harness.py --experiment fig4 \
        --baseline-repo /path/to/seed/checkout
    python benchmarks/speedup_harness.py --suite   # every figure once
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)

_RUN_ONE = """
import time
from repro.experiments import EXPERIMENTS
t0 = time.perf_counter()
EXPERIMENTS[{name!r}](scale={scale!r})
print("ELAPSED", time.perf_counter() - t0)
"""

_RUN_SUITE = """
import time
from repro.experiments import EXPERIMENTS
t0 = time.perf_counter()
for name in sorted(EXPERIMENTS):
    t1 = time.perf_counter()
    EXPERIMENTS[name](scale={scale!r})
    print("PER", name, time.perf_counter() - t1)
print("ELAPSED", time.perf_counter() - t0)
"""


def _measure(
    code: str, src: str, env_overrides: dict
) -> "tuple[float, dict[str, float]]":
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(env_overrides)
    output = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    elapsed = None
    per: "dict[str, float]" = {}
    for line in output.splitlines():
        if line.startswith("ELAPSED"):
            elapsed = float(line.split()[1])
        elif line.startswith("PER"):
            _, name, value = line.split()
            per[name] = float(value)
    if elapsed is None:
        raise RuntimeError(f"no ELAPSED line in output:\n{output}")
    return elapsed, per


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="fig9")
    parser.add_argument("--scale", default="bench")
    parser.add_argument(
        "--suite", action="store_true",
        help="time every figure experiment once instead of one figure",
    )
    parser.add_argument(
        "--baseline-repo",
        help="path to a seed checkout; its code becomes the seed path",
    )
    args = parser.parse_args(argv)

    if args.suite:
        code = _RUN_SUITE.format(scale=args.scale)
        label = "all experiments"
    else:
        code = _RUN_ONE.format(name=args.experiment, scale=args.scale)
        label = args.experiment

    if args.baseline_repo:
        seed_src = os.path.join(args.baseline_repo, "src")
        seed_env: dict = {}
        seed_label = f"seed checkout ({args.baseline_repo})"
    else:
        seed_src = os.path.join(ROOT, "src")
        seed_env = {
            "REPRO_SIM_ENGINE": "scalar",
            "REPRO_SIM_CACHE": "0",
            "REPRO_JOBS": "1",
        }
        seed_label = "current tree, scalar engine, no cache, serial"

    print(f"timing {label} at scale={args.scale} ...")
    seed_elapsed, seed_per = _measure(code, seed_src, seed_env)
    print(f"  seed path [{seed_label}]: {seed_elapsed:.1f}s")
    new_elapsed, new_per = _measure(code, os.path.join(ROOT, "src"), {})
    print(f"  new stack [batched engine + session + runner]: "
          f"{new_elapsed:.1f}s")
    ratio = seed_elapsed / new_elapsed if new_elapsed > 0 else float("inf")
    print(f"  wall-clock reduction: {ratio:.2f}x")

    lines = [
        f"{label} @ {args.scale}: seed [{seed_label}] "
        f"{seed_elapsed:.1f}s -> new {new_elapsed:.1f}s ({ratio:.2f}x)"
    ]
    for name in seed_per:
        if name in new_per and new_per[name] > 0:
            per_ratio = seed_per[name] / new_per[name]
            line = (
                f"    {name}: {seed_per[name]:.1f}s -> "
                f"{new_per[name]:.1f}s ({per_ratio:.2f}x)"
            )
            print(line)
            lines.append(line)

    output_dir = os.path.join(HERE, "output")
    os.makedirs(output_dir, exist_ok=True)
    with open(os.path.join(output_dir, "speedup.txt"), "a") as handle:
        handle.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
