"""Timed harness: figure experiments across engine/cache generations.

Two modes, each timing full experiments in fresh subprocesses (cold
session cache, cold imports):

* **seed-vs-new** (default) — the seed path (current tree pinned to the
  scalar engine with caching disabled, or ``--baseline-repo PATH`` for
  a genuine seed checkout) against the batched engine + memoizing
  session + runner defaults of the current tree.
* **store** (``--store``) — a *cold* run of one experiment populating
  the on-disk artifact store, then a *warm* run in a new process served
  from it: the cross-process caching the store tier exists for.
* **fig7-sweep** (``--fig7-sweep``) — the config-parallel sweep engine:
  the full fig7 sampling grid in one cold grouped invocation (trace,
  native columns, and STMS metadata classification shared per trace by
  ``repro.sim.sweep``) against the same cells run as independent cold
  per-cell invocations, each re-deriving everything.  Both legs are
  wall-clock including interpreter startup — the per-cell leg *is* N
  separate process launches; that symmetry is the point.
* **remote** (``--remote``) — the remote object-store tier against a
  loopback ``repro store serve`` daemon: per-object ``GET``/``PUT``
  round-trip latency through the production ``http.client`` transport,
  plus the wall time for the asynchronous write-back queue to drain.
  ``check_bench`` prints these rows but never gates them.
* **fig7-par** (``--fig7-par``) — the two-level scheduler + shared-
  memory trace plane: one workload's whole sampling ladder (a single
  trace group, the worst case for level-1 scheduling) cold through the
  serial grouped path, then cold again through a two-worker runner
  that splits the group into cell shards attached over ``repro.sim.shm``.
  Records ``cpus`` alongside the ratio: on a single-CPU machine the
  parallel leg cannot win and the ratio gate is informational only
  (``check_bench`` skips it there).

Every invocation appends a human-readable line to
``benchmarks/output/speedup.txt`` **and** writes a machine-readable
``benchmarks/output/BENCH_<stamp>.json`` (per-figure wall-clock plus
cache hit counters) so the performance trajectory is trackable across
PRs and CI uploads it as a workflow artifact.

Examples::

    python benchmarks/speedup_harness.py --experiment fig9
    python benchmarks/speedup_harness.py --suite   # every figure once
    python benchmarks/speedup_harness.py --store --experiment fig4
    python benchmarks/speedup_harness.py --fig7-sweep --scale test
    python benchmarks/speedup_harness.py --experiment fig4 \
        --baseline-repo /path/to/seed/checkout
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)

# The session-stats print is guarded: the seed checkout predates the
# session layer (and older trees its newer counters).
_STATS_TAIL = """
try:
    import dataclasses, json
    from repro.sim.session import get_session
    print("STATS " + json.dumps(dataclasses.asdict(get_session().stats)))
except Exception:
    pass
"""

_RUN_ONE = """
import time
from repro.experiments import EXPERIMENTS
t0 = time.perf_counter()
EXPERIMENTS[{name!r}](scale={scale!r})
print("ELAPSED", time.perf_counter() - t0)
""" + _STATS_TAIL

_RUN_SUITE = """
import time
from repro.experiments import EXPERIMENTS
t0 = time.perf_counter()
for name in sorted(EXPERIMENTS):
    t1 = time.perf_counter()
    EXPERIMENTS[name](scale={scale!r})
    print("PER", name, time.perf_counter() - t1)
print("ELAPSED", time.perf_counter() - t0)
""" + _STATS_TAIL


# The fig7-sweep mode builds its cell list from the experiment module
# itself so the bench can never drift out of sync with the figure.
_LIST_FIG7_CELLS = """
import json
from repro.experiments.fig7_traffic import SAMPLING_POINTS
from repro.workloads.suite import FIGURE_ORDER
print("CELLS " + json.dumps(
    [[name, probability]
     for name in FIGURE_ORDER
     for probability in SAMPLING_POINTS]
))
"""

# Grouped leg: the whole grid through the runner, whose grouping hands
# same-trace jobs to repro.sim.sweep.run_sweep.  Job parameters mirror
# repro.experiments.fig7_traffic.run defaults (cores=4, seed=7).
_RUN_FIG7_GROUPED = """
import time
from repro.experiments.fig7_traffic import SAMPLING_POINTS
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
from repro.workloads.suite import FIGURE_ORDER
jobs = [
    SimJob(
        name, PrefetcherKind.STMS, scale={scale!r}, cores=4, seed=7,
        stms_overrides=job_options(sampling_probability=probability),
        tag=probability,
    )
    for name in FIGURE_ORDER
    for probability in SAMPLING_POINTS
]
t0 = time.perf_counter()
ExperimentRunner(max_workers=1, parallel=False).map(jobs)
print("ELAPSED", time.perf_counter() - t0)
""" + _STATS_TAIL

# fig7-par legs: one workload's sampling ladder is a single trace
# group, so the serial leg is one sweep invocation and the parallel leg
# exercises level-2 cell sharding + the shm trace plane.  The ladder
# extends the figure's sampling axis to four points so the group is
# actually splittable at test scale.
_FIG7_PAR_LADDER = (1.0, 0.5, 0.25, 0.125)

_LIST_FIG7_WORKLOAD = """
from repro.workloads.suite import FIGURE_ORDER
print("WORKLOAD " + FIGURE_ORDER[0])
"""

_RUN_FIG7_PAR = """
import time
from repro.sim.runner import (
    ExperimentRunner,
    PrefetcherKind,
    SimJob,
    job_options,
)
jobs = [
    SimJob(
        {name!r}, PrefetcherKind.STMS, scale={scale!r}, cores=4, seed=7,
        stms_overrides=job_options(sampling_probability=probability),
        tag=probability,
    )
    for probability in {ladder!r}
]
t0 = time.perf_counter()
ExperimentRunner(max_workers={workers}, parallel={parallel}).map(jobs)
print("ELAPSED", time.perf_counter() - t0)
""" + _STATS_TAIL


# Per-cell leg: one fresh process per cell, nothing shared.
_RUN_FIG7_CELL = """
import time
from repro.sim.runner import PrefetcherKind, SimJob, job_options, run_job
t0 = time.perf_counter()
run_job(SimJob(
    {name!r}, PrefetcherKind.STMS, scale={scale!r}, cores=4, seed=7,
    stms_overrides=job_options(sampling_probability={probability!r}),
))
print("ELAPSED", time.perf_counter() - t0)
"""


def _measure(
    code: str, src: str, env_overrides: dict
) -> "tuple[float, dict[str, float], dict]":
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(env_overrides)
    output = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    elapsed = None
    per: "dict[str, float]" = {}
    stats: dict = {}
    for line in output.splitlines():
        if line.startswith("ELAPSED"):
            elapsed = float(line.split()[1])
        elif line.startswith("PER"):
            _, name, value = line.split()
            per[name] = float(value)
        elif line.startswith("STATS "):
            stats = json.loads(line[len("STATS "):])
    if elapsed is None:
        raise RuntimeError(f"no ELAPSED line in output:\n{output}")
    return elapsed, per, stats


def _hit_rate(stats: dict) -> "float | None":
    """Fraction of simulations served from either cache tier."""
    hits = stats.get("sim_hits", 0) + stats.get("sim_store_hits", 0)
    total = hits + stats.get("sim_misses", 0)
    if total == 0:
        return None
    return hits / total


def _output_dir() -> str:
    path = os.path.join(HERE, "output")
    os.makedirs(path, exist_ok=True)
    return path


def _record(lines: "list[str]", payload: dict) -> str:
    """Append the text log and write the BENCH_<stamp>.json record."""
    output_dir = _output_dir()
    with open(os.path.join(output_dir, "speedup.txt"), "a") as handle:
        handle.write("\n".join(lines) + "\n")
    stamp = time.strftime("%Y%m%d-%H%M%S")
    payload["stamp"] = stamp
    bench_path = os.path.join(output_dir, f"BENCH_{stamp}.json")
    with open(bench_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {bench_path}")
    return bench_path


def _run_store_mode(args: argparse.Namespace, code: str, label: str) -> int:
    """Cold-vs-warm measurement of the persistent artifact store."""
    store_dir = args.store_dir or os.path.join(
        _output_dir(), "store-bench"
    )
    # The first run must be genuinely cold — but never delete a
    # directory that isn't recognizably an artifact store (a typo'd
    # --store-dir must not wipe arbitrary data).
    if os.path.isdir(store_dir) and os.listdir(store_dir):
        if not os.path.exists(os.path.join(store_dir, "schema.json")):
            raise SystemExit(
                f"--store-dir {store_dir} exists, is not empty, and has "
                "no schema.json stamp; refusing to clear it"
            )
        shutil.rmtree(store_dir)
    src = os.path.join(ROOT, "src")
    # Pin the cache environment: an inherited REPRO_SIM_CACHE=0 would
    # quietly disable the very tier being measured.
    env = {"REPRO_STORE_DIR": store_dir, "REPRO_SIM_CACHE": "1"}

    print(f"store tier, {label} at scale={args.scale} ...")
    cold, cold_per, cold_stats = _measure(code, src, env)
    print(f"  cold (empty store): {cold:.1f}s")
    warm, warm_per, warm_stats = _measure(code, src, env)
    ratio = cold / warm if warm > 0 else float("inf")
    print(
        f"  warm (new process, same store): {warm:.2f}s ({ratio:.1f}x)"
    )
    print(
        f"  warm served from disk: "
        f"{warm_stats.get('sim_store_hits', 0)} results, "
        f"{warm_stats.get('trace_store_hits', 0)} traces, "
        f"{warm_stats.get('sim_misses', 0)} simulated"
    )

    lines = [
        f"store tier, {label} @ {args.scale}: cold {cold:.1f}s -> "
        f"warm {warm:.2f}s ({ratio:.1f}x, "
        f"{warm_stats.get('sim_store_hits', 0)} store hits, "
        f"{warm_stats.get('sim_misses', 0)} simulated)"
    ]
    _record(
        lines,
        {
            "mode": "store",
            "experiment": label,
            "scale": args.scale,
            "store_dir": store_dir,
            "cold_s": cold,
            "warm_s": warm,
            "speedup": ratio,
            "cold_per_figure": cold_per,
            "warm_per_figure": warm_per,
            "cold_stats": cold_stats,
            "warm_stats": warm_stats,
            "cold_hit_rate": _hit_rate(cold_stats),
            "warm_hit_rate": _hit_rate(warm_stats),
        },
    )
    return 0


def _measure_wall(
    code: str, src: str, env_overrides: dict
) -> "tuple[float, dict]":
    """Like :func:`_measure`, but wall-clock including process startup."""
    t0 = time.perf_counter()
    _, _, stats = _measure(code, src, env_overrides)
    return time.perf_counter() - t0, stats


def _run_fig7_sweep(args: argparse.Namespace) -> int:
    """Grouped sweep invocation vs independent per-cell invocations."""
    src = os.path.join(ROOT, "src")
    # Memory session only, cold in every process: the store would let
    # the second leg ride on the first leg's results.  The grouped leg
    # is this PR's path (sweep grouping + batched emitter); the
    # per-cell leg pins the pre-sweep path (scalar emitter, grouping
    # off) so the record captures the whole before/after.
    grouped_env = {
        "REPRO_SIM_CACHE": "1",
        "REPRO_STORE_DIR": "",
        "REPRO_JOBS": "1",
        "REPRO_SWEEP": "on",
        "REPRO_TRACE_EMITTER": "batched",
    }
    cell_env = {
        "REPRO_SIM_CACHE": "1",
        "REPRO_STORE_DIR": "",
        "REPRO_JOBS": "1",
        "REPRO_SWEEP": "off",
        "REPRO_TRACE_EMITTER": "scalar",
    }
    probe_env = dict(os.environ)
    probe_env["PYTHONPATH"] = src + (
        os.pathsep + probe_env["PYTHONPATH"]
        if probe_env.get("PYTHONPATH")
        else ""
    )
    cells: "list[list]" = []
    for line in subprocess.run(
        [sys.executable, "-c", _LIST_FIG7_CELLS],
        env=probe_env, capture_output=True, text=True, check=True,
    ).stdout.splitlines():
        if line.startswith("CELLS "):
            cells = json.loads(line[len("CELLS "):])
    if not cells:
        raise RuntimeError("could not enumerate fig7 cells")

    print(
        f"fig7 sweep at scale={args.scale}: {len(cells)} per-cell "
        f"invocations vs one grouped invocation ..."
    )
    # Baseline leg first, like seed-vs-new mode.
    per_cell: "dict[str, float]" = {}
    per_cell_total = 0.0
    for name, probability in cells:
        wall, _ = _measure_wall(
            _RUN_FIG7_CELL.format(
                name=name, scale=args.scale, probability=probability
            ),
            src,
            cell_env,
        )
        per_cell[f"{name}@{probability}"] = wall
        per_cell_total += wall
    print(f"  per-cell (fresh process each): {per_cell_total:.1f}s total")
    grouped, grouped_stats = _measure_wall(
        _RUN_FIG7_GROUPED.format(scale=args.scale), src, grouped_env
    )
    print(
        f"  grouped (one process, sweep engine): {grouped:.1f}s "
        f"({grouped_stats.get('sweep_invocations', 0)} sweep "
        f"invocations, {grouped_stats.get('sweep_cells', 0)} cells "
        f"grouped, {grouped_stats.get('sweep_fallbacks', 0)} fallbacks)"
    )
    ratio = grouped / per_cell_total if per_cell_total > 0 else float("inf")
    speedup = per_cell_total / grouped if grouped > 0 else float("inf")
    print(
        f"  grouped / per-cell ratio: {ratio:.2f} ({speedup:.2f}x faster)"
    )

    lines = [
        f"fig7 sweep @ {args.scale}: per-cell {per_cell_total:.1f}s -> "
        f"grouped {grouped:.1f}s (ratio {ratio:.2f}, "
        f"{grouped_stats.get('sweep_cells', 0)} cells grouped, "
        f"{grouped_stats.get('sweep_fallbacks', 0)} fallbacks)"
    ]
    _record(
        lines,
        {
            "mode": "fig7-sweep",
            "experiment": "fig7",
            "scale": args.scale,
            "cells": len(cells),
            "cold_s": grouped,
            "per_cell_s": per_cell_total,
            "ratio": ratio,
            "speedup": speedup,
            "per_cell_walls": per_cell,
            "grouped_stats": grouped_stats,
        },
    )
    return 0


def _run_fig7_par(args: argparse.Namespace) -> int:
    """Serial grouped sweep vs two-worker cell-parallel shm plane."""
    src = os.path.join(ROOT, "src")
    # Memory session only, cold in both processes; the sweep engine and
    # batched emitter are pinned on for BOTH legs so the only variable
    # is the scheduler (serial grouped vs cell shards over the plane).
    serial_env = {
        "REPRO_SIM_CACHE": "1",
        "REPRO_STORE_DIR": "",
        "REPRO_SWEEP": "on",
        "REPRO_TRACE_EMITTER": "batched",
        "REPRO_SHM": "on",
    }
    probe_env = dict(os.environ)
    probe_env["PYTHONPATH"] = src + (
        os.pathsep + probe_env["PYTHONPATH"]
        if probe_env.get("PYTHONPATH")
        else ""
    )
    workload = None
    for line in subprocess.run(
        [sys.executable, "-c", _LIST_FIG7_WORKLOAD],
        env=probe_env, capture_output=True, text=True, check=True,
    ).stdout.splitlines():
        if line.startswith("WORKLOAD "):
            workload = line[len("WORKLOAD "):].strip()
    if not workload:
        raise RuntimeError("could not resolve the fig7-par workload")
    cpus = os.cpu_count() or 1

    print(
        f"fig7 parallel plane at scale={args.scale}: {workload} x "
        f"{len(_FIG7_PAR_LADDER)} sampling cells, one trace group, "
        f"{cpus} cpus ..."
    )
    serial, serial_stats = _measure_wall(
        _RUN_FIG7_PAR.format(
            name=workload, scale=args.scale, ladder=_FIG7_PAR_LADDER,
            workers=1, parallel=False,
        ),
        src,
        serial_env,
    )
    print(f"  serial grouped (one sweep invocation): {serial:.1f}s")
    parallel, parallel_stats = _measure_wall(
        _RUN_FIG7_PAR.format(
            name=workload, scale=args.scale, ladder=_FIG7_PAR_LADDER,
            workers=2, parallel=True,
        ),
        src,
        serial_env,
    )
    print(
        f"  2-worker cell shards (shm plane): {parallel:.1f}s "
        f"({parallel_stats.get('shm_exports', 0)} segments exported, "
        f"{parallel_stats.get('shm_attaches', 0)} attaches, "
        f"{parallel_stats.get('shm_bytes_zero_copy', 0)} bytes "
        f"zero-copy)"
    )
    ratio = parallel / serial if serial > 0 else float("inf")
    note = "" if cpus >= 2 else " (1 cpu: informational only)"
    print(f"  parallel / serial ratio: {ratio:.2f}{note}")

    lines = [
        f"fig7 par @ {args.scale}: serial {serial:.1f}s -> 2-worker "
        f"{parallel:.1f}s (ratio {ratio:.2f}, {cpus} cpus, "
        f"{parallel_stats.get('shm_attaches', 0)} shm attaches)"
    ]
    _record(
        lines,
        {
            "mode": "fig7-par",
            "experiment": "fig7",
            "scale": args.scale,
            "workload": workload,
            "cells": len(_FIG7_PAR_LADDER),
            "cpus": cpus,
            "cold_s": parallel,
            "serial_s": serial,
            "ratio": ratio,
            "serial_stats": serial_stats,
            "parallel_stats": parallel_stats,
        },
    )
    return 0


def _run_remote_mode(args: argparse.Namespace) -> int:
    """Loopback remote-tier round-trip: GET/PUT RTT, write-back drain.

    Boots a real ``repro store serve`` daemon on a loopback ephemeral
    port and measures the remote tier's per-object round-trip through
    the production transport.  The numbers are *reported* by
    ``check_bench``, never gated — loopback latency on a shared CI
    runner is weather — but their trajectory is worth a row.
    """
    import statistics
    import tempfile

    src = os.path.join(ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.service import ObjectStoreDaemon, serve_in_thread
    from repro.sim.remote import RemoteConfig, RemoteStore, payload_digest

    objects = 32
    payloads = [
        (f"remote-bench-{index:04d}-".encode() * 512)
        for index in range(objects)
    ]
    # The transport digest doubles as the object key (valid hex, and
    # self-verifying on the way back).
    keys = [payload_digest(payload) for payload in payloads]

    with tempfile.TemporaryDirectory(prefix="remote-bench-") as tmp:
        daemon = ObjectStoreDaemon(os.path.join(tmp, "peer"))
        with serve_in_thread(daemon):
            remote = RemoteStore(RemoteConfig(url=daemon.url))
            put_ms, get_ms = [], []
            for key, payload in zip(keys, payloads):
                t0 = time.perf_counter()
                if not remote.put("result", key, payload):
                    raise SystemExit("loopback PUT failed")
                put_ms.append((time.perf_counter() - t0) * 1000.0)
            for key, payload in zip(keys, payloads):
                t0 = time.perf_counter()
                fetched = remote.fetch("result", key)
                get_ms.append((time.perf_counter() - t0) * 1000.0)
                if fetched != payload:
                    raise SystemExit("loopback GET returned wrong bytes")
            # Asynchronous write-back: queue every object through the
            # background writer and time the full drain.
            spool = os.path.join(tmp, "spool")
            os.makedirs(spool)
            drain = RemoteStore(RemoteConfig(url=daemon.url))
            for key, payload in zip(keys, payloads):
                path = os.path.join(spool, key)
                with open(path, "wb") as handle:
                    handle.write(payload)
                drain.enqueue_writeback("result", key, path)
            t0 = time.perf_counter()
            if not drain.flush(timeout_s=120):
                raise SystemExit("write-back queue failed to drain")
            drain_s = time.perf_counter() - t0
            drain.close()
            remote.close()

    get_p50 = statistics.median(get_ms)
    put_p50 = statistics.median(put_ms)
    print(
        f"remote loopback: GET p50 {get_p50:.2f}ms, PUT p50 "
        f"{put_p50:.2f}ms over {objects} objects of "
        f"{len(payloads[0])} bytes"
    )
    print(
        f"  async write-back drain: {drain_s:.2f}s for {objects} "
        "queued objects"
    )
    lines = [
        f"remote loopback @ {args.scale}: GET p50 {get_p50:.2f}ms, "
        f"PUT p50 {put_p50:.2f}ms, drain {drain_s:.2f}s "
        f"({objects} objects)"
    ]
    _record(
        lines,
        {
            "mode": "remote",
            "experiment": "loopback",
            "scale": args.scale,
            "objects": objects,
            "payload_bytes": len(payloads[0]),
            "get_rtt_ms_p50": get_p50,
            "get_rtt_ms_max": max(get_ms),
            "put_rtt_ms_p50": put_p50,
            "put_rtt_ms_max": max(put_ms),
            "writeback_drain_s": drain_s,
        },
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="fig9")
    parser.add_argument("--scale", default="bench")
    parser.add_argument(
        "--suite", action="store_true",
        help="time every figure experiment once instead of one figure",
    )
    parser.add_argument(
        "--baseline-repo",
        help="path to a seed checkout; its code becomes the seed path",
    )
    parser.add_argument(
        "--store", action="store_true",
        help="measure the artifact store: cold run, then a warm run in "
        "a new process served from disk",
    )
    parser.add_argument(
        "--store-dir", default=None,
        help="store directory for --store (cleared before the cold "
        "run; default: benchmarks/output/store-bench)",
    )
    parser.add_argument(
        "--fig7-sweep", action="store_true",
        help="measure the config-parallel sweep engine: the full fig7 "
        "grid grouped in one cold invocation vs one cold invocation "
        "per cell",
    )
    parser.add_argument(
        "--fig7-par", action="store_true",
        help="measure the two-level scheduler + shm trace plane: one "
        "workload's sampling ladder serial-grouped vs split across two "
        "workers attaching the trace over shared memory",
    )
    parser.add_argument(
        "--remote", action="store_true",
        help="measure the remote object-store tier over a loopback "
        "`repro store serve` daemon: GET/PUT round-trip and async "
        "write-back drain (reported by check_bench, never gated)",
    )
    args = parser.parse_args(argv)

    if args.remote:
        return _run_remote_mode(args)

    if args.fig7_sweep:
        return _run_fig7_sweep(args)

    if args.fig7_par:
        return _run_fig7_par(args)

    if args.suite:
        code = _RUN_SUITE.format(scale=args.scale)
        label = "all experiments"
    else:
        code = _RUN_ONE.format(name=args.experiment, scale=args.scale)
        label = args.experiment

    if args.store:
        return _run_store_mode(args, code, label)

    # Both legs pin the cache environment: an inherited warm
    # REPRO_STORE_DIR (or REPRO_SIM_CACHE=0) would silently serve one
    # side from disk and record a bogus speedup as permanent evidence.
    if args.baseline_repo:
        seed_src = os.path.join(args.baseline_repo, "src")
        seed_env: dict = {"REPRO_STORE_DIR": ""}
        seed_label = f"seed checkout ({args.baseline_repo})"
    else:
        seed_src = os.path.join(ROOT, "src")
        seed_env = {
            "REPRO_SIM_ENGINE": "scalar",
            "REPRO_SIM_CACHE": "0",
            "REPRO_STORE_DIR": "",
            "REPRO_JOBS": "1",
        }
        seed_label = "current tree, scalar engine, no cache, serial"

    print(f"timing {label} at scale={args.scale} ...")
    seed_elapsed, seed_per, _ = _measure(code, seed_src, seed_env)
    print(f"  seed path [{seed_label}]: {seed_elapsed:.1f}s")
    new_elapsed, new_per, new_stats = _measure(
        code,
        os.path.join(ROOT, "src"),
        {"REPRO_SIM_CACHE": "1", "REPRO_STORE_DIR": ""},
    )
    print(f"  new stack [batched engine + session + runner]: "
          f"{new_elapsed:.1f}s")
    ratio = seed_elapsed / new_elapsed if new_elapsed > 0 else float("inf")
    print(f"  wall-clock reduction: {ratio:.2f}x")

    lines = [
        f"{label} @ {args.scale}: seed [{seed_label}] "
        f"{seed_elapsed:.1f}s -> new {new_elapsed:.1f}s ({ratio:.2f}x)"
    ]
    per_figure: "dict[str, dict[str, float]]" = {}
    for name in seed_per:
        if name in new_per and new_per[name] > 0:
            per_ratio = seed_per[name] / new_per[name]
            per_figure[name] = {
                "seed_s": seed_per[name],
                "new_s": new_per[name],
                "speedup": per_ratio,
            }
            line = (
                f"    {name}: {seed_per[name]:.1f}s -> "
                f"{new_per[name]:.1f}s ({per_ratio:.2f}x)"
            )
            print(line)
            lines.append(line)

    _record(
        lines,
        {
            "mode": "seed-vs-new",
            "experiment": label,
            "scale": args.scale,
            "seed_label": seed_label,
            "seed_s": seed_elapsed,
            "new_s": new_elapsed,
            "speedup": ratio,
            "per_figure": per_figure,
            "new_stats": new_stats,
            "new_hit_rate": _hit_rate(new_stats),
        },
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
