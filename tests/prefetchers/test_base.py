"""Unit tests for the prefetch buffer and shared prefetcher machinery."""

import pytest

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.base import (
    PrefetchBuffer,
    PrefetchedBlock,
    TemporalPrefetcher,
)


def entry(block: int, stream: int = -1, arrival: float = 10.0):
    return PrefetchedBlock(
        block=block, issued_at=0.0, arrival=arrival, stream=stream
    )


class TestPrefetchBuffer:
    def test_insert_take(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(entry(1))
        taken = buffer.take(1)
        assert taken is not None and taken.block == 1
        assert buffer.take(1) is None

    def test_fifo_displacement(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(entry(1))
        buffer.insert(entry(2))
        displaced = buffer.insert(entry(3))
        assert displaced is not None and displaced.block == 1

    def test_duplicate_insert_is_noop(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(entry(1, arrival=5.0))
        assert buffer.insert(entry(1, arrival=99.0)) is None
        assert buffer.take(1).arrival == 5.0

    def test_stream_outstanding_counts(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(entry(1, stream=7))
        buffer.insert(entry(2, stream=7))
        buffer.insert(entry(3, stream=8))
        assert buffer.outstanding(7) == 2
        assert buffer.outstanding(8) == 1
        buffer.take(1)
        assert buffer.outstanding(7) == 1

    def test_displacement_updates_stream_counts(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(entry(1, stream=7))
        buffer.insert(entry(2, stream=7))
        buffer.insert(entry(3, stream=8))  # displaces block 1
        assert buffer.outstanding(7) == 1
        assert buffer.outstanding(8) == 1

    def test_drain_clears_counts(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(entry(1, stream=3))
        leftovers = buffer.drain()
        assert [e.block for e in leftovers] == [1]
        assert buffer.outstanding(3) == 0
        assert len(buffer) == 0

    def test_is_arrived(self):
        late = entry(1, arrival=100.0)
        assert not late.is_arrived(50.0)
        assert late.is_arrived(100.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)


class _NullPrefetcher(TemporalPrefetcher):
    """Minimal concrete subclass for exercising the shared machinery."""

    def on_demand_miss(self, core, block, now):
        self._issue_prefetch(core, block + 1, now)

    def _on_prefetch_hit(self, core, block, now):
        pass


class TestTemporalPrefetcherMachinery:
    def _make(self, residency=None) -> _NullPrefetcher:
        return _NullPrefetcher(
            cores=1,
            dram=DramChannel(),
            traffic=TrafficMeter(),
            residency_filter=residency,
            buffer_blocks=4,
        )

    def test_issue_then_consume_counts_useful(self):
        prefetcher = self._make()
        prefetcher.on_demand_miss(0, 10, now=0.0)
        hit = prefetcher.consume(0, 11, now=1e6)
        assert hit is not None
        assert prefetcher.stats.useful == 1
        assert (
            prefetcher.traffic.bytes_for(TrafficCategory.USEFUL_PREFETCH)
            == 64
        )

    def test_residency_filter_suppresses(self):
        prefetcher = self._make(residency=lambda block: True)
        prefetcher.on_demand_miss(0, 10, now=0.0)
        assert prefetcher.stats.filtered == 1
        assert prefetcher.stats.issued == 0

    def test_backlog_drop(self):
        prefetcher = self._make()
        limit = prefetcher._backlog_limit
        # Saturate the low-priority queue far beyond the drop threshold.
        needed = int(limit / prefetcher.dram.config.transfer_cycles) + 10
        for _ in range(needed):
            prefetcher.dram.request(0.0, blocks=1)
        prefetcher.on_demand_miss(0, 10, now=0.0)
        assert prefetcher.stats.dropped == 1

    def test_finalize_charges_leftovers_as_erroneous(self):
        prefetcher = self._make()
        prefetcher.on_demand_miss(0, 10, now=0.0)
        prefetcher.finalize(now=1e6)
        assert prefetcher.stats.erroneous == 1
        assert (
            prefetcher.traffic.bytes_for(TrafficCategory.ERRONEOUS_PREFETCH)
            == 64
        )

    def test_accuracy(self):
        prefetcher = self._make()
        prefetcher.on_demand_miss(0, 10, now=0.0)
        prefetcher.consume(0, 11, now=1e6)
        prefetcher.on_demand_miss(0, 20, now=2e6)
        prefetcher.finalize(now=3e6)
        assert prefetcher.stats.accuracy == pytest.approx(0.5)


class TestInlinedDramFastPath:
    """Pin the hand-inlined DRAM math to the real channel methods.

    ``TemporalPrefetcher._issue_prefetch`` and
    ``StridePrefetcher._run_ahead`` inline ``DramChannel.request(LOW)``
    and ``low_backlog`` for speed; if the channel model ever changes,
    these tests fail loudly instead of letting the copies drift.
    """

    def test_issue_prefetch_matches_channel_request(self):
        from repro.memory.dram import DramChannel, DramConfig, Priority
        from repro.memory.traffic import TrafficMeter
        from repro.prefetchers.ideal_tms import IdealTmsPrefetcher

        inlined = DramChannel(DramConfig())
        reference = DramChannel(DramConfig())
        prefetcher = IdealTmsPrefetcher(1, inlined, TrafficMeter())
        times = [0.0, 10.0, 10.0, 500.0, 501.3, 2000.7]
        for i, now in enumerate(times):
            assert prefetcher._issue_prefetch(0, 100 + i, now)
            expected = reference.request(now, Priority.LOW)
            entry = prefetcher.buffers[0].take(100 + i)
            assert entry is not None
            assert entry.arrival == expected
        assert inlined.stats == reference.stats
        assert inlined._busy_until_all == reference._busy_until_all
        assert inlined._busy_until_high == reference._busy_until_high

    def test_issue_prefetch_backlog_drop_matches_low_backlog(self):
        from repro.memory.dram import DramChannel, DramConfig, Priority
        from repro.memory.traffic import TrafficMeter
        from repro.prefetchers.ideal_tms import IdealTmsPrefetcher

        dram = DramChannel(DramConfig())
        prefetcher = IdealTmsPrefetcher(1, dram, TrafficMeter())
        # Saturate the channel well past the backlog limit.
        for _ in range(2000):
            dram.request(0.0, Priority.LOW)
        assert dram.low_backlog(0.0) > prefetcher._backlog_limit
        assert not prefetcher._issue_prefetch(0, 7, 0.0)
        assert prefetcher.stats.dropped == 1

    def test_stride_run_ahead_matches_channel_request(self):
        from repro.memory.dram import DramChannel, DramConfig, Priority
        from repro.prefetchers.stride import StridePrefetcher

        inlined = DramChannel(DramConfig())
        reference = DramChannel(DramConfig())
        stride = StridePrefetcher(1, inlined, degree=2)
        # Train a +1 stride: third access confirms and runs ahead.
        for i, block in enumerate((10, 11, 12)):
            stride.train(0, block, float(i))
        issued = stride.stats.issued
        assert issued == 2
        expected = [
            reference.request(2.0, Priority.LOW) for _ in range(issued)
        ]
        arrivals = sorted(
            entry.arrival
            for entry in stride.buffers[0].drain()
        )
        assert arrivals == sorted(expected)
        assert inlined.stats == reference.stats
