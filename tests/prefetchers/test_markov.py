"""Unit tests for the Markov (pair-wise) prefetcher."""

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficMeter
from repro.prefetchers.markov import MarkovPrefetcher


def make_markov(**overrides) -> MarkovPrefetcher:
    parameters = dict(cores=1, dram=DramChannel(), traffic=TrafficMeter())
    parameters.update(overrides)
    return MarkovPrefetcher(**parameters)


def replay(prefetcher, blocks, start=0.0, core=0):
    covered = []
    now = start
    for block in blocks:
        if prefetcher.consume(core, block, now) is not None:
            covered.append(block)
        else:
            prefetcher.on_demand_miss(core, block, now)
        now += 300.0
    return covered


class TestPairwiseCorrelation:
    def test_learns_successor_pairs(self):
        prefetcher = make_markov()
        sequence = [1, 2, 3, 4, 5]
        replay(prefetcher, sequence)
        covered = replay(prefetcher, sequence, start=1e6)
        assert covered == [2, 3, 4, 5]

    def test_remembers_multiple_successors(self):
        prefetcher = make_markov(successors_per_entry=2)
        replay(prefetcher, [1, 2, 9, 9, 9])
        replay(prefetcher, [1, 3, 9, 9, 9], start=1e6)
        prefetcher.on_demand_miss(0, 1, now=2e6)
        buffered = prefetcher.buffers[0]
        assert 2 in buffered and 3 in buffered

    def test_successor_list_bounded(self):
        prefetcher = make_markov(successors_per_entry=2)
        for i in range(5):
            replay(prefetcher, [1, 100 + i], start=i * 1e6)
        successors = prefetcher._table[1]
        assert len(successors) == 2

    def test_table_capacity_lru(self):
        prefetcher = make_markov(max_entries=4)
        replay(prefetcher, list(range(100, 120)))
        assert len(prefetcher._table) <= 4

    def test_prefetch_chains_extend_through_hits(self):
        prefetcher = make_markov()
        sequence = [10, 11, 12, 13]
        replay(prefetcher, sequence)
        covered = replay(prefetcher, sequence, start=1e6)
        # Pair-wise chains keep re-predicting one step ahead.
        assert covered == [11, 12, 13]

    def test_repeated_same_block_not_learned(self):
        prefetcher = make_markov()
        replay(prefetcher, [5, 5, 5])
        assert 5 not in prefetcher._table
