"""Unit tests for the fixed-prefetch-depth (single-table) design."""

import pytest

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.fixed_depth import FixedDepthPrefetcher


def make_fixed(depth: int = 4, **overrides) -> FixedDepthPrefetcher:
    parameters = dict(
        cores=1,
        dram=DramChannel(),
        traffic=TrafficMeter(),
        depth=depth,
    )
    parameters.update(overrides)
    return FixedDepthPrefetcher(**parameters)


def replay(prefetcher, blocks, start=0.0):
    covered = []
    now = start
    for block in blocks:
        if prefetcher.consume(0, block, now) is not None:
            covered.append(block)
        else:
            prefetcher.on_demand_miss(0, block, now)
        now += 300.0
    return covered


class TestFragmentation:
    def test_depth_bounds_prefetches_per_lookup(self):
        prefetcher = make_fixed(depth=3)
        sequence = list(range(100, 130))
        replay(prefetcher, sequence)
        lookups_before = prefetcher.stats.lookups
        covered = replay(prefetcher, sequence, start=1e6)
        # Every fragment boundary is an uncovered miss -> a new lookup:
        # ~ len / (depth + 1) uncovered misses in the second pass.
        uncovered = len(sequence) - len(covered)
        assert uncovered >= len(sequence) // (3 + 1)
        assert prefetcher.stats.lookups - lookups_before == uncovered

    def test_deeper_fragments_cover_more(self):
        shallow = make_fixed(depth=2)
        deep = make_fixed(depth=12)
        sequence = list(range(200, 260))
        replay(shallow, sequence)
        replay(deep, sequence)
        covered_shallow = replay(shallow, sequence, start=1e6)
        covered_deep = replay(deep, sequence, start=1e6)
        assert len(covered_deep) > len(covered_shallow)

    def test_lookup_traffic_charged_when_enabled(self):
        prefetcher = make_fixed(
            depth=4, lookup_rounds=1, charge_lookup_traffic=True
        )
        sequence = list(range(300, 320))
        replay(prefetcher, sequence)
        replay(prefetcher, sequence, start=1e6)
        assert (
            prefetcher.traffic.bytes_for(TrafficCategory.LOOKUP_STREAMS) > 0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_fixed(depth=0)
        with pytest.raises(ValueError):
            make_fixed(depth=2, lookup_rounds=-1)

    def test_lookup_latency_delays_first_prefetch(self):
        fast = make_fixed(depth=8, lookup_rounds=0)
        slow = make_fixed(depth=8, lookup_rounds=2)
        sequence = list(range(400, 420))
        replay(fast, sequence)
        replay(slow, sequence)
        fast.on_demand_miss(0, 400, now=1e6)
        slow.on_demand_miss(0, 400, now=1e6)
        fast_entry = fast.buffers[0].take(401)
        slow_entry = slow.buffers[0].take(401)
        assert fast_entry is not None and slow_entry is not None
        assert slow_entry.arrival > fast_entry.arrival
