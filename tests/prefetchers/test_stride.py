"""Unit tests for the base system's stride prefetcher."""

from repro.memory.dram import DramChannel
from repro.prefetchers.stride import StridePrefetcher


def make_stride(**overrides) -> StridePrefetcher:
    parameters = dict(cores=1, dram=DramChannel(), degree=4)
    parameters.update(overrides)
    return StridePrefetcher(**parameters)


def scan(prefetcher: StridePrefetcher, blocks, core: int = 0):
    """Feed a block sequence through probe+train; returns covered list."""
    covered = []
    now = 0.0
    for block in blocks:
        if prefetcher.probe(core, block):
            covered.append(block)
        prefetcher.train(core, block, now)
        now += 50.0
    return covered


class TestStrideDetection:
    def test_covers_unit_stride_scan(self):
        prefetcher = make_stride()
        covered = scan(prefetcher, range(0, 64))
        # After the 2-access confirmation, the run-ahead covers the rest.
        assert len(covered) >= 56

    def test_covers_non_unit_stride(self):
        prefetcher = make_stride()
        covered = scan(prefetcher, range(0, 256, 4))
        assert len(covered) >= 50

    def test_ignores_random_pattern(self):
        import numpy as np

        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 1_000_000, size=200)
        prefetcher = make_stride()
        covered = scan(prefetcher, list(blocks))
        assert len(covered) <= 2

    def test_stride_continues_across_regions(self):
        prefetcher = make_stride()
        run = list(range(0, StridePrefetcher.REGION_BLOCKS * 3))
        covered = scan(prefetcher, run)
        # Without continuation seeding, every 64-block region would pay
        # the 2-miss training cost again (~6 uncovered); with it, only
        # the initial training misses remain.
        uncovered = [b for b in run if b not in covered]
        assert len(uncovered) <= 4

    def test_tracker_capacity_lru(self):
        prefetcher = make_stride(tracker_entries=2)
        scan(prefetcher, [0, 1, 2])            # region 0 confirmed
        scan(prefetcher, [1000, 1001])         # region ~15
        scan(prefetcher, [2000, 2001])         # region ~31 (evicts region 0)
        assert len(prefetcher._trackers[0]) <= 2


class TestAccounting:
    def test_useful_counted_on_probe_hits(self):
        prefetcher = make_stride()
        scan(prefetcher, range(32))
        assert prefetcher.stats.useful > 0
        assert prefetcher.stats.issued >= prefetcher.stats.useful

    def test_finalize_counts_leftovers(self):
        prefetcher = make_stride()
        scan(prefetcher, range(16))
        prefetcher.finalize()
        assert prefetcher.stats.erroneous > 0

    def test_zero_stride_is_ignored(self):
        prefetcher = make_stride()
        covered = scan(prefetcher, [5, 5, 5, 5, 5])
        assert covered == []
        assert prefetcher.stats.issued == 0
