"""Unit tests for the idealized TMS prefetcher."""

from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficMeter
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher, _MagicIndex


def make_ideal(**overrides) -> IdealTmsPrefetcher:
    parameters = dict(
        cores=2,
        dram=DramChannel(),
        traffic=TrafficMeter(),
        lookahead=8,
    )
    parameters.update(overrides)
    return IdealTmsPrefetcher(**parameters)


def replay(prefetcher, core, blocks, start=0.0):
    covered = []
    now = start
    for block in blocks:
        if prefetcher.consume(core, block, now) is not None:
            covered.append(block)
        else:
            prefetcher.on_demand_miss(core, block, now)
        now += 300.0
    return covered


class TestMagicIndex:
    def test_lookup_returns_latest(self):
        index = _MagicIndex()
        index.update(5, core=0, position=3)
        index.update(5, core=1, position=9)
        assert index.lookup(5) == (1, 9)

    def test_entry_cap_evicts_lru(self):
        index = _MagicIndex(max_entries=2)
        index.update(1, 0, 0)
        index.update(2, 0, 1)
        index.lookup(1)  # refresh 1
        index.update(3, 0, 2)  # evicts 2
        assert index.lookup(2) is None
        assert index.lookup(1) is not None

    def test_uncapped_never_evicts(self):
        index = _MagicIndex()
        for block in range(1000):
            index.update(block, 0, block)
        assert len(index) == 1000


class TestStreaming:
    def test_second_occurrence_is_covered(self):
        prefetcher = make_ideal()
        sequence = list(range(100, 130))
        assert replay(prefetcher, 0, sequence) == []
        covered = replay(prefetcher, 0, sequence, start=1e6)
        assert len(covered) >= len(sequence) - 2

    def test_cross_core_stream_sharing(self):
        prefetcher = make_ideal()
        sequence = list(range(200, 230))
        replay(prefetcher, 0, sequence)
        covered = replay(prefetcher, 1, sequence, start=1e6)
        assert len(covered) >= len(sequence) - 2

    def test_unrelated_miss_keeps_stream(self):
        prefetcher = make_ideal()
        sequence = list(range(300, 320))
        replay(prefetcher, 0, sequence)
        # Interleave never-seen noise misses into the second pass.
        mixed = []
        for i, block in enumerate(sequence):
            mixed.append(block)
            if i % 5 == 2:
                mixed.append(90_000 + i)
        covered = replay(prefetcher, 0, mixed, start=1e6)
        assert len(covered) >= len(sequence) - 3

    def test_histories_record_hits_and_misses(self):
        prefetcher = make_ideal()
        sequence = list(range(400, 420))
        replay(prefetcher, 0, sequence)
        replay(prefetcher, 0, sequence, start=1e6)
        assert len(prefetcher.histories[0]) == 2 * len(sequence)

    def test_entry_cap_degrades_coverage(self):
        big = make_ideal()
        small = make_ideal(max_index_entries=8)
        sequence = list(range(500, 600))
        replay(big, 0, sequence)
        replay(small, 0, sequence)
        covered_big = replay(big, 0, sequence, start=1e6)
        covered_small = replay(small, 0, sequence, start=2e6)
        assert len(covered_small) < len(covered_big)

    def test_stream_stops_at_recording_head(self):
        prefetcher = make_ideal()
        sequence = list(range(700, 712))
        replay(prefetcher, 0, sequence)
        prefetcher.on_demand_miss(0, sequence[-1], now=1e6)
        # The previous occurrence of the last block has no successors:
        # the stream engine must deactivate, not spin.
        assert prefetcher._streams[0] is None
