"""Unit tests for the prior-design traffic models (Fig. 1 right)."""

import pytest

from repro.prefetchers.traffic_models import (
    DESIGN_PARAMETERS,
    DesignParameters,
    PriorDesign,
    model_design,
    prior_design_overheads,
)


class TestModelDesign:
    def test_ulmt_update_follows_every_lookup(self):
        bar = model_design(PriorDesign.ULMT, mlp=1.0)
        p = DESIGN_PARAMETERS[PriorDesign.ULMT]
        remaining = 1.0 - p.coverage
        assert bar.metadata_lookup == pytest.approx(
            remaining * p.lookup_accesses
        )
        assert bar.metadata_update == pytest.approx(
            remaining * p.update_accesses
        )

    def test_ebcp_lookups_scale_with_mlp(self):
        low = model_design(PriorDesign.EBCP, mlp=1.0)
        high = model_design(PriorDesign.EBCP, mlp=2.0)
        assert high.metadata_lookup == pytest.approx(
            low.metadata_lookup / 2.0
        )

    def test_tse_updates_on_hits_too(self):
        bar = model_design(PriorDesign.TSE, mlp=1.5)
        p = DESIGN_PARAMETERS[PriorDesign.TSE]
        assert bar.metadata_update == pytest.approx(p.update_accesses)

    def test_erroneous_from_accuracy(self):
        parameters = DesignParameters(
            lookup_accesses=1.0,
            lookup_per_epoch=False,
            update_accesses=1.0,
            update_on_hits=False,
            coverage=0.5,
            accuracy=0.5,
        )
        bar = model_design(PriorDesign.ULMT, mlp=1.0, parameters=parameters)
        # accuracy 50% -> one erroneous per useful -> 0.5 per read.
        assert bar.erroneous_prefetches == pytest.approx(0.5)

    def test_rejects_mlp_below_one(self):
        with pytest.raises(ValueError):
            model_design(PriorDesign.ULMT, mlp=0.5)

    def test_total_is_sum(self):
        bar = model_design(PriorDesign.TSE, mlp=1.3)
        assert bar.total == pytest.approx(
            bar.erroneous_prefetches
            + bar.metadata_lookup
            + bar.metadata_update
        )


class TestSuiteAveraging:
    def test_averages_across_workloads(self):
        overheads = prior_design_overheads({"a": 1.0, "b": 2.0})
        single_a = model_design(PriorDesign.EBCP, 1.0)
        single_b = model_design(PriorDesign.EBCP, 2.0)
        expected = (single_a.metadata_lookup + single_b.metadata_lookup) / 2
        assert overheads[PriorDesign.EBCP].metadata_lookup == pytest.approx(
            expected
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            prior_design_overheads({})

    def test_paper_scale_overheads(self):
        """The headline: roughly 3x the baseline read traffic."""
        overheads = prior_design_overheads({"oltp": 1.3, "web": 1.5})
        average = sum(bar.total for bar in overheads.values()) / 3
        assert 1.5 <= average <= 4.0
