"""Simulation-as-a-service: daemon, single-flight, client.

Every test boots a real daemon (asyncio loop in a background thread,
ephemeral port) against a per-test store and talks to it over actual
HTTP through :class:`ServiceClient` — the same path ``repro client``
uses.  Slow/failing executors are injected to pin timeout and retry
semantics without waiting on real worker deaths.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ServiceError,
    job_from_spec,
    serve_in_thread,
    service_key,
)
from repro.service.client import job_spec
from repro.sim.runner import PrefetcherKind, run_job
from repro.sim.session import SimSession
from repro.sim.store import ArtifactStore


def _spec(seed: int = 7, workload: str = "web-apache", **extra) -> dict:
    spec = job_spec(workload, scale="test", cores=2, seed=seed)
    spec.update(extra)
    return spec


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        port=0,
        store_dir=str(tmp_path / "store"),
        timeout_s=30.0,
        retries=1,
        max_concurrent=2,
        counter_flush_every=1,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _session(config: ServiceConfig) -> SimSession:
    return SimSession(enabled=True, store=ArtifactStore(config.store_dir))


# ----------------------------------------------------------------------
# Keys and specs (no daemon needed).
# ----------------------------------------------------------------------


def test_service_key_is_stable_and_spelling_insensitive():
    base = service_key(job_from_spec(_spec()))
    assert base == service_key(job_from_spec(_spec()))
    assert base != service_key(job_from_spec(_spec(seed=8)))
    assert base != service_key(job_from_spec(_spec(kind="baseline")))
    # Mix spellings canonicalize through trace_key().
    doubled = service_key(job_from_spec(_spec(workload="mix:2xoltp-db2")))
    spelled = service_key(
        job_from_spec(_spec(workload="mix:oltp-db2+oltp-db2"))
    )
    assert doubled == spelled


def test_job_from_spec_rejects_malformed_specs():
    with pytest.raises(ValueError, match="workload"):
        job_from_spec(_spec(workload="not-a-workload"))
    with pytest.raises(ValueError, match="scale"):
        job_from_spec(_spec(scale="galactic"))
    with pytest.raises(ValueError):
        job_from_spec(_spec(kind="psychic"))
    with pytest.raises(ValueError, match="stms_overrides"):
        job_from_spec(_spec(stms_overrides=[1, 2]))
    with pytest.raises(ValueError, match="JSON object"):
        job_from_spec("just a string")


def test_job_from_spec_round_trips_fields():
    job = job_from_spec(
        _spec(stms_overrides={"sampling_probability": 0.5}, cores=2)
    )
    assert job.kind is PrefetcherKind.STMS
    assert job.scale == "test"
    assert job.stms_overrides == (("sampling_probability", 0.5),)


# ----------------------------------------------------------------------
# Warm path: results already in the shared store.
# ----------------------------------------------------------------------


def test_warm_submit_served_from_store_without_launching(tmp_path):
    config = _config(tmp_path)
    # Populate the store out-of-band, as a sweep run would have.
    warm_session = _session(config)
    run_job(job_from_spec(_spec()), warm_session)
    daemon = ServiceDaemon(config)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        response = client.submit(_spec())
        assert response["state"] == "done"
        assert response["warm"] is True
        assert response["result"]["schema"]  # the stored record, inline
        stats = client.stats()
    assert stats["singleflight"] == {"launched": 0, "coalesced": 0}
    assert stats["counters"]["service_warm_hits"] == 1
    assert "service_cold_misses" not in stats["counters"]


def test_cold_result_write_back_warms_other_sessions(tmp_path):
    """A service-computed result is a store hit for plain sessions."""
    config = _config(tmp_path)
    daemon = ServiceDaemon(config)
    with serve_in_thread(daemon):
        response = ServiceClient(daemon.url).submit(_spec(seed=11))
    assert response["state"] == "done"
    assert response["warm"] is False
    fresh = _session(config)
    before = fresh.store.stats.result_hits
    run_job(job_from_spec(_spec(seed=11)), fresh)
    assert fresh.store.stats.result_hits == before + 1


# ----------------------------------------------------------------------
# Cold path: single-flight, timeout, retry.
# ----------------------------------------------------------------------


def test_cold_single_flight_runs_one_simulation_for_two_clients(tmp_path):
    config = _config(tmp_path)
    session = _session(config)
    executions = []
    release = threading.Event()

    def executor(job):
        executions.append(job)
        # Hold the flight open until both clients have joined it.
        assert release.wait(10.0)
        return run_job(job, session)

    daemon = ServiceDaemon(config, session=session, executor=executor)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        spec = _spec(seed=23)
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(client.submit, spec) for _ in range(2)]
            # Both requests must be in the daemon before the (single)
            # simulation is allowed to finish.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                counters = client.stats()["counters"]
                if counters.get("service_single_flight_coalesced"):
                    break
                time.sleep(0.02)
            release.set()
            responses = [future.result(timeout=30) for future in futures]
        payloads = [client.fetch_bytes(spec) for _ in range(2)]
        stats = client.stats()
    # Exactly one simulation ran; both clients got the same answer.
    assert len(executions) == 1
    assert [r["state"] for r in responses] == ["done", "done"]
    assert responses[0]["result"] == responses[1]["result"]
    assert payloads[0] == payloads[1]  # bit-identical stored record
    assert stats["singleflight"] == {"launched": 1, "coalesced": 1}
    assert stats["counters"]["service_single_flight_launched"] == 1
    assert stats["counters"]["service_single_flight_coalesced"] == 1
    assert stats["counters"]["service_simulations"] == 1


def test_waiter_timeout_abandons_without_cancelling_the_flight(tmp_path):
    config = _config(tmp_path)
    session = _session(config)
    release = threading.Event()

    def executor(job):
        assert release.wait(10.0)
        return run_job(job, session)

    daemon = ServiceDaemon(config, session=session, executor=executor)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        spec = _spec(seed=31)
        response = client.submit(spec, timeout_s=0.2)
        # This waiter gave up...
        assert response["state"] == "running"
        assert response["timed_out"] is True
        with pytest.raises(ServiceError) as excinfo:
            client.fetch(spec)
        assert excinfo.value.status == 404
        # ...but the flight keeps running and completes for everyone.
        release.set()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status = client.status(spec)
            if status["state"] == "done":
                break
            time.sleep(0.05)
        assert status["state"] == "done"
        record = client.fetch(spec)
        stats = client.stats()
    assert record["schema"]
    assert stats["counters"]["service_timeouts"] == 1
    assert stats["counters"]["service_simulations"] == 1


def test_retry_after_worker_death_then_success(tmp_path):
    config = _config(tmp_path, retries=1)
    session = _session(config)
    attempts = []

    def executor(job):
        attempts.append(job)
        if len(attempts) == 1:
            raise RuntimeError("worker died")
        return run_job(job, session)

    daemon = ServiceDaemon(config, session=session, executor=executor)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        response = client.submit(_spec(seed=41))
        status = client.status(_spec(seed=41))
        stats = client.stats()
    assert response["state"] == "done"
    assert len(attempts) == 2
    assert status["attempts"] == 2
    assert stats["counters"]["service_worker_failures"] == 1
    assert stats["counters"]["service_retries"] == 1
    assert stats["counters"]["service_simulations"] == 1


def test_failure_after_retry_budget_reports_and_then_retries_fresh(
    tmp_path,
):
    config = _config(tmp_path, retries=1)
    session = _session(config)
    attempts = []

    def executor(job):
        attempts.append(job)
        if len(attempts) <= 2:
            raise RuntimeError("worker died")
        return run_job(job, session)

    daemon = ServiceDaemon(config, session=session, executor=executor)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        spec = _spec(seed=43)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec)
        assert excinfo.value.status == 500
        assert "2 attempts" in str(excinfo.value)
        assert client.status(spec)["state"] == "failed"
        # The settled flight left the inflight table, so a later
        # request launches a fresh computation — which now succeeds.
        response = client.submit(spec)
        stats = client.stats()
    assert len(attempts) == 3
    assert response["state"] == "done"
    assert stats["singleflight"]["launched"] == 2
    assert stats["counters"]["service_worker_failures"] == 2


def test_no_wait_submit_returns_running_then_completes(tmp_path):
    config = _config(tmp_path)
    daemon = ServiceDaemon(config)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        spec = _spec(seed=47)
        response = client.submit(spec, wait=False)
        assert response["state"] == "running"
        assert response["key"] == service_key(job_from_spec(spec))
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(spec)["state"] == "done":
                break
            time.sleep(0.05)
        record = client.fetch(spec)
    assert record["schema"]


# ----------------------------------------------------------------------
# HTTP surface: errors, GET routes, health, stats.
# ----------------------------------------------------------------------


def test_http_surface_errors_and_get_routes(tmp_path):
    config = _config(tmp_path)
    daemon = ServiceDaemon(config)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        assert client.health() is True
        assert client.wait_until_ready(deadline_s=2.0)
        # Malformed spec -> 400 with the ValueError's message.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(_spec(workload="nope"))
        assert excinfo.value.status == 400
        assert "unknown workload" in str(excinfo.value)
        # Unknown endpoint -> 404; bad JSON -> 400.
        status, _ = client._request("GET", "/nope")
        assert status == 404
        status, payload = client._request("POST", "/fetch", payload=None)
        assert status == 400 or payload.get("error")
        # Status by key for a never-seen key -> unknown, fetch -> 404.
        assert client.status(_spec(seed=97))["state"] == "unknown"
        with pytest.raises(ServiceError) as excinfo:
            client.fetch(_spec(seed=97))
        assert excinfo.value.status == 404
        status, payload = client._request(
            "GET", "/status/deadbeef"
        )
        assert (status, payload["state"]) == (200, "unknown")
        stats = client.stats()
    assert stats["inflight"] == 0
    assert stats["counters"]["service_status_requests"] >= 2
    assert stats["counters"]["service_submit_errors"] == 1


def test_request_log_and_counters_persist_after_shutdown(tmp_path):
    config = _config(tmp_path)
    daemon = ServiceDaemon(config)
    with serve_in_thread(daemon):
        client = ServiceClient(daemon.url)
        client.submit(_spec(seed=53))
        client.submit(_spec(seed=53))  # second hit is warm
    # Counters flushed to the store on stop(); a fresh store sees them.
    counters = ArtifactStore(config.store_dir).counters()
    assert counters["service_submit_requests"] == 2
    assert counters["service_warm_hits"] == 1
    assert counters["service_single_flight_launched"] == 1
    assert counters["service_submit_ms_total"] >= 2
    log_path = tmp_path / "store" / "service-log.jsonl"
    lines = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
    ]
    assert len(lines) == 2
    assert {line["endpoint"] for line in lines} == {"submit"}
    assert all(line["latency_ms"] > 0 for line in lines)
