"""The object-store daemon and the protocol surface it serves.

Client-side behaviour (read-through, write-back, breaker) lives in
``tests/sim/test_remote.py``; these tests pin the *server* contract:
the schema stamp, digest headers on both directions, upload rejection,
path hygiene, and the simulation daemon advertising the same protocol.
"""

import http.client
import json

import pytest

from repro.service import ObjectStoreDaemon, ServiceConfig, ServiceDaemon
from repro.service import serve_in_thread
from repro.sim.remote import DIGEST_HEADER, SCHEMA_HEADER, payload_digest
from repro.sim.store import SCHEMA_VERSION, ArtifactStore, result_digest

from tests.sim.test_store import make_result


@pytest.fixture()
def daemon(tmp_path):
    server = ObjectStoreDaemon(str(tmp_path / "store"))
    with serve_in_thread(server):
        yield server


def _request(daemon, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(
        daemon.host, daemon.port, timeout=10
    )
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        raw = b"" if method == "HEAD" else response.read()
        lowered = {
            name.lower(): value for name, value in response.getheaders()
        }
        return response.status, lowered, raw
    finally:
        connection.close()


class TestObjectProtocol:
    def test_schema_endpoint_stamps_and_is_read_only(self, daemon):
        status, headers, raw = _request(daemon, "GET", "/schema")
        assert status == 200
        assert json.loads(raw)["schema"] == SCHEMA_VERSION
        assert headers[SCHEMA_HEADER.lower()] == str(SCHEMA_VERSION)
        status, _, _ = _request(daemon, "PUT", "/schema", body=b"{}")
        assert status == 405

    def test_get_serves_digest_header_and_head_probes(self, daemon):
        digest = result_digest(("served",))
        daemon.store.save_result(digest, make_result())
        status, headers, raw = _request(daemon, "GET", f"/result/{digest}")
        assert status == 200
        assert headers[DIGEST_HEADER.lower()] == payload_digest(raw)
        assert headers["content-type"] == "application/octet-stream"
        status, _, _ = _request(daemon, "HEAD", f"/result/{digest}")
        assert status == 200
        status, _, _ = _request(
            daemon, "HEAD", f"/result/{result_digest(('no',))}"
        )
        assert status == 404

    def test_get_missing_is_404(self, daemon):
        status, _, _ = _request(
            daemon, "GET", f"/trace/{result_digest(('no',))}"
        )
        assert status == 404

    def test_put_round_trips_and_is_digest_checked(self, daemon):
        digest = result_digest(("up",))
        payload = b"payload-bytes"
        status, headers, _ = _request(
            daemon, "PUT", f"/result/{digest}", body=payload,
            headers={DIGEST_HEADER: payload_digest(payload)},
        )
        assert status == 200
        status, _, raw = _request(daemon, "GET", f"/result/{digest}")
        assert status == 200 and raw == payload

    def test_put_with_wrong_digest_rejected_before_disk(self, daemon):
        digest = result_digest(("rej",))
        status, _, raw = _request(
            daemon, "PUT", f"/result/{digest}", body=b"corrupted",
            headers={DIGEST_HEADER: "0" * 32},
        )
        assert status == 400
        status, _, _ = _request(daemon, "GET", f"/result/{digest}")
        assert status == 404  # nothing touched disk

    def test_malformed_digests_rejected(self, daemon):
        for bad in ("..%2f..%2fetc", "UPPER", "xx", "a" * 65):
            status, _, _ = _request(daemon, "GET", f"/result/{bad}")
            assert status in (400, 404)
            assert "error" in json.loads(
                _request(daemon, "GET", f"/result/{bad}")[2]
            )
        # Definitely-traversal shapes are a hard 400.
        status, _, _ = _request(daemon, "GET", "/result/deadbeef%2e%2e")
        assert status == 400

    def test_unknown_kind_is_404(self, daemon):
        status, _, _ = _request(daemon, "GET", "/blob/deadbeefdeadbeef")
        assert status == 404

    def test_stats_counts_protocol_activity(self, daemon):
        digest = result_digest(("counted",))
        payload = b"counted-bytes"
        _request(
            daemon, "PUT", f"/result/{digest}", body=payload,
            headers={DIGEST_HEADER: payload_digest(payload)},
        )
        _request(daemon, "GET", f"/result/{digest}")
        _request(daemon, "GET", f"/result/{result_digest(('miss',))}")
        status, _, raw = _request(daemon, "GET", "/stats")
        assert status == 200
        counters = json.loads(raw)["counters"]
        assert counters["store_serve_puts"] == 1
        assert counters["store_serve_gets"] == 1
        assert counters["store_serve_misses"] == 1

    def test_healthz(self, daemon):
        status, _, raw = _request(daemon, "GET", "/healthz")
        assert status == 200
        assert json.loads(raw)["ok"] is True

    def test_served_store_never_chases_a_remote(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REMOTE_URL", "http://127.0.0.1:19999")
        server = ObjectStoreDaemon(str(tmp_path / "loop"))
        assert server.store.remote is None


class TestServiceDaemonPeer:
    """``repro serve`` doubles as an object-store peer."""

    @pytest.fixture()
    def service(self, tmp_path):
        daemon = ServiceDaemon(
            ServiceConfig(port=0, store_dir=str(tmp_path / "store"))
        )
        with serve_in_thread(daemon):
            yield daemon

    def test_advertises_schema_and_objects(self, service):
        status, _, raw = _request(service, "GET", "/schema")
        assert status == 200
        assert json.loads(raw)["schema"] == SCHEMA_VERSION
        digest = result_digest(("peer",))
        service.store.save_result(digest, make_result())
        status, headers, raw = _request(
            service, "GET", f"/result/{digest}"
        )
        assert status == 200
        assert headers[DIGEST_HEADER.lower()] == payload_digest(raw)

    def test_service_routes_still_first_class(self, service):
        status, _, raw = _request(service, "GET", "/healthz")
        assert status == 200
        assert json.loads(raw)["ok"] is True
