"""Tests of the experiment drivers (fast, reduced-scope runs).

Full-figure regeneration lives in ``benchmarks/``; here each driver runs
on a reduced workload set at the ``test`` scale to verify structure,
rendering, and the paper's core shape claims.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import (
    ExperimentResult,
    check_monotone,
    geometric_mean,
)


class TestCommonHelpers:
    def test_check_monotone(self):
        assert check_monotone([1.0, 1.1, 1.2])
        assert check_monotone([1.0, 0.99, 1.2], tolerance=0.02)
        assert not check_monotone([1.0, 0.5, 1.2])
        assert check_monotone([3.0, 2.0, 1.0], increasing=False)

    def test_check_monotone_tolerance_scales_with_magnitude(self):
        # The tolerance is relative to the series magnitude: a 1.5%
        # dip in a series around 1000 is the same noise as a 1.5% dip
        # in a series around 1 — the old absolute 0.02 slack failed
        # the former and passed the latter.
        assert check_monotone([1000.0, 985.0, 1010.0], tolerance=0.02)
        assert not check_monotone([1000.0, 950.0, 1010.0],
                                  tolerance=0.02)
        assert check_monotone([1010.0, 990.0, 900.0], increasing=False,
                              tolerance=0.02)

    def test_check_monotone_small_scale_behaviour_unchanged(self):
        # For magnitudes <= 1 the relative slack bottoms out at the
        # tolerance itself, so the historical small-scale semantics
        # (shape checks on coverage fractions) are untouched.
        assert check_monotone([0.5, 0.49, 0.6], tolerance=0.02)
        assert not check_monotone([0.5, 0.4, 0.6], tolerance=0.02)

    def test_check_monotone_absolute_floor(self):
        # By default the absolute slack floor equals the tolerance
        # (the historical behaviour); an explicit floor lets a caller
        # tighten it for near-zero series.
        assert check_monotone([1e-4, 0.5e-4, 1e-4], tolerance=0.02)
        assert not check_monotone([1e-4, 0.5e-4, 1e-4],
                                  tolerance=0.02, floor=1e-5)
        assert check_monotone([], tolerance=0.02)

    def test_geometric_mean(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_registry_complete(self):
        expected = {
            "fig1-left", "fig1-right", "fig4", "fig5-left", "fig5-right",
            "fig6-left", "fig6-right", "fig7", "fig8", "fig9", "table2",
            "mix-contention",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")


@pytest.mark.slow
class TestDriverStructure:
    """Each driver produces a well-formed result on a tiny slice."""

    def _assert_result(self, result: ExperimentResult):
        assert result.rendered
        assert result.checks
        assert isinstance(result.render(), str)
        assert result.data

    def test_fig1_left(self):
        result = run_experiment(
            "fig1-left", scale="test", workloads=("oltp-db2",),
            caps=(256, 4096, 65536),
        )
        self._assert_result(result)

    def test_fig1_right(self):
        result = run_experiment(
            "fig1-right", scale="test", workloads=("web-apache",)
        )
        self._assert_result(result)
        assert result.passed

    def test_fig4(self):
        result = run_experiment(
            "fig4", scale="test", workloads=("oltp-db2", "dss-db2")
        )
        self._assert_result(result)

    def test_fig5_history(self):
        result = run_experiment(
            "fig5-left", scale="test", workloads=("sci-ocean",),
            sizes=(1024, 4096, 16384),
        )
        self._assert_result(result)

    def test_fig5_index(self):
        result = run_experiment(
            "fig5-right", scale="test", workloads=("oltp-db2",),
            sizes=(64, 512, 2048),
        )
        self._assert_result(result)

    def test_fig6_cdf(self):
        result = run_experiment(
            "fig6-left", scale="test", workloads=("web-apache",)
        )
        self._assert_result(result)

    def test_fig6_depth(self):
        result = run_experiment(
            "fig6-right", scale="test", workloads=("oltp-db2",),
            depths=(2, 8),
        )
        self._assert_result(result)

    def test_fig7(self):
        result = run_experiment(
            "fig7", scale="test", workloads=("web-apache",)
        )
        self._assert_result(result)

    def test_fig8(self):
        result = run_experiment(
            "fig8", scale="test", workloads=("oltp-db2",),
            probabilities=(0.0625, 0.125, 1.0),
        )
        self._assert_result(result)

    def test_fig9(self):
        result = run_experiment(
            "fig9", scale="test", workloads=("web-apache", "sci-ocean")
        )
        self._assert_result(result)

    def test_table2(self):
        result = run_experiment(
            "table2", scale="test", workloads=("oltp-db2", "sci-moldyn")
        )
        self._assert_result(result)
        assert result.data["mlp"]["sci-moldyn"] >= 1.0

    def test_mix_contention(self):
        result = run_experiment(
            "mix-contention",
            scale="test",
            cores=2,
            workloads=("mix:oltp-db2+dss-db2",),
        )
        self._assert_result(result)
        point = result.data["mixes"]["mix:oltp-db2+dss-db2"]["l2x1"]
        assert set(point["stms"]["per_workload"]) == {
            "oltp-db2", "dss-db2",
        }
        assert point["speedup"] > 0.0
