"""Cross-module property tests: invariants that must hold under any
access pattern (hypothesis-driven failure injection).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import StmsConfig
from repro.core.stms import StmsPrefetcher
from repro.memory.dram import DramChannel, Priority
from repro.memory.traffic import TrafficCategory, TrafficMeter
from repro.prefetchers.ideal_tms import IdealTmsPrefetcher
from repro.sim.engine import SimConfig, Simulator
from repro.sim.runner import PrefetcherKind, make_factory

from tests.conftest import make_trace


def drive_prefetcher(prefetcher, accesses):
    """Feed (core, block) pairs through consume/on_demand_miss."""
    now = 0.0
    covered = 0
    for core, block in accesses:
        if prefetcher.consume(core, block, now) is not None:
            covered += 1
        else:
            prefetcher.on_demand_miss(core, block, now)
        now += 200.0
    return covered


access_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=300),
    ),
    max_size=400,
)


class TestStmsInvariants:
    @settings(max_examples=25, deadline=None)
    @given(access_lists)
    def test_accounting_balances(self, accesses):
        """useful + erroneous == issued after finalize, always."""
        stms = StmsPrefetcher(
            StmsConfig(cores=2, history_entries=768, index_buckets=64,
                       sampling_probability=0.5),
            DramChannel(),
            TrafficMeter(),
        )
        drive_prefetcher(stms, accesses)
        stms.finalize(now=1e9)
        stats = stms.stats
        assert stats.useful + stats.erroneous == stats.issued
        useful_bytes = stms.traffic.bytes_for(
            TrafficCategory.USEFUL_PREFETCH
        )
        erroneous_bytes = stms.traffic.bytes_for(
            TrafficCategory.ERRONEOUS_PREFETCH
        )
        assert useful_bytes + erroneous_bytes == stats.issued * 64

    @settings(max_examples=25, deadline=None)
    @given(access_lists)
    def test_history_heads_match_observed_events(self, accesses):
        """Every miss and prefetched hit is recorded exactly once."""
        stms = StmsPrefetcher(
            StmsConfig(cores=2, history_entries=768, index_buckets=64,
                       sampling_probability=1.0),
            DramChannel(),
            TrafficMeter(),
        )
        drive_prefetcher(stms, accesses)
        per_core = [0, 0]
        for core, _ in accesses:
            per_core[core] += 1
        for core in range(2):
            assert stms.histories[core].head == per_core[core]

    @settings(max_examples=20, deadline=None)
    @given(access_lists)
    def test_buffer_capacity_respected(self, accesses):
        stms = StmsPrefetcher(
            StmsConfig(cores=2, history_entries=768, index_buckets=64,
                       prefetch_buffer_blocks=8),
            DramChannel(),
            TrafficMeter(),
        )
        now = 0.0
        for core, block in accesses:
            if stms.consume(core, block, now) is None:
                stms.on_demand_miss(core, block, now)
            assert len(stms.buffers[core]) <= 8
            now += 200.0


class TestIdealInvariants:
    @settings(max_examples=25, deadline=None)
    @given(access_lists)
    def test_index_points_into_history(self, accesses):
        ideal = IdealTmsPrefetcher(2, DramChannel(), TrafficMeter())
        drive_prefetcher(ideal, accesses)
        for block, (core, position) in ideal.index._map.items():
            assert 0 <= position < len(ideal.histories[core])
            assert ideal.histories[core][position] == block


class TestEngineInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2000), min_size=1,
            max_size=300,
        ),
        st.booleans(),
    )
    def test_coverage_counts_partition_off_chip_reads(
        self, blocks, use_stms
    ):
        """fully + partially + uncovered + stride == off-chip reads."""
        trace = make_trace([blocks], warmup_fraction=0.0)
        from repro.memory.hierarchy import CmpConfig

        config = SimConfig(
            cmp=CmpConfig(
                cores=1,
                l1_size_bytes=512,
                l1_ways=2,
                l2_size_bytes=4096,
                l2_ways=4,
                l2_banks=2,
                l2_mshrs=8,
            )
        )
        kind = PrefetcherKind.STMS if use_stms else PrefetcherKind.BASELINE
        factory = make_factory(
            kind,
            stms_config=StmsConfig(cores=1, history_entries=768,
                                   index_buckets=64),
        )
        simulator = Simulator(config)
        result = simulator.run(trace, factory, kind.value)
        counts = result.coverage
        total = (
            counts.fully_covered
            + counts.partially_covered
            + counts.uncovered
            + counts.stride_covered
        )
        # Every trace record is measured (warmup 0) and every off-chip
        # read lands in exactly one bucket.
        assert total <= len(blocks)
        assert counts.coverage <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=5,
                    max_size=200))
    def test_clock_monotone_and_positive(self, blocks):
        trace = make_trace([blocks], warmup_fraction=0.0)
        from repro.memory.hierarchy import CmpConfig

        config = SimConfig(
            cmp=CmpConfig(
                cores=1,
                l1_size_bytes=512,
                l1_ways=2,
                l2_size_bytes=4096,
                l2_ways=4,
                l2_banks=2,
                l2_mshrs=8,
            )
        )
        result = Simulator(config).run(trace, None, "baseline")
        assert result.elapsed_cycles > 0
        assert result.measured_records == len(blocks)


class TestDramInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.booleans(),
            ),
            max_size=100,
        )
    )
    def test_completion_always_after_request(self, requests):
        channel = DramChannel()
        for now, high in requests:
            priority = Priority.HIGH if high else Priority.LOW
            completion = channel.request(now, priority)
            assert completion >= now + channel.config.access_latency_cycles
