"""Warn-once parsing of numeric REPRO_* environment knobs.

Satellite regression: ``REPRO_STORE_MAX_MB``,
``REPRO_STORE_TMP_MAX_AGE_S``, and the remote-tier numeric knobs used
to swallow malformed values silently; they now share the warn-once
RuntimeWarning behaviour of ``REPRO_JOBS`` via ``repro.envknobs``.
"""

import warnings

import pytest

from repro import envknobs
from repro.envknobs import env_float, env_int
from repro.sim import remote as remote_module
from repro.sim import store as store_module
from repro.sim.store import ArtifactStore


@pytest.fixture(autouse=True)
def _reset_warn_once(monkeypatch):
    """Fresh warn-once state per test (it is per-process by design)."""
    monkeypatch.setattr(envknobs, "_WARNED_ENV_KEYS", set())


class TestEnvFloat:
    def test_unset_and_empty_are_silent_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5
            monkeypatch.setenv("REPRO_TEST_KNOB", "")
            assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5

    def test_valid_value_never_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_float("REPRO_TEST_KNOB", 1.0) == 2.5

    @pytest.mark.parametrize("value", ["banana", "1.2.3", "0x10"])
    def test_invalid_value_warns_once(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_KNOB", value)
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB"):
            assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5
        # Once per knob per process, not once per read.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5


class TestEnvInt:
    @pytest.mark.parametrize("value", ["two", "2.5", "1e3"])
    def test_invalid_value_warns_once(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_KNOB", value)
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB"):
            assert env_int("REPRO_TEST_KNOB", 7) == 7
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_valid_value_never_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 42

    def test_distinct_knobs_each_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOB_A", "x")
        monkeypatch.setenv("REPRO_KNOB_B", "y")
        with pytest.warns(RuntimeWarning, match="REPRO_KNOB_A"):
            env_int("REPRO_KNOB_A", 1)
        with pytest.warns(RuntimeWarning, match="REPRO_KNOB_B"):
            env_int("REPRO_KNOB_B", 1)


class TestStoreKnobs:
    @pytest.mark.parametrize("value", ["lots", "10MB"])
    def test_store_max_mb_misparse_warns(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STORE_MAX_MB", value)
        with pytest.warns(RuntimeWarning, match="REPRO_STORE_MAX_MB"):
            assert ArtifactStore._max_bytes_from_env() is None

    def test_store_max_mb_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MAX_MB", "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (
                ArtifactStore._max_bytes_from_env() == 2 * 1024 * 1024
            )

    @pytest.mark.parametrize("value", ["soon", "1h"])
    def test_tmp_max_age_misparse_warns(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_STORE_TMP_MAX_AGE_S", value)
        with pytest.warns(
            RuntimeWarning, match="REPRO_STORE_TMP_MAX_AGE_S"
        ):
            age = ArtifactStore._stale_temp_age_from_env()
        assert age == store_module._STALE_TEMP_SECONDS


class TestRemoteKnobs:
    @pytest.mark.parametrize(
        "name, reader, default",
        [
            ("REPRO_REMOTE_TIMEOUT_S", remote_module._env_float, 5.0),
            ("REPRO_REMOTE_RETRIES", remote_module._env_int, 2),
        ],
    )
    def test_remote_knob_misparse_warns(
        self, monkeypatch, name, reader, default
    ):
        monkeypatch.setenv(name, "forever")
        with pytest.warns(RuntimeWarning, match=name):
            assert reader(name, default) == default
