"""Bootstrap confidence intervals (``repro.analysis.stats``).

The load-bearing property: a seeded percentile-bootstrap interval at
confidence ``c`` brackets the true (full-population) mean roughly a
fraction ``c`` of the time.  That coverage property is what lets a
budgeted sampled sweep make an honest claim about the exact full-grid
number it did not compute.
"""

import numpy as np
import pytest

from repro.analysis.stats import (
    CIEstimate,
    bootstrap_ci,
    bootstrap_resamples,
    stratified_estimates,
)


class TestCIEstimate:
    def test_width_and_brackets(self):
        est = CIEstimate(mean=1.0, lo=0.8, hi=1.3, confidence=0.95, n=9)
        assert est.width == pytest.approx(0.5)
        assert est.brackets(0.8) and est.brackets(1.3)
        assert not est.brackets(0.79)

    def test_round_trip(self):
        est = CIEstimate(mean=1.0, lo=0.8, hi=1.3, confidence=0.9, n=4)
        assert CIEstimate(**est.as_dict()) == est

    def test_render(self):
        est = CIEstimate(
            mean=1.2345, lo=1.1, hi=1.4, confidence=0.95, n=4
        )
        assert est.render() == "1.234 [1.100, 1.400]"


class TestBootstrapCI:
    def test_deterministic(self):
        values = list(np.random.default_rng(0).normal(0, 1, size=16))
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(
            values, seed=3
        )
        assert bootstrap_ci(values, seed=3) != bootstrap_ci(
            values, seed=4
        )

    def test_single_value_degenerate(self):
        est = bootstrap_ci([2.5])
        assert est.mean == est.lo == est.hi == 2.5
        assert est.n == 1 and est.width == 0.0

    def test_interval_always_brackets_its_own_mean(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            values = rng.normal(10.0, 3.0, size=6)
            est = bootstrap_ci(values, seed=seed)
            assert est.brackets(est.mean)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)

    def test_higher_confidence_is_wider(self):
        values = list(np.random.default_rng(0).normal(0, 1, size=12))
        narrow = bootstrap_ci(values, confidence=0.80, seed=1)
        wide = bootstrap_ci(values, confidence=0.99, seed=1)
        assert wide.width >= narrow.width

    def test_coverage_property(self):
        # Seeded end-to-end: sample 8 of 64 population values, build a
        # 95% CI, and count how often it brackets the *population*
        # mean.  The percentile bootstrap on n=8 is approximate, so the
        # acceptance band is generous — but a broken implementation
        # (wrong quantiles, unseeded, off-by-one alpha) lands far
        # outside it.
        rng = np.random.default_rng(1234)
        population = rng.normal(5.0, 2.0, size=64)
        truth = float(population.mean())
        hits = 0
        trials = 200
        for trial in range(trials):
            sample = rng.choice(population, size=8, replace=False)
            est = bootstrap_ci(
                sample, confidence=0.95, resamples=500, seed=trial
            )
            hits += est.brackets(truth)
        assert 0.80 <= hits / trials <= 1.0

    def test_resamples_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_BOOTSTRAP_RESAMPLES", raising=False)
        assert bootstrap_resamples() == 1000
        monkeypatch.setenv("REPRO_BOOTSTRAP_RESAMPLES", "50")
        assert bootstrap_resamples() == 50
        monkeypatch.setenv("REPRO_BOOTSTRAP_RESAMPLES", "-2")
        assert bootstrap_resamples() == 1  # floored


class TestStratifiedEstimates:
    def test_one_estimate_per_stratum(self):
        estimates = stratified_estimates(
            {"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0]}, confidence=0.9
        )
        assert set(estimates) == {"a", "b"}
        assert estimates["a"].n == 3 and estimates["b"].n == 2
        assert all(e.confidence == 0.9 for e in estimates.values())

    def test_stratum_seed_is_content_based(self):
        # Adding an unrelated stratum must not perturb an existing
        # stratum's interval (the per-stratum seed hashes the stratum
        # itself, not its position).
        alone = stratified_estimates({"a": [1.0, 2.0, 3.0, 4.0]})
        with_peer = stratified_estimates(
            {"z": [9.0, 9.5], "a": [1.0, 2.0, 3.0, 4.0]}
        )
        assert alone["a"] == with_peer["a"]
