"""Tests for the MLP measurement helpers."""

from repro.analysis.mlp import measure_mlp, measure_suite_mlp, mlp_from_result
from repro.sim.metrics import SimResult


class TestMlpHelpers:
    def test_measure_mlp_single_workload(self):
        mlp = measure_mlp("sci-moldyn", scale="test", cores=2, seed=5)
        # moldyn is fully serialized (paper: MLP = 1.0).
        assert 1.0 <= mlp <= 1.3

    def test_measure_suite_mlp(self):
        values = measure_suite_mlp(
            ("oltp-db2", "sci-moldyn"), scale="test", cores=2, seed=5
        )
        assert set(values) == {"oltp-db2", "sci-moldyn"}
        assert all(v >= 1.0 for v in values.values())

    def test_mlp_from_result(self):
        result = SimResult(
            workload="w", prefetcher="p", measured_records=1,
            elapsed_cycles=1.0, mlp=1.45,
        )
        assert mlp_from_result(result) == 1.45
