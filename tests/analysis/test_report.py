"""Unit tests for ASCII reporting."""

import pytest

from repro.analysis.report import (
    bar_chart,
    format_percent,
    format_table,
    grouped_bar_chart,
    series_table,
)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.125) == "12.5%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["longer", 2.25]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("----")
        assert "1.500" in table and "2.250" in table

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestBarCharts:
    def test_bar_lengths_proportional(self):
        chart = bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_grouped_chart_includes_all_series(self):
        chart = grouped_bar_chart(
            ["w1", "w2"],
            {"ideal": [0.5, 0.6], "stms": [0.45, 0.5]},
            title="cov",
        )
        assert chart.count("ideal") == 2
        assert chart.count("stms") == 2
        assert chart.splitlines()[0] == "cov"

    def test_grouped_chart_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})


class TestSeriesTable:
    def test_rows_per_x_value(self):
        table = series_table(
            "p", [0.1, 0.5], {"coverage": [0.4, 0.5], "traffic": [1.0, 2.0]}
        )
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "coverage" in lines[0]
        assert "0.400" in lines[2]
