"""Unit and property tests for temporal-stream extraction."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.streams import (
    extract_streams,
    merge_statistics,
    stream_length_cdf,
)


class TestExtraction:
    def test_pure_repeat_is_one_stream(self):
        sequence = [1, 2, 3, 4, 1, 2, 3, 4]
        stats = extract_streams(sequence, max_gap=0)
        assert list(stats.lengths) == [4]

    def test_periodic_sequence_chains_into_one_stream(self):
        # Each repetition's previous occurrences are positionally
        # consecutive with the one before, so a periodic pattern forms a
        # single long stream — the scientific-iteration behaviour.
        base = [1, 2, 3]
        stats = extract_streams(base * 3, max_gap=0)
        assert list(stats.lengths) == [6]

    def test_no_repetition_no_streams(self):
        stats = extract_streams(list(range(50)), max_gap=0)
        assert stats.stream_count == 0
        assert stats.streamed_blocks == 0

    def test_reordered_repeat_breaks_stream(self):
        stats = extract_streams([1, 2, 3, 3, 2, 1], max_gap=0)
        assert stats.stream_count == 0

    def test_two_distinct_streams(self):
        seq = [1, 2, 3, 9, 7, 8, 1, 2, 3, 5, 7, 8]
        stats = extract_streams(seq, max_gap=0)
        assert sorted(stats.lengths.tolist()) == [2, 3]

    def test_gap_tolerance_bridges_insertions(self):
        # Second pass has a one-miss insertion inside the stream.
        seq = [1, 2, 3, 4, 1, 2, 99, 3, 4]
        strict = extract_streams(seq, max_gap=0)
        tolerant = extract_streams(seq, max_gap=1)
        assert max(strict.lengths.tolist(), default=0) == 2
        assert max(tolerant.lengths.tolist(), default=0) == 4

    def test_gap_tolerance_skips_recorded_noise(self):
        # First pass recorded noise inside the stream; second pass skips it.
        seq = [1, 2, 77, 3, 4, 1, 2, 3, 4]
        tolerant = extract_streams(seq, max_gap=1)
        assert max(tolerant.lengths.tolist(), default=0) == 4

    def test_weighted_median(self):
        stats = extract_streams([1, 2] * 2 + list(range(100, 120)) * 2,
                                max_gap=0)
        assert stats.weighted_median_length() >= 2

    def test_total_misses_recorded(self):
        stats = extract_streams([1, 2, 3])
        assert stats.total_misses == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=300))
    def test_streamed_blocks_never_exceed_misses(self, sequence):
        stats = extract_streams(sequence, max_gap=2)
        assert stats.streamed_blocks <= max(0, 2 * stats.total_misses)
        assert all(length >= 2 for length in stats.lengths)


class TestAggregation:
    def test_merge(self):
        a = extract_streams([1, 2, 3, 1, 2, 3], max_gap=0)
        b = extract_streams([7, 8, 7, 8], max_gap=0)
        merged = merge_statistics([a, b])
        assert sorted(merged.lengths.tolist()) == [2, 3]
        assert merged.total_misses == 10

    def test_merge_empty(self):
        merged = merge_statistics([])
        assert merged.stream_count == 0

    def test_cdf_monotone_and_bounded(self):
        stats = extract_streams(
            [1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 9, 8, 9, 8], max_gap=0
        )
        cdf = stream_length_cdf(stats, points=[1, 2, 5, 100])
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_cdf_empty(self):
        stats = extract_streams([], max_gap=0)
        cdf = stream_length_cdf(stats, points=[1, 10])
        assert all(f == 0.0 for _, f in cdf)

    def test_cdf_weighting_by_blocks(self):
        # One stream of 2 and one of 8: 20% of blocks from length <= 2.
        stats = extract_streams(
            [1, 2] * 2 + list(range(100, 108)) * 2, max_gap=0
        )
        cdf = dict(stream_length_cdf(stats, points=[2, 8]))
        assert cdf[2] == 0.2
        assert cdf[8] == 1.0
