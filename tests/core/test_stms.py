"""Integration-style tests of the STMS prefetcher in isolation.

These drive :class:`StmsPrefetcher` directly (no cache hierarchy): a
"demand miss" is an ``on_demand_miss`` call plus explicit ``consume``
probes, which makes the two-round-trip lookup, sampling, and stream
sharing directly observable.
"""

import pytest

from repro.core.config import StmsConfig
from repro.core.stms import StmsPrefetcher
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter


def make_stms(**overrides) -> StmsPrefetcher:
    parameters = dict(
        cores=2,
        history_entries=1536,
        index_buckets=256,
        sampling_probability=1.0,
        seed=1,
    )
    parameters.update(overrides)
    config = StmsConfig(**parameters)
    return StmsPrefetcher(config, DramChannel(), TrafficMeter())


def replay(stms: StmsPrefetcher, core: int, blocks, start: float = 0.0):
    """Replay a miss sequence; returns blocks covered by the buffer."""
    covered = []
    now = start
    for block in blocks:
        entry = stms.consume(core, block, now)
        if entry is not None:
            covered.append(block)
        else:
            stms.on_demand_miss(core, block, now)
        now += 400.0
    return covered


class TestRecordingAndLookup:
    def test_first_pass_learns_second_pass_streams(self):
        stms = make_stms()
        sequence = list(range(100, 140))
        assert replay(stms, 0, sequence) == []
        covered = replay(stms, 0, sequence, start=1e6)
        # Everything after the trigger miss should be prefetched.
        assert len(covered) >= len(sequence) - 3

    def test_lookup_and_stream_cost_two_round_trips(self):
        stms = make_stms(bucket_buffer_entries=1)
        sequence = list(range(200, 224))
        replay(stms, 0, sequence)
        meter = stms.traffic
        # Evict the trigger's bucket from the (1-entry) bucket buffer so
        # the lookup must actually go to memory.
        stms.on_demand_miss(0, 999_999, now=5e5)
        lookup_bytes = meter.bytes_for(TrafficCategory.LOOKUP_STREAMS)
        stms.on_demand_miss(0, 200, now=1e6)
        # One bucket read + one history block read.
        assert (
            meter.bytes_for(TrafficCategory.LOOKUP_STREAMS) - lookup_bytes
            == 2 * 64
        )

    def test_history_records_misses(self):
        stms = make_stms()
        replay(stms, 0, [1, 2, 3])
        assert stms.histories[0].head == 3

    def test_prefetched_hits_are_recorded_too(self):
        stms = make_stms()
        sequence = list(range(300, 330))
        replay(stms, 0, sequence)
        head_before = stms.histories[0].head
        replay(stms, 0, sequence, start=1e6)
        assert stms.histories[0].head == head_before + len(sequence)


class TestCrossCoreSharing:
    def test_stream_recorded_by_one_core_serves_another(self):
        stms = make_stms()
        sequence = list(range(400, 430))
        replay(stms, 0, sequence)
        covered = replay(stms, 1, sequence, start=1e6)
        assert len(covered) >= len(sequence) - 3


class TestProbabilisticUpdate:
    def test_zero_sampling_never_finds_streams(self):
        stms = make_stms(sampling_probability=0.0)
        sequence = list(range(500, 520))
        replay(stms, 0, sequence)
        covered = replay(stms, 0, sequence, start=1e6)
        assert covered == []
        assert stms.counters.applied_updates == 0

    def test_sampling_reduces_update_traffic(self):
        full = make_stms(sampling_probability=1.0)
        sampled = make_stms(sampling_probability=0.125)
        sequence = list(range(600, 840))
        replay(full, 0, sequence)
        replay(sampled, 0, sequence)
        full.bucket_buffer.drain(0.0)
        sampled.bucket_buffer.drain(0.0)
        full_bytes = full.traffic.bytes_for(TrafficCategory.UPDATE_INDEX)
        sampled_bytes = sampled.traffic.bytes_for(
            TrafficCategory.UPDATE_INDEX
        )
        assert sampled_bytes < full_bytes / 3

    def test_candidates_counted_for_every_record(self):
        stms = make_stms(sampling_probability=0.125)
        replay(stms, 0, list(range(700, 750)))
        assert stms.counters.candidate_updates == 50


class TestStalePointers:
    def test_overwritten_history_is_detected(self):
        stms = make_stms(history_entries=48, sampling_probability=1.0)
        old = list(range(800, 812))
        replay(stms, 0, old)
        # Overwrite the whole history buffer with fresh misses.
        replay(stms, 0, list(range(900, 960)), start=1e5)
        stms.on_demand_miss(0, 800, now=2e6)
        assert stms.counters.stale_pointers >= 1


class TestStreamEndAnnotation:
    def test_divergence_annotates_source_history(self):
        stms = make_stms()
        stream_a = list(range(1000, 1012))
        separator = list(range(3000, 3024))  # keeps B outside A's lookahead
        stream_b = list(range(2000, 2012))
        replay(stms, 0, stream_a + separator + stream_b)
        # Follow A, then jump to B: the A-stream is abandoned mid-flight
        # once B's trigger hits the index.
        replay(stms, 0, stream_a[:6] + stream_b, start=1e6)
        assert stms.counters.annotations >= 1

    def test_resume_requires_marked_address(self):
        stms = make_stms()
        counters_before = stms.counters.resumes
        stms.on_demand_miss(0, 4242, now=0.0)
        assert stms.counters.resumes == counters_before


class TestFinalize:
    def test_finalize_flushes_and_drains(self):
        stms = make_stms()
        replay(stms, 0, list(range(1100, 1120)))
        stms.finalize(now=1e7)
        record = stms.traffic.bytes_for(TrafficCategory.RECORD_STREAMS)
        assert record >= 64  # at least one packed write happened
        assert len(stms.bucket_buffer) == 0

    def test_metadata_regions_reserved(self):
        stms = make_stms()
        regions = stms.address_space.regions
        # One index region + one history region per core.
        assert len(regions) == 1 + stms.config.cores
