"""Unit tests for probabilistic update sampling."""

import pytest

from repro.core.sampling import ProbabilisticSampler


class TestDegenerateProbabilities:
    def test_always(self):
        sampler = ProbabilisticSampler(1.0)
        assert all(sampler.should_update() for _ in range(100))
        assert sampler.acceptance_rate == 1.0

    def test_never(self):
        sampler = ProbabilisticSampler(0.0)
        assert not any(sampler.should_update() for _ in range(100))
        assert sampler.acceptance_rate == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ProbabilisticSampler(-0.1)
        with pytest.raises(ValueError):
            ProbabilisticSampler(1.5)


class TestStatisticalBehaviour:
    def test_acceptance_rate_tracks_probability(self):
        sampler = ProbabilisticSampler(0.125, seed=1)
        draws = 20_000
        accepted = sum(sampler.should_update() for _ in range(draws))
        # 12.5% +- generous 3-sigma band.
        assert 0.10 < accepted / draws < 0.15

    def test_deterministic_for_seed(self):
        a = ProbabilisticSampler(0.5, seed=9)
        b = ProbabilisticSampler(0.5, seed=9)
        assert [a.should_update() for _ in range(500)] == [
            b.should_update() for _ in range(500)
        ]

    def test_different_seeds_differ(self):
        a = ProbabilisticSampler(0.5, seed=1)
        b = ProbabilisticSampler(0.5, seed=2)
        assert [a.should_update() for _ in range(200)] != [
            b.should_update() for _ in range(200)
        ]

    def test_batch_refill_works_across_boundary(self):
        sampler = ProbabilisticSampler(0.5, seed=3)
        draws = [sampler.should_update() for _ in range(10_000)]
        assert 0.45 < sum(draws) / len(draws) < 0.55

    def test_flip_counting(self):
        sampler = ProbabilisticSampler(0.25, seed=4)
        for _ in range(100):
            sampler.should_update()
        assert sampler.flips == 100
        assert 0 <= sampler.accepted <= 100

    def test_acceptance_rate_empty(self):
        assert ProbabilisticSampler(0.5).acceptance_rate == 0.0
