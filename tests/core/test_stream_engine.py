"""Unit tests for the per-core stream engine."""

import pytest

from repro.core.history_buffer import HistoryEntry
from repro.core.stream_engine import StreamEngine


def entries(*blocks: int, start: int = 0, marked: "set[int] | None" = None):
    marked = marked or set()
    return [
        HistoryEntry(sequence=start + i, block=block, marked=block in marked)
        for i, block in enumerate(blocks)
    ]


def make_engine(capacity: int = 8, threshold: int = 2) -> StreamEngine:
    return StreamEngine(core=0, queue_capacity=capacity,
                        refill_threshold=threshold)


class TestLifecycle:
    def test_begin_activates_and_bumps_serial(self):
        engine = make_engine()
        engine.begin(source_core=1, next_fetch_sequence=10)
        assert engine.active
        assert engine.source_core == 1
        assert engine.serial == 1
        engine.begin(source_core=0, next_fetch_sequence=0)
        assert engine.serial == 2

    def test_reset_clears_but_keeps_serial(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, 3), ready_at=0.0)
        engine.reset()
        assert not engine.active
        assert engine.queue_depth == 0
        assert engine.serial == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamEngine(core=0, queue_capacity=0, refill_threshold=0)
        with pytest.raises(ValueError):
            StreamEngine(core=0, queue_capacity=4, refill_threshold=9)


class TestQueueing:
    def test_enqueue_respects_capacity(self):
        engine = make_engine(capacity=3)
        engine.begin(0, 0)
        accepted = engine.enqueue_entries(entries(1, 2, 3, 4, 5), 0.0)
        assert accepted == 3
        assert engine.queue_depth == 3

    def test_enqueue_ignored_when_inactive(self):
        engine = make_engine()
        assert engine.enqueue_entries(entries(1, 2), 0.0) == 0

    def test_pop_in_fifo_order(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(5, 6, 7), 0.0)
        assert [engine.pop_for_prefetch().block for _ in range(3)] == [5, 6, 7]
        assert engine.pop_for_prefetch() is None

    def test_next_fetch_tracks_last_enqueued(self):
        engine = make_engine()
        engine.begin(0, next_fetch_sequence=10)
        engine.enqueue_entries(entries(1, 2, start=10), 0.0)
        assert engine.next_fetch_sequence == 12

    def test_needs_refill_threshold(self):
        engine = make_engine(capacity=8, threshold=2)
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, 3), 0.0)
        assert not engine.needs_refill()
        engine.pop_for_prefetch()
        assert engine.needs_refill()


class TestPauseResume:
    def test_marked_entry_stops_enqueue(self):
        engine = make_engine()
        engine.begin(0, 0)
        accepted = engine.enqueue_entries(
            entries(1, 2, 3, 4, marked={3}), 0.0
        )
        assert accepted == 3  # 4 is beyond the mark
        assert engine.paused_at is not None
        assert engine.paused_at.block == 3

    def test_pop_stops_after_marked_entry(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, marked={2}), 0.0)
        assert engine.pop_for_prefetch().block == 1
        assert engine.pop_for_prefetch().block == 2
        # Entries beyond the mark must not issue while paused.
        engine.enqueue_entries(entries(9, start=5), 0.0)
        assert engine.pop_for_prefetch() is None
        assert engine.needs_refill() is False

    def test_confirm_resume_on_paused_block(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, marked={2}), 0.0)
        engine.pop_for_prefetch()
        engine.pop_for_prefetch()
        assert not engine.confirm_resume(1)
        assert engine.confirm_resume(2)
        assert engine.paused_at is None

    def test_consuming_marked_block_resumes(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, marked={2}), 0.0)
        engine.pop_for_prefetch()
        engine.pop_for_prefetch()
        engine.on_consumed(2)
        assert engine.paused_at is None


class TestConsumptionTracking:
    def test_on_consumed_tracks_latest(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, 3), 0.0)
        for _ in range(3):
            engine.pop_for_prefetch()
        engine.on_consumed(1)
        engine.on_consumed(2)
        assert engine.consumed_count == 2
        assert engine.last_consumed.block == 2

    def test_on_consumed_unknown_block(self):
        engine = make_engine()
        assert engine.on_consumed(42) is None

    def test_annotation_target_after_consumption(self):
        engine = make_engine()
        engine.begin(source_core=3, next_fetch_sequence=10)
        engine.enqueue_entries(entries(1, 2, start=10), 0.0)
        engine.pop_for_prefetch()
        engine.on_consumed(1)
        assert engine.annotation_target() == (3, 11)

    def test_annotation_target_without_progress(self):
        engine = make_engine()
        engine.begin(0, 0)
        assert engine.annotation_target() is None


class TestPauseResumeEdgeCases:
    """Satellite coverage: pause/resume boundary behaviour."""

    def test_confirm_resume_on_non_matching_block_stays_paused(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2, 3, marked={3}), 0.0)
        paused = engine.paused_at
        assert paused is not None and paused.block == 3
        # A miss on an unrelated block must not clear the pause.
        assert not engine.confirm_resume(99)
        assert engine.paused_at is paused
        assert engine.consumed_count == 0
        # The matching block does resume (and counts as consumed).
        assert engine.confirm_resume(3)
        assert engine.paused_at is None
        assert engine.consumed_count == 1

    def test_confirm_resume_without_pause(self):
        engine = make_engine()
        engine.begin(0, 0)
        engine.enqueue_entries(entries(1, 2), 0.0)
        assert not engine.confirm_resume(1)

    def test_marked_entry_exactly_at_queue_capacity(self):
        # The marked entry is the last slot the queue can accept: it
        # must be queued AND pause the stream.
        engine = make_engine(capacity=3)
        engine.begin(0, 0)
        accepted = engine.enqueue_entries(entries(1, 2, 3, marked={3}), 0.0)
        assert accepted == 3
        assert engine.queue_depth == 3
        assert engine.paused_at is not None
        assert engine.paused_at.block == 3

    def test_marked_entry_just_past_queue_capacity(self):
        # The marked entry does not fit: nothing pauses, and the fetch
        # cursor stops right before it so a later refill retries it.
        engine = make_engine(capacity=3)
        engine.begin(0, 0)
        accepted = engine.enqueue_entries(entries(1, 2, 3, 4, marked={4}), 0.0)
        assert accepted == 3
        assert engine.paused_at is None
        assert engine.next_fetch_sequence == 3

    def test_annotation_target_after_reset(self):
        engine = make_engine()
        engine.begin(source_core=2, next_fetch_sequence=5)
        engine.enqueue_entries(entries(7, 8, start=5), 0.0)
        popped = engine.pop_for_prefetch()
        assert popped is not None
        engine.on_consumed(popped.block)
        assert engine.annotation_target() == (2, 6)
        engine.reset()
        # All consumption history is gone: nothing to annotate.
        assert engine.annotation_target() is None
        assert engine.last_consumed is None
        assert engine.consumed_count == 0
