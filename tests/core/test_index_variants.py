"""Tests for the alternative index organizations (design space, §5.4)."""

import numpy as np
import pytest

from repro.core.history_buffer import HistoryPointer
from repro.core.index_variants import (
    ChainedIndexTable,
    OpenAddressIndexTable,
    compare_organizations,
)


def ptr(sequence: int) -> HistoryPointer:
    return HistoryPointer(core=0, sequence=sequence)


class TestChainedIndexTable:
    def test_lookup_after_update(self):
        table = ChainedIndexTable(buckets=8)
        table.update(42, ptr(1))
        assert table.lookup(42) == ptr(1)

    def test_never_drops_entries(self):
        table = ChainedIndexTable(buckets=2)
        for block in range(200):
            table.update(block, ptr(block))
        for block in range(200):
            assert table.lookup(block) == ptr(block)

    def test_chains_grow_storage(self):
        table = ChainedIndexTable(buckets=2)
        baseline = table.storage_bytes
        for block in range(200):
            table.update(block, ptr(block))
        assert table.storage_bytes > baseline
        assert table.max_chain_blocks() > 4

    def test_long_chains_cost_lookup_accesses(self):
        table = ChainedIndexTable(buckets=1)
        for block in range(120):
            table.update(block, ptr(block))
        table.stats.lookups = 0
        table.stats.lookup_block_accesses = 0
        table.lookup(0)  # oldest entry: deepest chain block
        assert table.stats.lookup_block_accesses >= 5

    def test_update_replaces_in_place(self):
        table = ChainedIndexTable(buckets=4)
        table.update(7, ptr(1))
        table.update(7, ptr(2))
        assert table.lookup(7) == ptr(2)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            ChainedIndexTable(buckets=0)


class TestOpenAddressIndexTable:
    def test_lookup_after_update(self):
        table = OpenAddressIndexTable(groups=8)
        table.update(42, ptr(1))
        assert table.lookup(42) == ptr(1)

    def test_bounded_storage(self):
        table = OpenAddressIndexTable(groups=4)
        before = table.storage_bytes
        for block in range(500):
            table.update(block, ptr(block))
        assert table.storage_bytes == before

    def test_displacement_when_full(self):
        table = OpenAddressIndexTable(groups=2, probe_limit=2)
        for block in range(100):
            table.update(block, ptr(block))
        assert table.stats.dropped_entries > 0

    def test_probing_costs_accesses_under_load(self):
        table = OpenAddressIndexTable(groups=4, probe_limit=4)
        for block in range(150):
            table.update(block, ptr(block))
        table.stats.lookups = 0
        table.stats.lookup_block_accesses = 0
        table.lookup(999_999)  # guaranteed miss walks the probe window
        assert table.stats.lookup_block_accesses >= 2

    def test_update_in_place(self):
        table = OpenAddressIndexTable(groups=8)
        table.update(7, ptr(1))
        table.update(7, ptr(2))
        assert table.lookup(7) == ptr(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenAddressIndexTable(groups=0)
        with pytest.raises(ValueError):
            OpenAddressIndexTable(groups=4, probe_limit=0)


class TestComparison:
    def _events(self, count=800, seed=0):
        rng = np.random.default_rng(seed)
        events = []
        for i in range(count):
            block = int(rng.integers(0, 400))
            if rng.random() < 0.5:
                events.append(("update", block, ptr(i)))
            else:
                events.append(("lookup", block, None))
        return events

    def test_bucketized_is_single_access(self):
        results = compare_organizations(self._events(), buckets=8)
        by_name = {r.name: r for r in results}
        assert by_name["bucketized (STMS)"].accesses_per_lookup == 1.0

    def test_chained_pays_latency_for_coverage(self):
        """The paper's trade: chains keep every entry (higher hit rate)
        but pay extra block accesses per lookup."""
        results = compare_organizations(self._events(), buckets=8)
        by_name = {r.name: r for r in results}
        chained = by_name["chained buckets"]
        bucketized = by_name["bucketized (STMS)"]
        assert chained.hit_rate >= bucketized.hit_rate
        assert chained.accesses_per_lookup > 1.0
        assert chained.storage_bytes > bucketized.storage_bytes

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError):
            compare_organizations([("probe", 1, None)], buckets=4)
