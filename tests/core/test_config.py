"""Unit tests for the STMS configuration object."""

import pytest

from repro.core.config import (
    HISTORY_ENTRY_BYTES,
    INDEX_ENTRY_BYTES,
    StmsConfig,
)
from repro.memory.address import BLOCK_BYTES


class TestValidation:
    def test_defaults_valid(self):
        config = StmsConfig()
        assert config.cores == 4
        assert config.sampling_probability == 0.125
        assert config.bucket_entries == 12

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("history_entries", 0),
            ("index_buckets", 100),  # not a power of two
            ("bucket_entries", 0),
            ("sampling_probability", 1.5),
            ("sampling_probability", -0.1),
            ("bucket_buffer_entries", 0),
            ("prefetch_buffer_blocks", 0),
            ("lookahead", 0),
            ("address_queue_entries", 0),
            ("tag_bits", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            StmsConfig(**{field: value})

    def test_refill_threshold_bounded_by_queue(self):
        with pytest.raises(ValueError):
            StmsConfig(address_queue_entries=8, queue_refill_threshold=9)


class TestDerivedStorage:
    def test_history_bytes(self):
        config = StmsConfig(cores=4, history_entries=1200)
        assert config.history_bytes_per_core == 1200 * HISTORY_ENTRY_BYTES
        assert config.history_bytes_total == 4 * 1200 * HISTORY_ENTRY_BYTES

    def test_index_bytes_one_block_per_bucket(self):
        config = StmsConfig(index_buckets=2048)
        assert config.index_bytes == 2048 * BLOCK_BYTES

    def test_on_chip_budget_components(self):
        config = StmsConfig(
            cores=4,
            prefetch_buffer_blocks=32,
            address_queue_entries=24,
            bucket_buffer_entries=128,
        )
        expected = (
            4 * 32 * BLOCK_BYTES
            + 4 * 24 * INDEX_ENTRY_BYTES
            + 128 * BLOCK_BYTES
        )
        assert config.on_chip_bytes == expected

    def test_paper_scale_budgets(self):
        """At paper-like parameters the on-chip budget is ~16 KB while
        meta-data is tens of MB."""
        config = StmsConfig(
            cores=4,
            history_entries=6_710_886,  # ~32 MB aggregate at 5 B/entry
            index_buckets=262_144,      # 16 MB of 64-B buckets
        )
        assert config.on_chip_bytes < 20 * 1024
        assert config.metadata_bytes > 40 * 1024 * 1024


class TestCopyHelpers:
    def test_with_sampling(self):
        config = StmsConfig().with_sampling(0.5)
        assert config.sampling_probability == 0.5
        assert config.history_entries == StmsConfig().history_entries

    def test_with_history(self):
        assert StmsConfig().with_history(4096).history_entries == 4096

    def test_with_index(self):
        assert StmsConfig().with_index(512).index_buckets == 512

    def test_annotation_flag(self):
        config = StmsConfig(annotate_stream_ends=False)
        assert not config.annotate_stream_ends
