"""Unit tests for the circular history buffer."""

import pytest

from repro.core.codec import HISTORY_ENTRIES_PER_BLOCK
from repro.core.history_buffer import HistoryBuffer
from repro.memory.address import BLOCK_BYTES, Region
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter


def make_history(capacity_entries: int = 48) -> HistoryBuffer:
    blocks = -(-capacity_entries // HISTORY_ENTRIES_PER_BLOCK)
    return HistoryBuffer(
        core=0,
        capacity_entries=capacity_entries,
        region=Region(base=0, size=blocks * BLOCK_BYTES),
        dram=DramChannel(),
        traffic=TrafficMeter(),
    )


class TestAppendAndSpill:
    def test_sequences_are_monotonic(self):
        history = make_history()
        assert history.append(10, now=0.0) == 0
        assert history.append(11, now=0.0) == 1
        assert history.head == 2

    def test_packed_write_every_twelve_appends(self):
        history = make_history()
        for i in range(HISTORY_ENTRIES_PER_BLOCK - 1):
            history.append(i, now=0.0)
        assert history.stats.packed_writes == 0
        history.append(99, now=0.0)
        assert history.stats.packed_writes == 1
        assert (
            history.traffic.bytes_for(TrafficCategory.RECORD_STREAMS)
            == BLOCK_BYTES
        )

    def test_flush_spills_partial_block(self):
        history = make_history()
        history.append(1, now=0.0)
        history.flush(now=0.0)
        assert history.stats.packed_writes == 1
        history.flush(now=0.0)
        assert history.stats.packed_writes == 1  # nothing pending


class TestValidityWindow:
    def test_wrap_invalidates_oldest(self):
        history = make_history(capacity_entries=24)
        for i in range(30):
            history.append(i, now=0.0)
        assert history.oldest_valid == 6
        assert not history.is_valid(5)
        assert history.is_valid(6)
        assert history.is_valid(29)
        assert not history.is_valid(30)

    def test_capacity_rounded_to_blocks(self):
        history = make_history(capacity_entries=30)
        assert history.capacity == 24

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            HistoryBuffer(
                core=0,
                capacity_entries=4,
                region=Region(base=0, size=BLOCK_BYTES),
                dram=DramChannel(),
                traffic=TrafficMeter(),
            )

    def test_rejects_undersized_region(self):
        with pytest.raises(ValueError):
            HistoryBuffer(
                core=0,
                capacity_entries=1000,
                region=Region(base=0, size=BLOCK_BYTES),
                dram=DramChannel(),
                traffic=TrafficMeter(),
            )


class TestReads:
    def test_read_block_returns_entries_from_sequence(self):
        history = make_history()
        for i in range(24):
            history.append(100 + i, now=0.0)
        entries, _ = history.read_block(3, now=0.0)
        assert [e.block for e in entries] == [103 + i for i in range(9)]
        assert entries[0].sequence == 3

    def test_read_spilled_block_charges_lookup_traffic(self):
        history = make_history()
        for i in range(12):
            history.append(i, now=0.0)
        before = history.traffic.bytes_for(TrafficCategory.LOOKUP_STREAMS)
        entries, arrival = history.read_block(0, now=0.0)
        assert len(entries) == 12
        assert arrival > 0.0
        assert (
            history.traffic.bytes_for(TrafficCategory.LOOKUP_STREAMS)
            == before + BLOCK_BYTES
        )
        assert history.stats.block_reads == 1

    def test_read_unspilled_entries_is_on_chip(self):
        history = make_history()
        history.append(7, now=0.0)
        entries, arrival = history.read_block(0, now=5.0)
        assert [e.block for e in entries] == [7]
        assert arrival == 5.0
        assert history.stats.on_chip_reads == 1

    def test_stale_read_returns_nothing(self):
        history = make_history(capacity_entries=24)
        for i in range(30):
            history.append(i, now=0.0)
        entries, _ = history.read_block(0, now=0.0)
        assert entries == []
        assert history.stats.stale_reads == 1

    def test_read_beyond_head_returns_nothing(self):
        history = make_history()
        history.append(1, now=0.0)
        entries, _ = history.read_block(5, now=0.0)
        assert entries == []


class TestMidRunFlush:
    """A partial flush de-aligns the pack buffer; reads must still be
    exact (regression for the segment-committed append path)."""

    def test_read_spans_committed_and_pending_after_partial_flush(self):
        history = make_history()
        for i in range(5):
            history.append(100 + i, now=0.0)
        history.flush(now=0.0)  # commits an unaligned partial segment
        for i in range(8):
            history.append(200 + i, now=0.0)
        entries, _ = history.read_block(3, now=0.0)
        assert [e.sequence for e in entries] == list(range(3, 12))
        assert [e.block for e in entries] == [103, 104] + [
            200 + i for i in range(7)
        ]

    def test_peek_and_annotate_after_partial_flush(self):
        history = make_history()
        for i in range(5):
            history.append(100 + i, now=0.0)
        history.flush(now=0.0)
        for i in range(4):
            history.append(200 + i, now=0.0)
        assert history.peek(2).block == 102  # committed side
        assert history.peek(7).block == 202  # pending side
        assert history.annotate(7, now=0.0)
        assert history.peek(7).marked

    def test_unaligned_commit_wraps_circular_boundary(self):
        history = make_history(capacity_entries=24)
        for i in range(17):
            history.append(i, now=0.0)
        history.flush(now=0.0)  # head=17: pack buffer now unaligned
        # The next spill covers sequences 17..28, wrapping slot 24 -> 0.
        for i in range(12):
            history.append(500 + i, now=0.0)
        for sequence in range(history.oldest_valid, history.head):
            entry = history.peek(sequence)
            expected = (
                sequence if sequence < 17 else 500 + (sequence - 17)
            )
            assert entry is not None and entry.block == expected
        entries, _ = history.read_block(24, now=0.0)
        assert [e.block for e in entries] == [507, 508, 509, 510, 511]


class TestAnnotations:
    def test_annotate_sets_mark(self):
        history = make_history()
        for i in range(12):
            history.append(i, now=0.0)
        assert history.annotate(4, now=0.0)
        entries, _ = history.read_block(0, now=0.0)
        assert entries[4].marked
        assert not entries[3].marked

    def test_annotate_charges_record_write(self):
        history = make_history()
        history.append(1, now=0.0)
        before = history.traffic.bytes_for(TrafficCategory.RECORD_STREAMS)
        history.annotate(0, now=0.0)
        assert (
            history.traffic.bytes_for(TrafficCategory.RECORD_STREAMS)
            == before + BLOCK_BYTES
        )

    def test_annotate_stale_sequence_fails(self):
        history = make_history(capacity_entries=24)
        for i in range(30):
            history.append(i, now=0.0)
        assert not history.annotate(0, now=0.0)

    def test_new_append_clears_old_mark_on_reused_slot(self):
        history = make_history(capacity_entries=24)
        for i in range(12):
            history.append(i, now=0.0)
        history.annotate(0, now=0.0)
        for i in range(24):  # wrap over slot 0
            history.append(100 + i, now=0.0)
        entry = history.peek(24)  # reuses slot 0
        assert entry is not None and not entry.marked
