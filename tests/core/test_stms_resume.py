"""End-to-end tests of STMS stream-end annotation and resumption.

Section 4.5: a follower that observes a stream end annotates the history
entry after the last contiguously consumed address; later followers
pause there and resume only when the core explicitly requests the
annotated address.  These tests build the exact scenario and watch the
pause/resume machinery work through the full prefetcher.
"""

from repro.core.config import StmsConfig
from repro.core.stms import StmsPrefetcher
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficMeter


def make_stms(**overrides) -> StmsPrefetcher:
    parameters = dict(
        cores=1,
        history_entries=1536,
        index_buckets=256,
        sampling_probability=1.0,
        seed=1,
    )
    parameters.update(overrides)
    return StmsPrefetcher(StmsConfig(**parameters), DramChannel(),
                          TrafficMeter())


def replay(stms, blocks, start=0.0, gap=400.0):
    covered = []
    now = start
    for block in blocks:
        if stms.consume(0, block, now) is not None:
            covered.append(block)
        else:
            stms.on_demand_miss(0, block, now)
        now += gap
    return covered


STREAM_A = list(range(1000, 1016))
SEPARATOR = list(range(3000, 3032))
STREAM_B = list(range(2000, 2016))


def _train_divergence(stms) -> None:
    """Record A+separator+B, then follow A but jump to B mid-stream."""
    replay(stms, STREAM_A + SEPARATOR + STREAM_B)
    replay(stms, STREAM_A[:8] + STREAM_B, start=1e6)


class TestAnnotationLifecycle:
    def test_mark_lands_after_last_consumed(self):
        stms = make_stms()
        _train_divergence(stms)
        history = stms.histories[0]
        marked = [
            seq for seq in range(history.oldest_valid, history.head)
            if history.peek(seq) is not None and history.peek(seq).marked
        ]
        assert marked, "divergence must have annotated the history"
        # The mark sits inside A's recorded section (sequences 0..15).
        assert any(seq <= len(STREAM_A) for seq in marked)

    def test_followers_adapt_to_rerecorded_streams(self):
        """Re-recording is self-healing: after the divergent pass records
        "A-prefix then B", a later follower of A streams straight into B
        via the *newer* history section, bypassing the old mark."""
        stms = make_stms()
        _train_divergence(stms)
        covered = replay(stms, STREAM_A[:8] + STREAM_B, start=2e6)
        assert len(covered) >= (len(STREAM_A[:8]) + len(STREAM_B)) - 4

    def test_pause_and_resume_at_annotated_entry(self):
        """Direct §4.5 scenario: a marked history entry pauses streaming
        until the core explicitly requests the annotated address.

        The annotated address itself is staged (it may still be wanted),
        so the explicit request usually arrives as a prefetch-buffer hit
        — that consumption clears the pause and streaming continues.
        """
        stms = make_stms()
        replay(stms, STREAM_A)
        # Mark the entry for STREAM_A[8] (sequence 8) as a stream end.
        assert stms.histories[0].annotate(8, now=5e5)
        covered = replay(stms, STREAM_A, start=2e6)
        # The marked address and the tail beyond it were both covered:
        # the explicit request resumed the stream.
        assert STREAM_A[8] in covered
        assert set(STREAM_A[9:]).issubset(set(covered))
        assert stms.engines[0].paused_at is None

    def test_pause_blocks_prefetch_past_mark(self):
        stms = make_stms()
        replay(stms, STREAM_A)
        assert stms.histories[0].annotate(8, now=5e5)
        # Trigger the stream but stop demanding before the mark.
        replay(stms, STREAM_A[:4], start=2e6)
        engine = stms.engines[0]
        buffered = stms.buffers[0]
        # Nothing beyond the annotated address may be in flight.
        beyond_mark = [b for b in STREAM_A[9:] if b in buffered]
        assert engine.paused_at is not None
        assert beyond_mark == []

    def test_annotation_disabled_never_marks(self):
        stms = make_stms(annotate_stream_ends=False)
        _train_divergence(stms)
        assert stms.counters.annotations == 0
        history = stms.histories[0]
        marked = [
            seq for seq in range(history.oldest_valid, history.head)
            if history.peek(seq) is not None and history.peek(seq).marked
        ]
        assert not marked
