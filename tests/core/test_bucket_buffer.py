"""Unit tests for the on-chip bucket buffer."""

import pytest

from repro.core.bucket_buffer import BucketBuffer
from repro.memory.address import BLOCK_BYTES
from repro.memory.dram import DramChannel
from repro.memory.traffic import TrafficCategory, TrafficMeter


def make_buffer(capacity: int = 4) -> BucketBuffer:
    return BucketBuffer(
        capacity=capacity, dram=DramChannel(), traffic=TrafficMeter()
    )


class TestAccess:
    def test_miss_charges_chosen_category(self):
        buffer = make_buffer()
        arrival = buffer.access(
            3, now=0.0, charge=TrafficCategory.UPDATE_INDEX
        )
        assert arrival > 0.0
        assert (
            buffer.traffic.bytes_for(TrafficCategory.UPDATE_INDEX)
            == BLOCK_BYTES
        )
        assert buffer.stats.misses == 1

    def test_hit_is_free_and_instant(self):
        buffer = make_buffer()
        buffer.access(3, now=0.0)
        before = buffer.traffic.total_bytes
        arrival = buffer.access(3, now=10.0)
        assert arrival == 10.0
        assert buffer.traffic.total_bytes == before
        assert buffer.stats.hits == 1

    def test_lookup_then_update_shares_residency(self):
        """The paper's lookup/update interplay: an update right after a
        lookup to the same bucket costs no extra read."""
        buffer = make_buffer()
        buffer.access(5, now=0.0, charge=TrafficCategory.LOOKUP_STREAMS)
        buffer.access(
            5, now=1.0, dirty=True, charge=TrafficCategory.UPDATE_INDEX
        )
        assert buffer.traffic.bytes_for(TrafficCategory.UPDATE_INDEX) == 0
        assert (
            buffer.traffic.bytes_for(TrafficCategory.LOOKUP_STREAMS)
            == BLOCK_BYTES
        )


class TestWriteBack:
    def test_clean_eviction_is_free(self):
        buffer = make_buffer(capacity=2)
        buffer.access(1, now=0.0)
        buffer.access(2, now=0.0)
        buffer.access(3, now=0.0)  # evicts bucket 1 (clean)
        assert buffer.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        buffer = make_buffer(capacity=2)
        buffer.access(1, now=0.0, dirty=True)
        buffer.access(2, now=0.0)
        buffer.access(3, now=0.0)
        assert buffer.stats.writebacks == 1
        assert (
            buffer.traffic.bytes_for(TrafficCategory.UPDATE_INDEX)
            >= BLOCK_BYTES
        )

    def test_mark_dirty_requires_residency(self):
        buffer = make_buffer()
        with pytest.raises(KeyError):
            buffer.mark_dirty(9)

    def test_drain_writes_all_dirty(self):
        buffer = make_buffer()
        buffer.access(1, now=0.0, dirty=True)
        buffer.access(2, now=0.0)
        buffer.access(3, now=0.0, dirty=True)
        drained = buffer.drain(now=0.0)
        assert drained == 2
        assert len(buffer) == 0

    def test_lru_eviction_order(self):
        buffer = make_buffer(capacity=2)
        buffer.access(1, now=0.0, dirty=True)
        buffer.access(2, now=0.0)
        buffer.access(1, now=0.0)  # refresh 1; LRU is now 2
        buffer.access(3, now=0.0)  # evicts 2 (clean)
        assert buffer.stats.writebacks == 0
        assert 1 in buffer and 3 in buffer and 2 not in buffer

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            make_buffer(capacity=0)
