"""Unit and property tests for the bucketized hash index table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history_buffer import HistoryPointer
from repro.core.index_table import IndexTable


def ptr(core: int, sequence: int) -> HistoryPointer:
    return HistoryPointer(core=core, sequence=sequence)


class TestBasics:
    def test_lookup_miss(self):
        table = IndexTable(buckets=16)
        assert table.lookup(42) is None

    def test_update_then_lookup(self):
        table = IndexTable(buckets=16)
        table.update(42, ptr(0, 7))
        assert table.lookup(42) == ptr(0, 7)
        assert table.stats.hits == 1

    def test_pointer_update_replaces(self):
        table = IndexTable(buckets=16)
        table.update(42, ptr(0, 7))
        table.update(42, ptr(1, 9))
        assert table.lookup(42) == ptr(1, 9)
        assert table.stats.pointer_updates == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            IndexTable(buckets=12)

    def test_bucket_of_within_range(self):
        table = IndexTable(buckets=64)
        for block in range(1000):
            assert 0 <= table.bucket_of(block) < 64

    def test_hash_spreads_addresses(self):
        table = IndexTable(buckets=64)
        buckets = {table.bucket_of(b) for b in range(0, 6400, 64)}
        # Same low bits everywhere; a bad hash would collapse to 1 bucket.
        assert len(buckets) > 16


class TestBucketLru:
    def _conflicting_blocks(self, table: IndexTable, count: int) -> list:
        """Find ``count`` distinct blocks hashing to the same bucket."""
        target = table.bucket_of(0)
        found = [0]
        candidate = 1
        while len(found) < count:
            if table.bucket_of(candidate) == target:
                found.append(candidate)
            candidate += 1
        return found

    def test_full_bucket_replaces_lru(self):
        table = IndexTable(buckets=4, bucket_entries=3)
        blocks = self._conflicting_blocks(table, 4)
        for i, block in enumerate(blocks[:3]):
            table.update(block, ptr(0, i))
        # Touch the first so the second becomes LRU.
        table.lookup(blocks[0])
        replaced = table.update(blocks[3], ptr(0, 99))
        assert replaced
        assert table.lookup(blocks[1]) is None
        assert table.lookup(blocks[0]) is not None

    def test_occupancy_bounded_by_bucket_entries(self):
        table = IndexTable(buckets=4, bucket_entries=2)
        for block in range(100):
            table.update(block, ptr(0, block))
        assert table.occupancy() <= 4 * 2
        for bucket in range(4):
            assert len(table.bucket_contents(bucket)) <= 2

    def test_contents_in_recency_order(self):
        table = IndexTable(buckets=4, bucket_entries=4)
        blocks = self._conflicting_blocks(table, 3)
        for i, block in enumerate(blocks):
            table.update(block, ptr(0, i))
        bucket = table.bucket_of(blocks[0])
        tags = [tag for tag, _ in table.bucket_contents(bucket)]
        assert tags == [table.tag_of(b) for b in reversed(blocks)]


class TestTagTruncation:
    def test_full_tags_never_alias(self):
        table = IndexTable(buckets=4, tag_bits=None)
        table.update(0x10000, ptr(0, 1))
        # A different block with equal low bits must not match.
        if table.bucket_of(0x20000) == table.bucket_of(0x10000):
            assert table.lookup(0x20000) is None

    def test_truncated_tags_can_alias(self):
        table = IndexTable(buckets=1, tag_bits=4)
        table.update(0x13, ptr(0, 5))
        aliased = table.lookup(0x23)  # same low 4 bits (0x3)
        assert aliased == ptr(0, 5)


class TestAgainstReferenceModel:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=250,
        )
    )
    def test_matches_per_bucket_lru_dict(self, operations):
        """Model each bucket as an LRU-ordered list and compare."""
        table = IndexTable(buckets=8, bucket_entries=3)
        model: dict[int, list[tuple[int, HistoryPointer]]] = {
            b: [] for b in range(8)
        }
        sequence = 0
        for is_update, block in operations:
            bucket = table.bucket_of(block)
            entries = model[bucket]
            if is_update:
                pointer = ptr(0, sequence)
                sequence += 1
                table.update(block, pointer)
                for i, (tag, _) in enumerate(entries):
                    if tag == block:
                        entries.pop(i)
                        break
                else:
                    if len(entries) == 3:
                        entries.pop()
                entries.insert(0, (block, pointer))
            else:
                expected = None
                for i, (tag, pointer) in enumerate(entries):
                    if tag == block:
                        expected = pointer
                        entries.insert(0, entries.pop(i))
                        break
                assert table.lookup(block) == expected
        for bucket in range(8):
            assert table.bucket_contents(bucket) == model[bucket]
