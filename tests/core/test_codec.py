"""Byte-layout tests: the packing claims of the paper must hold exactly."""

import pytest
from hypothesis import given, strategies as st

from repro.core.codec import (
    ADDRESS_BITS,
    HISTORY_ENTRIES_PER_BLOCK,
    INDEX_ENTRIES_PER_BUCKET,
    SEQ_BITS,
    TAG_BITS,
    pack_history_block,
    pack_index_bucket,
    unpack_history_block,
    unpack_index_bucket,
)
from repro.memory.address import BLOCK_BYTES


class TestHistoryBlockLayout:
    def test_twelve_entries_fit_one_block(self):
        entries = [(i + 1, i % 2 == 0) for i in range(12)]
        payload = pack_history_block(entries)
        assert len(payload) == BLOCK_BYTES

    def test_round_trip(self):
        entries = [(123456789, True), (1, False), ((1 << ADDRESS_BITS) - 1, True)]
        decoded = unpack_history_block(pack_history_block(entries))
        assert decoded[: len(entries)] == entries

    def test_rejects_thirteen_entries(self):
        with pytest.raises(ValueError):
            pack_history_block([(1, False)] * 13)

    def test_rejects_oversized_address(self):
        with pytest.raises(ValueError):
            pack_history_block([(1 << ADDRESS_BITS, False)])

    def test_rejects_wrong_payload_size(self):
        with pytest.raises(ValueError):
            unpack_history_block(b"\x00" * 32)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << ADDRESS_BITS) - 1),
                st.booleans(),
            ),
            max_size=HISTORY_ENTRIES_PER_BLOCK,
        )
    )
    def test_round_trip_property(self, entries):
        decoded = unpack_history_block(pack_history_block(entries))
        assert decoded[: len(entries)] == entries


class TestIndexBucketLayout:
    def test_twelve_entries_fit_one_block(self):
        entries = [(i, i % 4, i * 1000) for i in range(12)]
        payload = pack_index_bucket(entries)
        assert len(payload) == BLOCK_BYTES

    def test_round_trip_preserves_order(self):
        entries = [(7, 1, 99), (3, 0, 12345), (65535, 3, (1 << SEQ_BITS) - 1)]
        decoded = unpack_index_bucket(pack_index_bucket(entries))
        assert decoded[: len(entries)] == entries

    def test_rejects_oversized_fields(self):
        with pytest.raises(ValueError):
            pack_index_bucket([(1 << TAG_BITS, 0, 0)])
        with pytest.raises(ValueError):
            pack_index_bucket([(0, 4, 0)])
        with pytest.raises(ValueError):
            pack_index_bucket([(0, 0, 1 << SEQ_BITS)])

    def test_rejects_thirteen_entries(self):
        with pytest.raises(ValueError):
            pack_index_bucket([(0, 0, 0)] * (INDEX_ENTRIES_PER_BUCKET + 1))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << TAG_BITS) - 1),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=(1 << SEQ_BITS) - 1),
            ),
            max_size=INDEX_ENTRIES_PER_BUCKET,
        )
    )
    def test_round_trip_property(self, entries):
        decoded = unpack_index_bucket(pack_index_bucket(entries))
        assert decoded[: len(entries)] == entries
