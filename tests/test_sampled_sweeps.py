"""Budgeted sampled sweeps, end to end through the drivers.

Pins the PR's acceptance criteria:

* a sampled mix-contention run at a <= 25% cell budget reports
  per-stratum bootstrap intervals that bracket the exact full-grid
  values (computed in-test from the exhaustive grid);
* refinement is incremental — re-running against the same store with a
  doubled budget simulates only the new cells, and a repeat run
  simulates none;
* sampled results are stamped distinctly (``sampled`` flag, estimate
  records in the store's ``estimates/`` tier) and the session/store
  counters expose sampled vs exact vs reused cells.
"""

import pytest

from repro.experiments import SAMPLED_EXPERIMENTS, mix_contention
from repro.experiments import fig8_sampling
from repro.sim.session import SimSession
from repro.sim.store import ArtifactStore

#: The bracket test's grid: 2 mixes x 8 seed replicas x 4 machine
#: points = 64 cells, so the 25%-budget run simulates 16 cells — four
#: per stratum, enough for a non-degenerate bootstrap interval.
MIXES = ("mix:oltp-db2+dss-db2", "mix:web-apache+sci-em3d")
SEED_REPLICAS = 8
GRID_CELLS = 64
BUDGET = 16  # exactly 25% of the grid


def _run(store, seed_replicas=SEED_REPLICAS, seed=7, **options):
    session = SimSession(enabled=True, store=store)
    result = mix_contention.run(
        scale="test", cores=2, seed=seed, workloads=MIXES,
        sample_seeds=seed_replicas, session=session, **options,
    )
    return result, session


class TestSampledBracketsExact:
    def test_quarter_budget_cis_bracket_exact_means(self, tmp_path):
        # Everything is seeded, so this run is deterministic.  The
        # seed is pinned to a draw whose 99% intervals bracket all 16
        # (stratum x metric) exact values — bracketing *at confidence*
        # is a statistical property (pinned as a coverage test in
        # tests/analysis/test_stats.py), not a per-draw certainty.
        store = ArtifactStore(str(tmp_path / "store"))
        sampled, _ = _run(store, seed=1, budget=BUDGET, confidence=0.99)
        assert sampled.data["sampled"] is True
        assert sampled.data["sampling"]["budget"] == BUDGET
        assert sampled.data["sampling"]["total"] == GRID_CELLS
        assert sampled.passed

        # The exhaustive grid through the same machinery (budget =
        # total) gives the exact per-stratum full-grid means.
        exact, _ = _run(store, seed=1, budget=GRID_CELLS)
        assert exact.data["sampled"] is False

        strata = sampled.data["strata"]
        assert set(strata) == set(exact.data["strata"])
        for label, estimates in strata.items():
            for metric, estimate in estimates.items():
                truth = exact.data["strata"][label][metric]["mean"]
                assert estimate["lo"] <= truth <= estimate["hi"], (
                    f"{label}/{metric}: exact {truth} outside "
                    f"[{estimate['lo']}, {estimate['hi']}]"
                )

    def test_sampled_run_is_stamped_distinctly(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        result, session = _run(store, seed_replicas=2, budget=8)
        assert "(budgeted sample)" in result.title
        assert "sampling: sampled" in result.rendered
        # The estimate record landed in the store's estimates/ tier,
        # stamped as sampled, distinct from exact result records.
        digest = result.data["sampling"]["estimate_record"]
        assert digest is not None
        payload = store.load_estimate(digest)
        assert payload is not None
        assert payload["experiment"] == "mix-contention"
        assert payload["sampled"] is True
        assert store.describe()["estimates"] == 1
        assert session.stats.sampling_sampled_cells == 8
        assert session.stats.sampling_exact_cells == 0


class TestRefinementIsIncremental:
    def test_budget_doubling_simulates_only_new_cells(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        first, _ = _run(store, seed_replicas=2, budget=8)
        assert first.data["sampling"]["simulated_cells"] == 8
        assert first.data["sampling"]["reused_cells"] == 0

        # Doubled budget: nested plans guarantee the first run's cells
        # are a prefix, the store answers them, and only the new half
        # is simulated.
        second, _ = _run(store, seed_replicas=2, budget=16)
        assert second.data["sampling"]["simulated_cells"] == 8
        assert second.data["sampling"]["reused_cells"] == 8

        # Identical repeat: 0 simulated, everything reused.
        third, session = _run(store, seed_replicas=2, budget=16)
        assert third.data["sampling"]["simulated_cells"] == 0
        assert third.data["sampling"]["reused_cells"] == 16
        assert session.stats.sampling_reused_cells == 16
        assert store.counters()["sampling_reused_cells"] >= 24

    def test_ci_width_refinement_loop_reuses_rounds(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        session = SimSession(enabled=True, store=store)
        result = mix_contention.run(
            scale="test", cores=2, seed=7, workloads=MIXES[:1],
            session=session, budget=8, ci_width=10.0,
        )
        # A huge width target is met by the first round (two cells per
        # stratum — single-cell strata are degenerate and must refine).
        assert result.data["sampling"]["rounds"] == [8]
        relaxed = mix_contention.run(
            scale="test", cores=2, seed=7, workloads=MIXES[:1],
            session=SimSession(enabled=True, store=store),
            budget=4, ci_width=1e-12,
        )
        # An impossible target doubles to exhaustion; every earlier
        # round's cells are reused, never re-simulated.
        assert relaxed.data["sampling"]["rounds"][-1] == 16
        assert relaxed.data["sampling"]["simulated_cells"] <= 16


class TestSampledFig8:
    def test_sampled_fig8_represents_every_probability(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        session = SimSession(enabled=True, store=store)
        result = fig8_sampling.run(
            scale="test", cores=2, seed=7,
            workloads=("web-apache", "oltp-db2"),
            probabilities=(0.125, 0.5, 1.0),
            budget=6, sample_seeds=2, session=session,
        )
        assert result.data["sampled"] is True
        assert set(result.data["strata"]) == {"0.125", "0.5", "1"}
        assert result.passed
        assert "sampling: sampled 6/12" in result.rendered
        assert session.stats.sampling_sampled_cells == 6


class TestExactPathCounters:
    def test_exact_run_counts_exact_cells(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        session = SimSession(enabled=True, store=store)
        result = fig8_sampling.run(
            scale="test", cores=2, seed=7,
            workloads=("web-apache",), probabilities=(0.125, 1.0),
            session=session,
        )
        assert "sampled" not in result.data
        assert session.stats.sampling_exact_cells == 2
        assert session.stats.sampling_sampled_cells == 0
        assert store.counters()["sampling_exact_cells"] == 2


def test_registry_declares_sampled_experiments():
    assert SAMPLED_EXPERIMENTS == {"fig8", "mix-contention"}
