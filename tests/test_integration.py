"""End-to-end paper-claim tests at the ``test`` scale.

These are the headline assertions of the reproduction: every one mirrors
a sentence in the paper's abstract or evaluation.  They run the real
pipeline (generator -> CMP simulation -> prefetcher) on the scaled suite.
"""

import pytest

pytestmark = pytest.mark.slow

from repro import PrefetcherKind, compare_prefetchers
from repro.sim.runner import make_stms_config, run_workload
from repro.workloads.suite import FIGURE_ORDER, WORKLOADS, generate


@pytest.fixture(scope="module")
def suite_results():
    """Baseline / ideal / STMS runs for a representative workload subset."""
    subset = ("web-apache", "oltp-db2", "dss-db2", "sci-em3d", "sci-ocean")
    return {
        name: compare_prefetchers(name, scale="test", cores=4, seed=11)
        for name in subset
    }


class TestPaperHeadlines:
    def test_temporal_streaming_helps_commercial_workloads(
        self, suite_results
    ):
        """Abstract: TMS eliminates 40-60% of misses in OLTP/Web."""
        for name in ("web-apache", "oltp-db2"):
            ideal = suite_results[name][PrefetcherKind.IDEAL_TMS]
            assert 0.25 <= ideal.coverage.coverage <= 0.7

    def test_temporal_streaming_useless_for_dss(self, suite_results):
        """Section 5.2: DSS visits data once; streaming cannot help."""
        results = suite_results["dss-db2"]
        baseline = results[PrefetcherKind.BASELINE]
        ideal = results[PrefetcherKind.IDEAL_TMS]
        assert ideal.speedup_over(baseline) == pytest.approx(1.0, abs=0.06)

    def test_scientific_workloads_nearly_fully_covered(self, suite_results):
        for name in ("sci-em3d", "sci-ocean"):
            ideal = suite_results[name][PrefetcherKind.IDEAL_TMS]
            assert ideal.coverage.coverage >= 0.7

    def test_em3d_gets_largest_speedup(self, suite_results):
        speedups = {
            name: results[PrefetcherKind.IDEAL_TMS].speedup_over(
                results[PrefetcherKind.BASELINE]
            )
            for name, results in suite_results.items()
        }
        assert max(speedups, key=speedups.get) == "sci-em3d"
        assert speedups["sci-em3d"] >= 1.4

    def test_stms_approaches_ideal(self, suite_results):
        """Abstract: STMS achieves ~90% of idealized performance; at this
        reduced scale we require >= 60% on every streaming workload."""
        for name, results in suite_results.items():
            if name == "dss-db2":
                continue
            ideal = results[PrefetcherKind.IDEAL_TMS].coverage.coverage
            stms = results[PrefetcherKind.STMS].coverage.coverage
            assert stms >= 0.6 * ideal, name

    def test_stms_never_slows_workloads(self, suite_results):
        """Evaluation goal 2: no adverse impact without streaming benefit."""
        for name, results in suite_results.items():
            baseline = results[PrefetcherKind.BASELINE]
            stms = results[PrefetcherKind.STMS]
            assert stms.speedup_over(baseline) >= 0.95, name

    def test_stms_stores_metadata_off_chip(self, suite_results):
        """All predictor state lives in main memory: meta-data traffic
        must be non-zero for every streaming workload."""
        for name, results in suite_results.items():
            stms = results[PrefetcherKind.STMS]
            assert stms.metadata_bytes > 0, name

    def test_on_chip_budget_is_small(self):
        """Storage efficiency: STMS on-chip state is KBs while the
        predictor meta-data (off chip) is orders of magnitude larger."""
        config = make_stms_config("full", cores=4)
        assert config.on_chip_bytes <= 32 * 1024
        assert config.metadata_bytes >= 50 * config.on_chip_bytes


class TestSamplingClaims:
    def test_sampling_trades_traffic_for_little_coverage(self):
        """Abstract: probabilistic update cuts update traffic by ~the
        sampling factor with small coverage loss."""
        trace = generate("oltp-db2", scale="test", cores=4, seed=13)
        results = {}
        for probability in (1.0, 0.125):
            config = make_stms_config(
                "test", cores=4, sampling_probability=probability
            )
            results[probability] = run_workload(
                "oltp-db2",
                PrefetcherKind.STMS,
                scale="test",
                trace=trace,
                stms_config=config,
            )
        full, sampled = results[1.0], results[0.125]
        assert (
            sampled.traffic.update_index < full.traffic.update_index / 3
        )
        assert sampled.coverage.coverage >= 0.6 * full.coverage.coverage

    def test_recording_is_packed(self):
        """One history write per ~12 misses: record traffic tiny."""
        result = run_workload(
            "web-apache", PrefetcherKind.STMS, scale="test", seed=13
        )
        assert result.traffic.record_streams < 0.2


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = run_workload("oltp-db2", PrefetcherKind.STMS, scale="test",
                         seed=17)
        b = run_workload("oltp-db2", PrefetcherKind.STMS, scale="test",
                         seed=17)
        assert a.elapsed_cycles == b.elapsed_cycles
        assert a.coverage.coverage == b.coverage.coverage
        assert a.overhead_per_useful_byte == b.overhead_per_useful_byte


class TestSuiteSanity:
    @pytest.mark.parametrize("name", FIGURE_ORDER)
    def test_every_workload_simulates(self, name):
        result = run_workload(
            name,
            PrefetcherKind.BASELINE,
            scale="test",
            cores=2,
            seed=5,
            records_per_core=2000,
        )
        assert result.measured_records > 0
        assert result.elapsed_cycles > 0
        assert result.mlp >= 1.0 or result.coverage.uncovered == 0
        assert WORKLOADS[name].display
