"""Unit tests for block/address arithmetic and meta-data regions."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    BLOCK_BYTES,
    AddressSpace,
    Region,
    align_down,
    align_up,
    block_of,
    block_offset,
    block_to_address,
    is_power_of_two,
)


class TestBlockArithmetic:
    def test_block_of_start_of_block(self):
        assert block_of(0) == 0
        assert block_of(BLOCK_BYTES) == 1

    def test_block_of_mid_block(self):
        assert block_of(BLOCK_BYTES + 1) == 1
        assert block_of(2 * BLOCK_BYTES - 1) == 1

    def test_block_to_address_round_trip(self):
        for block in (0, 1, 17, 12345):
            assert block_of(block_to_address(block)) == block

    def test_block_of_rejects_negative(self):
        with pytest.raises(ValueError):
            block_of(-1)

    def test_block_to_address_rejects_negative(self):
        with pytest.raises(ValueError):
            block_to_address(-5)

    def test_block_offset(self):
        assert block_offset(0) == 0
        assert block_offset(BLOCK_BYTES + 7) == 7

    @given(st.integers(min_value=0, max_value=2**50))
    def test_block_decomposition_is_lossless(self, address):
        assert (
            block_to_address(block_of(address)) + block_offset(address)
            == address
        )


class TestAlignment:
    def test_align_up_exact(self):
        assert align_up(128, 64) == 128

    def test_align_up_rounds(self):
        assert align_up(129, 64) == 192

    def test_align_down(self):
        assert align_down(129, 64) == 128

    def test_align_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)
        with pytest.raises(ValueError):
            align_down(10, -1)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_align_up_ge_value(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned >= value
        assert aligned % alignment == 0
        assert aligned - value < alignment


class TestRegion:
    def test_basic_properties(self):
        region = Region(base=0, size=640)
        assert region.end == 640
        assert region.blocks == 10

    def test_contains(self):
        region = Region(base=64, size=128)
        assert region.contains(64)
        assert region.contains(191)
        assert not region.contains(63)
        assert not region.contains(192)

    def test_block_at(self):
        region = Region(base=128, size=256)
        assert region.block_at(0) == 2
        assert region.block_at(3) == 5
        with pytest.raises(IndexError):
            region.block_at(4)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            Region(base=7, size=64)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region(base=0, size=0)


class TestAddressSpace:
    def test_reserve_carves_from_top(self):
        space = AddressSpace(1024 * BLOCK_BYTES)
        region = space.reserve(64 * BLOCK_BYTES)
        assert region.end == 1024 * BLOCK_BYTES
        assert space.application_bytes == 960 * BLOCK_BYTES

    def test_multiple_reservations_stack_downward(self):
        space = AddressSpace(1024 * BLOCK_BYTES)
        first = space.reserve(BLOCK_BYTES)
        second = space.reserve(BLOCK_BYTES)
        assert second.end == first.base
        assert len(space.regions) == 2

    def test_metadata_block_classification(self):
        space = AddressSpace(1024 * BLOCK_BYTES)
        space.reserve(4 * BLOCK_BYTES)
        assert space.is_metadata_block(1023)
        assert space.is_metadata_block(1020)
        assert not space.is_metadata_block(1019)

    def test_reserve_exhaustion(self):
        space = AddressSpace(4 * BLOCK_BYTES)
        space.reserve(3 * BLOCK_BYTES)
        with pytest.raises(MemoryError):
            space.reserve(2 * BLOCK_BYTES)

    def test_size_rounded_to_blocks(self):
        space = AddressSpace(10 * BLOCK_BYTES + 13)
        assert space.total_bytes == 10 * BLOCK_BYTES

    def test_rejects_tiny_space(self):
        with pytest.raises(ValueError):
            AddressSpace(BLOCK_BYTES - 1)

    def test_reserve_rounds_up(self):
        space = AddressSpace(16 * BLOCK_BYTES)
        region = space.reserve(BLOCK_BYTES + 1)
        assert region.size == 2 * BLOCK_BYTES
